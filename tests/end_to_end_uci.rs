//! End-to-end integration: the UCI campus scenario from simulator to
//! AP estimates, spanning vanet-sim, channel, geo, sparsesolve and core.

use crowdwifi::core::metrics::{counting_error, mean_distance_error};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::geo::Grid;
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn uci_config() -> OnlineCsConfig {
    OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    }
}

#[test]
fn uci_two_lap_drive_recovers_the_campus() {
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).unwrap();
    let scenario = scenario.snapped_to_grid(&grid);
    let truth = scenario.ap_positions();

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let route = mobility::uci_loop_route_with(2, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    assert!(readings.len() > 300, "drive too sparse: {}", readings.len());

    let estimator = OnlineCs::new(uci_config(), *scenario.pathloss()).unwrap();
    let estimates = estimator.run(&readings).unwrap();
    let positions: Vec<_> = estimates.iter().map(|e| e.position).collect();

    // Counting within one AP of the truth and positions within a couple
    // of lattice cells on average.
    assert!(
        counting_error(truth.len(), positions.len()) <= 0.125,
        "count {} vs 8",
        positions.len()
    );
    let err = mean_distance_error(&truth, &positions).unwrap();
    assert!(err < 20.0, "mean matched error {err:.1} m");
}

#[test]
fn accuracy_improves_with_more_data() {
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).unwrap();
    let scenario = scenario.snapped_to_grid(&grid);
    let truth = scenario.ap_positions();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let route = mobility::uci_loop_route_with(2, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 181.0, &mut rng);
    let estimator = OnlineCs::new(uci_config(), *scenario.pathloss()).unwrap();

    let count_err_at = |n: usize| {
        let est = estimator.run(&readings[..n.min(readings.len())]).unwrap();
        counting_error(truth.len(), est.len())
    };
    // The paper's Fig. 5 trend: counting improves as readings accumulate.
    let early = count_err_at(60);
    let late = count_err_at(180);
    assert!(
        late <= early,
        "counting error should not grow with data: {early} -> {late}"
    );
    assert!(late <= 0.25, "late counting error {late}");
}

#[test]
fn testbed_scenario_finds_most_nodes() {
    let scenario = Scenario::testbed();
    let truth = scenario.ap_positions();
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let route = mobility::testbed_passes(scenario.area(), 4, 20.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 60.0, &mut rng);
    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 20,
            step: 5,
            ttl: f64::INFINITY,
        },
        lattice: 10.0,
        radio_range: 35.0,
        max_ap_per_window: 3,
        merge_radius: 12.0,
        ..OnlineCsConfig::default()
    };
    let estimator = OnlineCs::new(config, *scenario.pathloss()).unwrap();
    let estimates = estimator.run(&readings).unwrap();
    // Six nodes, two nearly co-located: finding at least four with
    // bounded error is the reliable floor for a single 20 mph drive.
    assert!(estimates.len() >= 4, "found only {}", estimates.len());
    let positions: Vec<_> = estimates.iter().map(|e| e.position).collect();
    let err = mean_distance_error(&truth, &positions).unwrap();
    assert!(err < 15.0, "testbed mean error {err:.1} m");
}

#[test]
fn manhattan_urban_grid_is_recoverable() {
    use crowdwifi::core::pipeline::ensemble_run;

    // 3 × 3 city blocks of 80 m, one AP per block, snake drive through
    // every east-west street.
    let scenario = Scenario::manhattan(3, 80.0).unwrap();
    let truth = scenario.ap_positions();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let route = mobility::manhattan_route(3, 80.0, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 241.0, &mut rng);

    let config = OnlineCsConfig {
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let estimates = ensemble_run(&readings, config, *scenario.pathloss(), 9).unwrap();
    let positions: Vec<_> = estimates.iter().map(|e| e.position).collect();
    assert!(
        counting_error(truth.len(), positions.len()) <= 0.34,
        "count {} vs 9",
        positions.len()
    );
    let err = mean_distance_error(&truth, &positions).unwrap();
    assert!(err < 25.0, "urban grid mean error {err:.1} m");
}

#[test]
fn finite_ttl_streaming_session_still_converges() {
    use crowdwifi::core::pipeline::OnlineCs;

    // A TTL shorter than the drive: old readings expire out of the
    // window, so rounds stay local — the §4.3.2 behavior.
    let scenario = Scenario::uci_campus();
    let truth = scenario.ap_positions();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let route = mobility::uci_loop_route_with(2, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);

    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: 30.0, // seconds — roughly one sweep leg
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let estimator = OnlineCs::new(config, *scenario.pathloss()).unwrap();
    let mut session = estimator.session().unwrap();
    for r in &readings {
        session.push(*r).unwrap();
    }
    let final_aps = session.finish().unwrap();
    let positions: Vec<_> = final_aps.iter().map(|e| e.position).collect();
    // TTL-limited windows are smaller, so allow a slightly looser count.
    assert!(
        counting_error(truth.len(), positions.len()) <= 0.25,
        "count {} vs 8",
        positions.len()
    );
    let err = mean_distance_error(&truth, &positions).unwrap();
    assert!(err < 25.0, "TTL session mean error {err:.1} m");
}
