//! Integration: crowdsensed lookup feeding the handoff substrate,
//! spanning vanet-sim and handoff.

use crowdwifi::handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi::handoff::db::ApDatabase;
use crowdwifi::handoff::session::session_lengths;
use crowdwifi::handoff::transfer::{run_transfers, TransferConfig};
use crowdwifi::sim::mobility::vanlan_round;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn connectivity(policy: Policy, db: &ApDatabase, seed: u64) -> f64 {
    let scenario = Scenario::vanlan();
    let route = vanlan_round(0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    simulate(
        policy,
        &scenario,
        &route,
        db,
        ConnectivityConfig::default(),
        &mut rng,
    )
    .unwrap()
    .connectivity_fraction()
}

#[test]
fn allap_dominates_brr_on_connectivity() {
    let db = ApDatabase::new(Scenario::vanlan().ap_positions());
    let mut all = 0.0;
    let mut brr = 0.0;
    for seed in 0..5 {
        all += connectivity(Policy::AllAp, &db, seed);
        brr += connectivity(Policy::Brr, &db, seed);
    }
    assert!(all >= brr, "AllAP {all:.2} must be >= BRR {brr:.2}");
    assert!(
        all / 5.0 > 0.5,
        "AllAP should be connected most of the drive"
    );
}

#[test]
fn lookup_errors_degrade_connectivity() {
    let scenario = Scenario::vanlan();
    let truth = scenario.ap_positions();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let perfect = ApDatabase::new(truth.clone());
    let broken = ApDatabase::perturbed(&truth, scenario.area(), 3.0, 3.0, 10.0, &mut rng);
    let mut good = 0.0;
    let mut bad = 0.0;
    for seed in 0..5 {
        good += connectivity(Policy::AllAp, &perfect, seed);
        bad += connectivity(Policy::AllAp, &broken, seed);
    }
    assert!(
        bad < good,
        "a heavily wrong database ({bad:.2}) must underperform the truth ({good:.2})"
    );
}

#[test]
fn transfers_run_end_to_end_over_the_simulated_link() {
    let scenario = Scenario::vanlan();
    let db = ApDatabase::new(scenario.ap_positions());
    let route = vanlan_round(0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let trace = simulate(
        Policy::AllAp,
        &scenario,
        &route,
        &db,
        ConnectivityConfig::default(),
        &mut rng,
    )
    .unwrap();
    let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
    assert!(
        !stats.completion_times.is_empty(),
        "no transfer completed on a mostly-connected drive"
    );
    assert!(stats.median_time().unwrap() < 5.0);
    assert!(!session_lengths(&trace).is_empty());
}
