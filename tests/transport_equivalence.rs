//! Cross-backend determinism: the same seed and fault plan must yield
//! byte-identical deterministic round projections whether the round runs
//! on the concurrent threaded transport or on the virtual-clock
//! simulator. This is the payoff of the sans-I/O split — the protocol
//! outcome is a pure function of (fleet, config, plan), with the
//! transport contributing scheduling and wall time only.

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::durability::MemorySink;
use crowdwifi::middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{FaultTolerance, PlatformConfig};
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::transport::{
    run_campaign_with_faults_on, sim_round_with_digest, FleetTransport, SimTransport,
    ThreadTransport, Transport,
};
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
use std::time::Duration;

/// Fading-free staggered drive past two roadside APs.
fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn segments() -> SegmentMap {
    SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    )
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator =
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(v as f64 * 0.5),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 7,
        tolerance: FaultTolerance {
            retry_backoff: Duration::from_millis(100),
            max_retries: 1,
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

/// Runs one round on both backends and asserts the outcomes are
/// byte-identical: same error, or same deterministic projection
/// (everything except wall-clock timings).
fn assert_round_equivalent(n: u32, plan: &FaultPlan) {
    let threaded = ThreadTransport.run_round_with_faults(segments(), fleet(n), config(), plan);
    let simulated = SimTransport.run_round_with_faults(segments(), fleet(n), config(), plan);
    match (threaded, simulated) {
        (Ok(threaded), Ok(simulated)) => {
            assert_eq!(
                format!("{:?}", threaded.deterministic()),
                format!("{:?}", simulated.deterministic()),
                "deterministic projections diverged for plan {plan:?}"
            );
            assert_eq!(
                threaded.metrics.deterministic().to_json(),
                simulated.metrics.deterministic().to_json(),
                "deterministic metrics diverged for plan {plan:?}"
            );
            assert_eq!(threaded.exits, simulated.exits, "vehicle exits diverged");
        }
        (Err(threaded), Err(simulated)) => assert_eq!(threaded, simulated),
        (t, s) => panic!("backends disagree on round outcome: threaded {t:?} vs sim {s:?}"),
    }
}

#[test]
fn healthy_round_is_backend_equivalent() {
    assert_round_equivalent(3, &FaultPlan::none());
}

#[test]
fn crashed_vehicle_round_is_backend_equivalent() {
    assert_round_equivalent(
        4,
        &FaultPlan::none().crash(VehicleId(2), FaultPoint::Upload),
    );
}

#[test]
fn straggler_round_is_backend_equivalent() {
    assert_round_equivalent(
        5,
        &FaultPlan::none().stall(VehicleId(1), FaultPoint::Answer),
    );
}

#[test]
fn noisy_links_round_is_backend_equivalent() {
    // Mixed message noise: drops force retries, duplicates are ignored,
    // delays reorder. The per-link RNG streams are keyed by (plan seed,
    // vehicle, direction), so both backends inject the same faults at
    // the same points in each link's send sequence.
    assert_round_equivalent(4, &FaultPlan::noisy(11, 0.08, 0.15, 0.05));
}

#[test]
fn quorum_loss_fails_identically_on_both_backends() {
    let plan = FaultPlan::none()
        .crash(VehicleId(0), FaultPoint::Sense)
        .crash(VehicleId(1), FaultPoint::Upload);
    let threaded = ThreadTransport
        .run_round_with_faults(segments(), fleet(3), config(), &plan)
        .expect_err("quorum must fail");
    let simulated = SimTransport
        .run_round_with_faults(segments(), fleet(3), config(), &plan)
        .expect_err("quorum must fail");
    assert_eq!(threaded, simulated);
}

#[test]
fn injected_fault_tallies_are_backend_equivalent() {
    // The observed fault totals land in the sealed report's metrics
    // under the same names with the same values on both backends —
    // the fault layer is keyed by per-link RNG streams, not by
    // scheduling.
    let plan = FaultPlan::noisy(13, 0.12, 0.08, 0.04)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(3), FaultPoint::Answer);
    let threaded = ThreadTransport
        .run_round_with_faults(segments(), fleet(5), config(), &plan)
        .expect("threaded round");
    let simulated = SimTransport
        .run_round_with_faults(segments(), fleet(5), config(), &plan)
        .expect("simulated round");
    for name in [
        "platform.faults.dropped",
        "platform.faults.duplicated",
        "platform.faults.delayed",
        "platform.faults.server_crashes",
        "platform.faults.torn_wal_tails",
    ] {
        assert_eq!(
            threaded.metrics.counters.get(name),
            simulated.metrics.counters.get(name),
            "injected-fault counter {name} diverged across backends"
        );
    }
    // The schedule injected message noise, so something was counted.
    assert!(
        threaded
            .metrics
            .counters
            .get("platform.faults.dropped")
            .copied()
            .unwrap_or(0)
            > 0,
        "noise plan injected nothing — test is vacuous"
    );
}

#[test]
fn clean_durable_round_is_backend_equivalent() {
    // With no injected crashes the WAL is a pure transcript, and its
    // count-based fsync batching makes even the durability counters
    // backend-identical: same events handled, same appends, same
    // batches, zero recoveries.
    let mut thread_wal = MemorySink::new();
    let threaded = ThreadTransport
        .run_round_durable(
            segments(),
            fleet(3),
            config(),
            &FaultPlan::none(),
            &mut thread_wal,
        )
        .expect("threaded durable round");
    let mut sim_wal = MemorySink::new();
    let simulated = SimTransport
        .run_round_durable(
            segments(),
            fleet(3),
            config(),
            &FaultPlan::none(),
            &mut sim_wal,
        )
        .expect("simulated durable round");
    assert_eq!(
        format!("{:?}", threaded.deterministic()),
        format!("{:?}", simulated.deterministic()),
        "durable deterministic projections diverged"
    );
    assert_eq!(
        threaded.metrics.deterministic().to_json(),
        simulated.metrics.deterministic().to_json(),
        "durable deterministic metrics diverged (durability.* included)"
    );
    for name in ["durability.appends", "durability.fsync_batches"] {
        assert!(
            threaded.metrics.counters.get(name).copied().unwrap_or(0) > 0,
            "{name} missing from durable round metrics"
        );
    }
    assert_eq!(
        threaded.metrics.counters.get("durability.recoveries"),
        Some(&0)
    );
}

/// Runs one faulted round on the virtual-clock simulator and on the
/// fleet-scale engine, asserting the issue's contract: byte-identical
/// server state digests and fused maps on the same seed, plus equal
/// deterministic projections, metrics and exits.
fn assert_fleet_round_equivalent(n: u32, plan: &FaultPlan, shards: usize, workers: usize) {
    let (sim_report, sim_digest) =
        sim_round_with_digest(segments(), fleet(n), config(), plan).expect("sim round");
    let engine = FleetTransport::new()
        .with_shards(shards)
        .with_workers(workers);
    let (fleet_report, fleet_digest) = engine
        .run_round_with_digest(segments(), fleet(n), config(), plan)
        .expect("fleet round");
    assert_eq!(
        sim_digest, fleet_digest,
        "state digests diverged for plan {plan:?}"
    );
    assert_eq!(
        format!("{:?}", sim_report.fused),
        format!("{:?}", fleet_report.fused),
        "fused maps diverged for plan {plan:?}"
    );
    assert_eq!(
        format!("{:?}", sim_report.deterministic()),
        format!("{:?}", fleet_report.deterministic()),
        "deterministic projections diverged for plan {plan:?}"
    );
    assert_eq!(
        sim_report.metrics.deterministic().to_json(),
        fleet_report.metrics.deterministic().to_json(),
        "deterministic metrics diverged for plan {plan:?}"
    );
    assert_eq!(sim_report.exits, fleet_report.exits, "exits diverged");
}

#[test]
fn fleet_round_matches_sim_byte_for_byte() {
    // Faults on: message noise plus a crash and a straggler, the same
    // classes the sim-vs-threaded suite exercises.
    let plan = FaultPlan::noisy(17, 0.08, 0.1, 0.05)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(3), FaultPoint::Answer);
    assert_fleet_round_equivalent(6, &plan, 3, 2);
}

#[test]
fn fleet_results_are_invariant_to_shard_and_worker_counts() {
    let plan = FaultPlan::noisy(29, 0.05, 0.05, 0.05);
    let mut baseline: Option<(String, String)> = None;
    for (shards, workers) in [(1, 1), (4, 2), (9, 3)] {
        let engine = FleetTransport::new()
            .with_shards(shards)
            .with_workers(workers);
        let (report, digest) = engine
            .run_round_with_digest(segments(), fleet(5), config(), &plan)
            .expect("fleet round");
        let key = (digest, format!("{:?}", report.deterministic()));
        match &baseline {
            None => baseline = Some(key),
            Some(b) => assert_eq!(
                *b, key,
                "results changed at shards={shards} workers={workers}"
            ),
        }
    }
}

#[test]
fn fleet_durable_round_matches_sim() {
    // The fleet engine composes with the WAL + server-crash layer from
    // the durability work: same crash schedule, same recovery, same
    // deterministic metrics (durability.* included).
    let plan = FaultPlan::noisy(31, 0.05, 0.05, 0.0).server_crash(
        2,
        crowdwifi::middleware::fault::ServerFault::CrashAfterAppend,
    );
    let mut sim_wal = MemorySink::new();
    let simulated = SimTransport
        .run_round_durable(segments(), fleet(4), config(), &plan, &mut sim_wal)
        .expect("simulated durable round");
    let mut fleet_wal = MemorySink::new();
    let fleeted = FleetTransport::new()
        .with_workers(2)
        .run_round_durable(segments(), fleet(4), config(), &plan, &mut fleet_wal)
        .expect("fleet durable round");
    assert_eq!(
        format!("{:?}", simulated.deterministic()),
        format!("{:?}", fleeted.deterministic()),
        "durable deterministic projections diverged"
    );
    assert_eq!(
        simulated.metrics.deterministic().to_json(),
        fleeted.metrics.deterministic().to_json(),
        "durable deterministic metrics diverged"
    );
    assert!(
        fleeted
            .metrics
            .counters
            .get("durability.recoveries")
            .copied()
            .unwrap_or(0)
            > 0,
        "crash schedule injected no recovery — test is vacuous"
    );
}

#[test]
fn campaign_database_is_backend_equivalent() {
    let rounds = || vec![fleet(3), fleet(4)];
    let plans = [
        FaultPlan::none(),
        FaultPlan::none().crash(VehicleId(3), FaultPoint::Upload),
    ];
    let threaded = run_campaign_with_faults_on(
        &ThreadTransport,
        segments(),
        rounds(),
        config(),
        0.5,
        &plans,
    )
    .expect("threaded campaign");
    let simulated =
        run_campaign_with_faults_on(&SimTransport, segments(), rounds(), config(), 0.5, &plans)
            .expect("simulated campaign");
    assert_eq!(threaded.reports.len(), simulated.reports.len());
    for (t, s) in threaded.reports.iter().zip(&simulated.reports) {
        assert_eq!(
            format!("{:?}", t.deterministic()),
            format!("{:?}", s.deterministic())
        );
    }
    assert_eq!(
        format!("{:?}", threaded.database),
        format!("{:?}", simulated.database),
        "sharded campaign databases diverged"
    );
    assert!(!threaded.database.is_empty());
}
