//! Failure injection: hostile, degenerate and malformed inputs must be
//! rejected cleanly or absorbed without panics or non-finite outputs.

use crowdwifi::channel::RssReading;
use crowdwifi::core::pipeline::{ensemble_run, OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::crowd::graph::BipartiteAssignment;
use crowdwifi::crowd::inference::IterativeInference;
use crowdwifi::crowd::worker::WorkerPool;
use crowdwifi::crowd::LabelMatrix;
use crowdwifi::geo::Point;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pipeline() -> OnlineCs {
    OnlineCs::new(
        OnlineCsConfig::default(),
        *Scenario::uci_campus().pathloss(),
    )
    .unwrap()
}

#[test]
fn empty_and_tiny_streams_are_fine() {
    let p = pipeline();
    assert!(p.run(&[]).unwrap().is_empty());
    // A single reading cannot resolve anything but must not panic.
    let one = [RssReading::new(Point::new(0.0, 0.0), -60.0, 0.0)];
    let est = p.run(&one).unwrap();
    for e in est {
        assert!(e.position.is_finite());
    }
}

#[test]
fn identical_positions_do_not_crash_grid_formation() {
    let p = pipeline();
    // 50 readings all from the exact same spot: zero-extent bounding box.
    let readings: Vec<RssReading> = (0..50)
        .map(|i| RssReading::new(Point::new(10.0, 10.0), -55.0 - (i % 3) as f64, i as f64))
        .collect();
    let est = p.run(&readings).unwrap();
    for e in est {
        assert!(e.position.is_finite());
    }
}

#[test]
fn extreme_rss_values_stay_finite() {
    let p = pipeline();
    let readings: Vec<RssReading> = (0..40)
        .map(|i| {
            let rss = match i % 4 {
                0 => -200.0, // absurdly weak
                1 => 50.0,   // absurdly strong
                2 => -60.0,
                _ => -95.0,
            };
            RssReading::new(Point::new(3.0 * i as f64, (i % 7) as f64), rss, i as f64)
        })
        .collect();
    let est = p.run(&readings).unwrap();
    for e in est {
        assert!(e.position.is_finite(), "non-finite estimate {e:?}");
        assert!(e.credit.is_finite());
    }
}

#[test]
fn ensemble_handles_empty_input() {
    let est = ensemble_run(
        &[],
        OnlineCsConfig::default(),
        *Scenario::uci_campus().pathloss(),
        5,
    )
    .unwrap();
    assert!(est.is_empty());
}

#[test]
fn out_of_order_timestamps_are_rejected_by_window_or_absorbed() {
    // The sliding window uses timestamps only for TTL expiry; feeding
    // out-of-order times must not panic.
    let cfg = OnlineCsConfig {
        window: WindowConfig {
            size: 10,
            step: 5,
            ttl: 30.0,
        },
        ..OnlineCsConfig::default()
    };
    let p = OnlineCs::new(cfg, *Scenario::uci_campus().pathloss()).unwrap();
    let readings: Vec<RssReading> = (0..30)
        .map(|i| {
            let t = if i % 5 == 0 { 0.0 } else { i as f64 };
            RssReading::new(Point::new(4.0 * i as f64, 0.0), -60.0, t)
        })
        .collect();
    let _ = p.run(&readings).unwrap();
}

#[test]
fn all_spammer_crowd_degrades_gracefully() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = BipartiteAssignment::regular(200, 5, 5, &mut rng).unwrap();
    let truth: Vec<i8> = (0..200).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    // Every worker is a coin-flipper: no decoder can beat chance, but
    // nothing may panic and the error must hover near 1/2.
    let pool = WorkerPool::new(vec![0.5; graph.workers()]).unwrap();
    let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
    let err = IterativeInference::default().decode_error(&labels, &truth, &mut rng);
    assert!((0.2..=0.8).contains(&err), "all-spammer error {err}");
}

#[test]
fn adversarial_workers_do_not_break_inference() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = BipartiteAssignment::regular(300, 7, 7, &mut rng).unwrap();
    let truth: Vec<i8> = (0..300).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    // 20 % adversaries (q = 0.1, systematically lying), 80 % hammers.
    let reliabilities: Vec<f64> = (0..graph.workers())
        .map(|j| if j % 5 == 0 { 0.1 } else { 0.95 })
        .collect();
    let pool = WorkerPool::new(reliabilities).unwrap();
    let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
    let result = IterativeInference::default().run(&labels, &mut rng);
    let err = crowdwifi::crowd::bit_error_rate(&result.estimates, &truth);
    // Message passing exploits the anti-correlation: adversaries get
    // negative scores and the decode stays accurate.
    assert!(err < 0.05, "error with adversaries {err}");
    let adv_score: f64 = result
        .worker_scores
        .iter()
        .step_by(5)
        .sum::<f64>()
        / (graph.workers() / 5) as f64;
    assert!(adv_score < 0.0, "adversaries should score negative: {adv_score}");
}
