//! Failure injection: hostile, degenerate and malformed inputs must be
//! rejected cleanly or absorbed without panics or non-finite outputs —
//! and the threaded platform must survive crashing, stalling and lossy
//! vehicles, completing rounds degraded instead of hanging or erroring.

use crowdwifi::channel::RssReading;
use crowdwifi::core::pipeline::{ensemble_run, OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::crowd::graph::BipartiteAssignment;
use crowdwifi::crowd::inference::IterativeInference;
use crowdwifi::crowd::worker::WorkerPool;
use crowdwifi::crowd::LabelMatrix;
use crowdwifi::geo::Point;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pipeline() -> OnlineCs {
    OnlineCs::new(
        OnlineCsConfig::default(),
        *Scenario::uci_campus().pathloss(),
    )
    .unwrap()
}

#[test]
fn empty_and_tiny_streams_are_fine() {
    let p = pipeline();
    assert!(p.run(&[]).unwrap().is_empty());
    // A single reading cannot resolve anything but must not panic.
    let one = [RssReading::new(Point::new(0.0, 0.0), -60.0, 0.0)];
    let est = p.run(&one).unwrap();
    for e in est {
        assert!(e.position.is_finite());
    }
}

#[test]
fn identical_positions_do_not_crash_grid_formation() {
    let p = pipeline();
    // 50 readings all from the exact same spot: zero-extent bounding box.
    let readings: Vec<RssReading> = (0..50)
        .map(|i| RssReading::new(Point::new(10.0, 10.0), -55.0 - (i % 3) as f64, i as f64))
        .collect();
    let est = p.run(&readings).unwrap();
    for e in est {
        assert!(e.position.is_finite());
    }
}

#[test]
fn extreme_rss_values_stay_finite() {
    let p = pipeline();
    let readings: Vec<RssReading> = (0..40)
        .map(|i| {
            let rss = match i % 4 {
                0 => -200.0, // absurdly weak
                1 => 50.0,   // absurdly strong
                2 => -60.0,
                _ => -95.0,
            };
            RssReading::new(Point::new(3.0 * i as f64, (i % 7) as f64), rss, i as f64)
        })
        .collect();
    let est = p.run(&readings).unwrap();
    for e in est {
        assert!(e.position.is_finite(), "non-finite estimate {e:?}");
        assert!(e.credit.is_finite());
    }
}

#[test]
fn ensemble_handles_empty_input() {
    let est = ensemble_run(
        &[],
        OnlineCsConfig::default(),
        *Scenario::uci_campus().pathloss(),
        5,
    )
    .unwrap();
    assert!(est.is_empty());
}

#[test]
fn out_of_order_timestamps_are_rejected_by_window_or_absorbed() {
    // The sliding window uses timestamps only for TTL expiry; feeding
    // out-of-order times must not panic.
    let cfg = OnlineCsConfig {
        window: WindowConfig {
            size: 10,
            step: 5,
            ttl: 30.0,
        },
        ..OnlineCsConfig::default()
    };
    let p = OnlineCs::new(cfg, *Scenario::uci_campus().pathloss()).unwrap();
    let readings: Vec<RssReading> = (0..30)
        .map(|i| {
            let t = if i % 5 == 0 { 0.0 } else { i as f64 };
            RssReading::new(Point::new(4.0 * i as f64, 0.0), -60.0, t)
        })
        .collect();
    let _ = p.run(&readings).unwrap();
}

#[test]
fn all_spammer_crowd_degrades_gracefully() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = BipartiteAssignment::regular(200, 5, 5, &mut rng).unwrap();
    let truth: Vec<i8> = (0..200).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    // Every worker is a coin-flipper: no decoder can beat chance, but
    // nothing may panic and the error must hover near 1/2.
    let pool = WorkerPool::new(vec![0.5; graph.workers()]).unwrap();
    let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
    let err = IterativeInference::default().decode_error(&labels, &truth, &mut rng);
    assert!((0.2..=0.8).contains(&err), "all-spammer error {err}");
}

#[test]
fn adversarial_workers_do_not_break_inference() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = BipartiteAssignment::regular(300, 7, 7, &mut rng).unwrap();
    let truth: Vec<i8> = (0..300).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    // 20 % adversaries (q = 0.1, systematically lying), 80 % hammers.
    let reliabilities: Vec<f64> = (0..graph.workers())
        .map(|j| if j % 5 == 0 { 0.1 } else { 0.95 })
        .collect();
    let pool = WorkerPool::new(reliabilities).unwrap();
    let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
    let result = IterativeInference::default().run(&labels, &mut rng);
    let err = crowdwifi::crowd::bit_error_rate(&result.estimates, &truth);
    // Message passing exploits the anti-correlation: adversaries get
    // negative scores and the decode stays accurate.
    assert!(err < 0.05, "error with adversaries {err}");
    let adv_score: f64 =
        result.worker_scores.iter().step_by(5).sum::<f64>() / (graph.workers() / 5) as f64;
    assert!(
        adv_score < 0.0,
        "adversaries should score negative: {adv_score}"
    );
}

// ---------------------------------------------------------------------
// Platform-level fault injection: whole rounds under scheduled vehicle
// deaths and lossy links.
// ---------------------------------------------------------------------

mod platform_faults {
    use crowdwifi::channel::{PathLossModel, RssReading};
    use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
    use crowdwifi::geo::{Point, Rect};
    use crowdwifi::middleware::fault::{FaultPlan, FaultPoint};
    use crowdwifi::middleware::messages::VehicleId;
    use crowdwifi::middleware::platform::{
        run_round_with_faults, FaultTolerance, PlatformConfig, PlatformReport, RoundHealth,
        VehicleFate,
    };
    use crowdwifi::middleware::segment::SegmentMap;
    use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
    use std::time::Duration;

    /// Fading-free staggered drive past two roadside APs.
    fn drive(lane_offset: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
        (0..50)
            .map(|i| {
                let p = Point::new(
                    6.0 * i as f64,
                    lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        )
    }

    fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
        (0..n)
            .map(|v| {
                let estimator =
                    OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
                (
                    CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                    drive(v as f64 * 0.5),
                )
            })
            .collect()
    }

    /// One retry, short backoff: a dead vehicle costs about two
    /// deadlines instead of three. The 2 s deadline itself is kept —
    /// concurrent estimator runs need about a second on one core, and a
    /// healthy vehicle must never miss it.
    fn config() -> PlatformConfig {
        PlatformConfig {
            workers_per_task: 3,
            tolerance: FaultTolerance {
                retry_backoff: Duration::from_millis(100),
                max_retries: 1,
                ..FaultTolerance::default()
            },
            ..PlatformConfig::default()
        }
    }

    fn assert_finite(report: &PlatformReport) {
        assert!(!report.fused.is_empty(), "no fused output");
        for ap in &report.fused {
            assert!(ap.position.is_finite(), "non-finite fused AP {ap:?}");
            assert!(ap.support.is_finite());
        }
        for q in report.outcome.reliabilities.values() {
            assert!(q.is_finite() && (0.0..=1.0).contains(q));
        }
    }

    #[test]
    fn crashed_vehicle_degrades_round() {
        let plan = FaultPlan::none().crash(VehicleId(1), FaultPoint::Sense);
        let report = run_round_with_faults(segments(), fleet(4), config(), &plan).unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(1)]);
        assert_finite(&report);
    }

    #[test]
    fn straggler_past_deadline_gets_tasks_reassigned() {
        let plan = FaultPlan::none().stall(VehicleId(2), FaultPoint::Answer);
        let report = run_round_with_faults(segments(), fleet(5), config(), &plan).unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(2)]);
        assert!(
            report.reassigned_tasks > 0,
            "straggler tasks were not reassigned"
        );
        assert_eq!(report.lost_label_slots, 0);
        assert_finite(&report);
    }

    #[test]
    fn ten_percent_message_drop_still_completes() {
        let plan = FaultPlan::noisy(11, 0.10, 0.0, 0.0);
        let report = run_round_with_faults(segments(), fleet(5), config(), &plan).unwrap();
        // Whether a retry was needed depends on which messages the
        // schedule hit; the round must complete with sane output either
        // way, and no vehicle may die — retries recover every drop.
        assert!(
            report.dead_vehicles().is_empty(),
            "drop noise killed a vehicle"
        );
        assert_finite(&report);
    }

    #[test]
    fn combined_faults_are_deterministic_across_runs() {
        let run = || {
            let plan = FaultPlan::noisy(7, 0.10, 0.0, 0.0)
                .crash(VehicleId(1), FaultPoint::Upload)
                .stall(VehicleId(2), FaultPoint::Answer);
            run_round_with_faults(segments(), fleet(5), config(), &plan).unwrap()
        };
        let first = run();
        assert_eq!(first.health, RoundHealth::Degraded);
        let dead = first.dead_vehicles();
        assert!(
            dead.contains(&VehicleId(1)) && dead.contains(&VehicleId(2)),
            "{dead:?}"
        );
        assert!(matches!(
            first.fates[&VehicleId(1)].fate,
            VehicleFate::TimedOut(_)
        ));
        assert!(first.reassigned_tasks > 0, "no reassignment recorded");
        assert_finite(&first);

        // Same seed, same plan: the full report — fates, retry counts,
        // reassignments, reliabilities, fused floats — must replay
        // byte-for-byte. The embedded metrics snapshot carries
        // wall-clock phase timers, so compare its deterministic
        // projection and strip it from the Debug comparison.
        let mut second = run();
        assert_eq!(
            first.metrics.deterministic().to_json(),
            second.metrics.deterministic().to_json()
        );
        let mut first = first;
        first.metrics = first.metrics.deterministic();
        second.metrics = second.metrics.deterministic();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }

    #[test]
    fn zero_fault_round_is_complete_and_clean() {
        let report =
            run_round_with_faults(segments(), fleet(4), config(), &FaultPlan::none()).unwrap();
        assert_eq!(report.health, RoundHealth::Complete);
        assert!(report.dead_vehicles().is_empty());
        assert_eq!(report.reassigned_tasks, 0);
        assert_eq!(report.lost_label_slots, 0);
        for record in report.fates.values() {
            assert_eq!(record.fate, VehicleFate::Completed);
            assert_eq!(record.retries, 0);
        }
        assert_finite(&report);
    }

    #[test]
    fn losing_the_quorum_aborts() {
        use crowdwifi::middleware::MiddlewareError;
        let plan = FaultPlan::none()
            .crash(VehicleId(0), FaultPoint::Sense)
            .crash(VehicleId(2), FaultPoint::Sense);
        let err = run_round_with_faults(segments(), fleet(3), config(), &plan).unwrap_err();
        assert_eq!(
            err,
            MiddlewareError::QuorumLost {
                alive: 1,
                required: 2,
                total: 3
            }
        );
    }

    #[test]
    fn invalid_configs_are_rejected_before_spawning() {
        use crowdwifi::middleware::MiddlewareError;
        for bad in [
            PlatformConfig {
                workers_per_task: 0,
                ..config()
            },
            PlatformConfig {
                merge_radius: -1.0,
                ..config()
            },
            PlatformConfig {
                spammer_cutoff: 2.0,
                ..config()
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    quorum: 0.0,
                    ..config().tolerance
                },
                ..config()
            },
        ] {
            let err =
                run_round_with_faults(segments(), fleet(3), bad, &FaultPlan::none()).unwrap_err();
            assert!(matches!(err, MiddlewareError::InvalidConfig(_)), "{err:?}");
        }
        // Bad fault plans are rejected too.
        let err = run_round_with_faults(
            segments(),
            fleet(3),
            config(),
            &FaultPlan::noisy(0, 0.7, 0.7, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, MiddlewareError::InvalidConfig(_)));
    }
}
