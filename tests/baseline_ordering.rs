//! Integration: the Fig. 8 algorithm ordering on a small instance —
//! CrowdWiFi's full stack against the three baselines on identical data.

use crowdwifi::baselines::lgmm::Lgmm;
use crowdwifi::baselines::skyhook::Skyhook;
use crowdwifi::baselines::ApLocalizer;
use crowdwifi::channel::RssReading;
use crowdwifi::core::metrics::mean_distance_error;
use crowdwifi::core::pipeline::{ensemble_run, OnlineCsConfig};
use crowdwifi::geo::Point;
use crowdwifi::sim::{RssCollector, Scenario};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn scattered_readings(scenario: &Scenario, m: usize, rng: &mut ChaCha8Rng) -> Vec<RssReading> {
    let collector = RssCollector::new(scenario);
    let area = scenario.area();
    let mut out = Vec::new();
    let mut t = 0.0;
    while out.len() < m {
        let p = Point::new(
            rng.random_range(area.min().x..area.max().x),
            rng.random_range(area.min().y..area.max().y),
        );
        if let Some(r) = collector.sample_at(p, t, rng) {
            out.push(r);
        }
        t += 1.0;
    }
    out
}

#[test]
fn crowdwifi_beats_lgmm_on_sparse_measurements() {
    // k = 6 APs, 80 scattered measurements: the low-M regime where the
    // paper's CS advantage is largest.
    let mut cw_err = 0.0;
    let mut lgmm_err = 0.0;
    let mut sky_err = 0.0;
    let trials = 3;
    for trial in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(50 + trial);
        let scenario = Scenario::random_250(6, 40.0, &mut rng).unwrap();
        let truth = scenario.ap_positions();
        let readings = scattered_readings(&scenario, 80, &mut rng);

        let config = OnlineCsConfig {
            lattice: 8.0,
            merge_radius: 12.0,
            sigma_factor: 0.015,
            ..OnlineCsConfig::default()
        };
        let cw: Vec<Point> = ensemble_run(&readings, config, *scenario.pathloss(), 6)
            .unwrap()
            .iter()
            .map(|e| e.position)
            .collect();
        let lg = Lgmm::new(*scenario.pathloss(), 8.0, 100.0, 10)
            .localize(&readings)
            .positions;
        let sky = Skyhook::default().localize(&readings).positions;

        cw_err += mean_distance_error(&truth, &cw).unwrap_or(100.0);
        lgmm_err += mean_distance_error(&truth, &lg).unwrap_or(100.0);
        sky_err += mean_distance_error(&truth, &sky).unwrap_or(100.0);
    }
    // CrowdWiFi must beat the blind LGMM baseline comfortably; Skyhook
    // (which reads BSSIDs) sets context but is not required to lose.
    assert!(
        cw_err < lgmm_err,
        "CrowdWiFi {cw_err:.1} m should beat LGMM {lgmm_err:.1} m (Skyhook at {sky_err:.1} m)"
    );
    assert!(cw_err / trials as f64 <= 25.0, "CrowdWiFi error too large");
}
