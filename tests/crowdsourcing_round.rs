//! Cross-crate integration: online CS estimates feed the offline
//! crowdsourcing layer, spanning core, crowd and middleware.

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::crowd::aggregate::majority_vote;
use crowdwifi::crowd::graph::BipartiteAssignment;
use crowdwifi::crowd::inference::IterativeInference;
use crowdwifi::crowd::worker::SpammerHammerPrior;
use crowdwifi::crowd::{bit_error_rate, LabelMatrix};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{run_round, PlatformConfig};
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn iterative_inference_beats_majority_voting_at_scale() {
    // The paper's Fig. 7 claim, averaged over several random graphs.
    let mut kos_total = 0.0;
    let mut mv_total = 0.0;
    for seed in 0..10u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = BipartiteAssignment::regular(500, 9, 9, &mut rng).unwrap();
        let truth: Vec<i8> = (0..500).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
        kos_total += IterativeInference::default().decode_error(&labels, &truth, &mut rng);
        mv_total += bit_error_rate(&majority_vote(&labels), &truth);
    }
    assert!(
        kos_total < mv_total * 0.5,
        "iterative inference ({kos_total:.3}) should roughly halve MV error ({mv_total:.3})"
    );
}

/// Fading-free staggered drive past two APs for the platform test.
fn drive(lane_offset: f64, aps: &[Point]) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

#[test]
fn threaded_platform_round_flags_spammer_and_finds_aps() {
    let truth = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    );
    let mut fleet = Vec::new();
    for v in 0..5u32 {
        let estimator =
            OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
        let behavior = if v == 4 {
            Behavior::Spammer
        } else {
            Behavior::Honest
        };
        fleet.push((
            CrowdVehicle::new(VehicleId(v), estimator, behavior),
            drive(v as f64 * 0.5, &truth),
        ));
    }
    let report = run_round(
        segments,
        fleet,
        PlatformConfig {
            workers_per_task: 4,
            ..PlatformConfig::default()
        },
    )
    .unwrap();

    // Both APs present in the fused database.
    for t in truth {
        let d = report
            .fused
            .iter()
            .map(|f| f.position.distance(t))
            .fold(f64::INFINITY, f64::min);
        assert!(d < 20.0, "AP {t} missing from fusion ({d:.1} m)");
    }
    // The spammer must not outrank every honest vehicle.
    let spam = report.outcome.reliabilities[&VehicleId(4)];
    let best_honest = (0..4)
        .map(|v| report.outcome.reliabilities[&VehicleId(v)])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(spam <= best_honest);
}
