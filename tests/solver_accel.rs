//! Acceptance test for the cross-window solver-acceleration layer: on
//! the seed UCI campus drive, the accelerated pipeline (gap-safe
//! screening + duality-gap stops + warm starts + Gram caching) must
//! recover the same AP support as the unaccelerated path while spending
//! at least 30 % fewer total ℓ1 iterations — the machine-independent
//! reduction the `solver_accel` section of BENCH_pipeline.json reports.

use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::core::SolverAccel;
use crowdwifi::geo::Grid;
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn uci_config(accel: SolverAccel) -> OnlineCsConfig {
    OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        accel,
        ..OnlineCsConfig::default()
    }
}

#[test]
fn accelerated_drive_keeps_the_support_and_cuts_iterations() {
    // The same seeded campus drive the throughput bench replays.
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).unwrap();
    let scenario = scenario.snapped_to_grid(&grid);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    assert!(readings.len() > 150, "drive too sparse: {}", readings.len());

    let baseline = OnlineCs::new(uci_config(SolverAccel::disabled()), *scenario.pathloss())
        .unwrap()
        .run_detailed(&readings)
        .unwrap();
    let accel = OnlineCs::new(uci_config(SolverAccel::enabled()), *scenario.pathloss())
        .unwrap()
        .run_detailed(&readings)
        .unwrap();

    // Identical recovered support: the same AP count, each accelerated
    // estimate landing on the same lattice neighborhood as its baseline
    // counterpart.
    assert_eq!(
        baseline.final_aps.len(),
        accel.final_aps.len(),
        "acceleration changed the number of recovered APs"
    );
    for b in &baseline.final_aps {
        let d = accel
            .final_aps
            .iter()
            .map(|a| a.position.distance(b.position))
            .fold(f64::INFINITY, f64::min);
        assert!(
            d < 8.0,
            "baseline AP at {} has no accelerated counterpart ({d:.1} m away)",
            b.position
        );
    }

    // The headline number: ≥ 30 % fewer total ℓ1 iterations per drive.
    let base_iters = baseline.sensing.solver_iterations as f64;
    let accel_iters = accel.sensing.solver_iterations as f64;
    assert!(base_iters > 0.0);
    let reduction = 1.0 - accel_iters / base_iters;
    assert!(
        reduction >= 0.30,
        "iteration reduction {:.1}% below the 30% floor ({} -> {})",
        100.0 * reduction,
        base_iters,
        accel_iters
    );

    // Acceleration accounting is live: screening removed columns and
    // warm starts seeded later windows.
    assert!(accel.sensing.screened_cols > 0, "screening never fired");
    assert!(accel.sensing.warm_seeded > 0, "warm starts never fired");
    assert_eq!(baseline.sensing.screened_cols, 0);
    assert_eq!(baseline.sensing.warm_seeded, 0);
}
