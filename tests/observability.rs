//! End-to-end observability: the online-CS pipeline records into a
//! scoped registry, and the deterministic snapshot projection is
//! byte-identical across same-seed runs.

use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::geo::Grid;
use crowdwifi::obs::Registry;
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use crowdwifi_channel::RssReading;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn uci_drive() -> (Vec<RssReading>, crowdwifi::channel::PathLossModel) {
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).unwrap();
    let scenario = scenario.snapped_to_grid(&grid);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 181.0, &mut rng);
    (readings, *scenario.pathloss())
}

fn config() -> OnlineCsConfig {
    OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 20,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        // Memo hit/solve splits are scheduling-dependent with more than
        // one worker; one thread makes the whole snapshot deterministic.
        threads: 1,
        ..OnlineCsConfig::default()
    }
}

#[test]
fn pipeline_metrics_cover_the_hot_path() {
    if !crowdwifi::obs::RECORDING {
        return;
    }
    let (readings, model) = uci_drive();
    let reg = Registry::new();
    let pipeline = OnlineCs::new(config(), model).unwrap().with_registry(&reg);
    let aps = pipeline.run(&readings).unwrap();
    assert!(!aps.is_empty(), "drive must recover APs");

    let snap = reg.snapshot();
    let c = &snap.counters;
    assert!(c["pipeline.windows_processed"] > 0);
    assert!(c["pipeline.hypotheses_evaluated"] > 0);
    assert!(c["pipeline.candidates_scored"] >= c["pipeline.hypotheses_evaluated"]);
    assert!(c["pipeline.group_solves"] > 0);
    assert!(c["pipeline.solver_iterations"] > c["pipeline.group_solves"]);
    // Every memo lookup either hit the cache, ran a solve, or returned
    // the trivial zero solution (a group with no reachable grid cell).
    assert!(c["pipeline.memo_lookups"] >= c["pipeline.memo_hits"] + c["pipeline.group_solves"]);
    // Consolidation saw every round's estimates.
    assert!(c["pipeline.consolidation_merges"] + c["pipeline.consolidation_new"] > 0);
    // The round timer observed one span per processed window, and is
    // flagged as timing so the deterministic projection strips it.
    let timer = &snap.histograms["pipeline.round_seconds"];
    assert!(timer.timing);
    assert_eq!(timer.count, c["pipeline.windows_processed"]);
    assert!(!snap
        .deterministic()
        .histograms
        .contains_key("pipeline.round_seconds"));
    assert!(snap
        .deterministic()
        .histograms
        .contains_key("pipeline.round_winner_k"));
}

#[test]
fn deterministic_snapshot_is_byte_identical_across_runs() {
    if !crowdwifi::obs::RECORDING {
        return;
    }
    let (readings, model) = uci_drive();
    let run = || {
        let reg = Registry::new();
        let pipeline = OnlineCs::new(config(), model).unwrap().with_registry(&reg);
        pipeline.run(&readings).unwrap();
        reg.snapshot().deterministic().to_json()
    };
    assert_eq!(run(), run(), "same-seed pipeline metrics diverged");
}
