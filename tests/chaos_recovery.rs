//! The chaos harness: deterministic server-kill schedules over full
//! crowdsensing rounds on the virtual-clock simulator.
//!
//! Every schedule in the sweep crashes the server at a different event
//! index with a different [`ServerFault`] flavor — before the
//! write-ahead append, after it, and with the log tail truncated or
//! corrupted — then lets recovery rebuild the server from the log and
//! the protocol's retry machinery repair whatever the crash dropped.
//! The invariants asserted are the durability layer's contract:
//!
//! * the round still completes (a server crash is a recoverable event,
//!   not a round-fatal one);
//! * recovery happened and was counted;
//! * whenever no vehicle died, the final fused segment map and the
//!   inferred reliabilities are byte-identical to the fault-free run —
//!   no acked contribution lost, no un-acked contribution
//!   double-counted.
//!
//! The sweep size defaults to 32 schedules and can be reduced for
//! quick CI runs via `CROWDWIFI_CHAOS_SCHEDULES`.

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::durability::{read_wal, LogSink, MemorySink, SnapshotStore};
use crowdwifi::middleware::fault::{FaultPlan, ServerFault};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{FaultTolerance, PlatformConfig, PlatformReport};
use crowdwifi::middleware::protocol::ServerCore;
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::transport::{
    run_campaign_on, run_durable_campaign_on, SimTransport, Transport,
};
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
use crowdwifi::obs::Registry;
use std::time::Duration;

/// Fading-free staggered drive past two roadside APs.
fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn segments() -> SegmentMap {
    SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    )
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator =
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(v as f64 * 0.5),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 7,
        tolerance: FaultTolerance {
            retry_backoff: Duration::from_millis(100),
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

fn counter(report: &PlatformReport, name: &str) -> u64 {
    report.metrics.counters.get(name).copied().unwrap_or(0)
}

/// One fault-free durable round; also returns the WAL image left
/// behind (header + every event of the round, uncompacted).
fn durable_baseline() -> (PlatformReport, Vec<u8>) {
    let mut wal = MemorySink::new();
    let report = SimTransport
        .run_round_durable(segments(), fleet(3), config(), &FaultPlan::none(), &mut wal)
        .expect("fault-free durable round");
    let bytes = wal.contents().expect("in-memory contents");
    (report, bytes)
}

fn sweep_size() -> u64 {
    std::env::var("CROWDWIFI_CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

#[test]
fn fault_free_durable_round_matches_plain_round_and_logs_everything() {
    let plain = SimTransport
        .run_round(segments(), fleet(3), config())
        .expect("plain round");
    let (durable, wal) = durable_baseline();

    // Durability is transparent to the protocol outcome.
    assert_eq!(
        format!("{:?}", durable.fused),
        format!("{:?}", plain.fused),
        "WAL layer changed the fused map"
    );
    assert_eq!(
        format!("{:?}", durable.outcome.reliabilities),
        format!("{:?}", plain.outcome.reliabilities)
    );
    assert_eq!(durable.exits, plain.exits);

    // Every event the server handled is in the log, and the log is a
    // faithful transcript: appends == replayable events.
    let replay = read_wal(&wal).expect("intact WAL");
    assert_eq!(replay.dropped_tail_bytes, 0);
    assert_eq!(
        counter(&durable, "durability.appends"),
        replay.events.len() as u64
    );
    assert!(counter(&durable, "durability.fsync_batches") >= 2);
    assert_eq!(counter(&durable, "durability.recoveries"), 0);
    assert_eq!(counter(&durable, "durability.truncated_tail"), 0);
    assert_eq!(counter(&durable, "platform.faults.server_crashes"), 0);
}

/// Every WAL prefix replays to the exact state the live server had at
/// that point: the byte-identity half of the crash-recovery contract,
/// checked at every possible crash position of a real round.
#[test]
fn every_wal_prefix_recovers_to_the_live_server_state() {
    let (_, wal) = durable_baseline();
    let replay = read_wal(&wal).expect("intact WAL");
    assert!(!replay.events.is_empty(), "round logged no events");

    for k in 0..=replay.events.len() {
        let prefix = &replay.events[..k];
        let (recovered, _) = ServerCore::recover(
            replay.header.segments.clone(),
            &replay.header.fleet,
            replay.header.config,
            Registry::new(),
            prefix,
        )
        .expect("prefix recovery");

        // The reference: a live server stepped through the same
        // events, never crashed, never recovered.
        let mut live = ServerCore::new(
            replay.header.segments.clone(),
            &replay.header.fleet,
            replay.header.config,
            Registry::new(),
        )
        .expect("live server");
        live.start(crowdwifi::middleware::protocol::VirtualInstant::ZERO);
        for event in prefix {
            live.handle(event.clone());
        }
        assert_eq!(
            recovered.state_digest(),
            live.state_digest(),
            "replay diverged from live state after {k} events"
        );
    }
}

/// The seeded crash sweep: schedules cycle through all four server
/// fault flavors at varying event indices. Every schedule must
/// complete its round after in-flight recovery, and — whenever the
/// crash cost no vehicle its round — converge to the exact fault-free
/// fused map and reliabilities.
#[test]
fn seeded_crash_sweep_recovers_every_schedule() {
    let plain = SimTransport
        .run_round(segments(), fleet(3), config())
        .expect("plain round");
    let (_, wal) = durable_baseline();
    let total_events = read_wal(&wal).expect("intact WAL").events.len() as u64;
    assert!(total_events > 0);

    let schedules = sweep_size();
    let mut exercised = [false; 4];
    for s in 0..schedules {
        let fault = match s % 4 {
            0 => ServerFault::CrashBeforeAppend,
            1 => ServerFault::CrashAfterAppend,
            2 => ServerFault::CrashTruncateTail(3 + (s % 37) as usize),
            _ => ServerFault::CrashCorruptTail,
        };
        exercised[(s % 4) as usize] = true;
        let idx = (s * 7 + 1) % total_events;
        let plan = FaultPlan::none().server_crash(idx, fault);

        let mut wal = MemorySink::new();
        let report = SimTransport
            .run_round_durable(segments(), fleet(3), config(), &plan, &mut wal)
            .unwrap_or_else(|e| panic!("schedule {s} ({fault:?} at event {idx}) failed: {e}"));

        assert_eq!(
            counter(&report, "platform.faults.server_crashes"),
            1,
            "schedule {s} did not fire its crash"
        );
        assert!(
            counter(&report, "durability.recoveries") >= 1,
            "schedule {s} never recovered"
        );
        if matches!(
            fault,
            ServerFault::CrashTruncateTail(_) | ServerFault::CrashCorruptTail
        ) {
            assert_eq!(
                counter(&report, "platform.faults.torn_wal_tails"),
                1,
                "schedule {s} lost its torn-tail count"
            );
        }

        // The crash may cost retries (Degraded health) but, as long as
        // every vehicle finished, the consolidated segment map and the
        // inferred reliabilities must be byte-identical to the
        // fault-free round: nothing acked was lost, nothing un-acked
        // was double-counted.
        if report.dead_vehicles().is_empty() {
            assert_eq!(
                format!("{:?}", report.fused),
                format!("{:?}", plain.fused),
                "schedule {s} ({fault:?} at event {idx}): fused map diverged"
            );
            assert_eq!(
                format!("{:?}", report.outcome.reliabilities),
                format!("{:?}", plain.outcome.reliabilities),
                "schedule {s}: reliabilities diverged"
            );
        }
    }
    assert!(
        exercised.iter().all(|&e| e),
        "sweep too small to cover every ServerFault flavor"
    );
}

/// Campaign-level durability: round-close snapshots alternate slots, a
/// torn snapshot write never destroys the previous good one, and a
/// mid-campaign server crash leaves the campaign database identical to
/// the undisturbed run.
#[test]
fn durable_campaign_survives_torn_snapshots_and_mid_round_crashes() {
    let rounds = || vec![fleet(3), fleet(3), fleet(3)];
    let reference = run_campaign_on(&SimTransport, segments(), rounds(), config(), 0.5)
        .expect("reference campaign");

    // Round 1's snapshot write is torn, and round 1 also crashes the
    // server mid-round.
    let plans = [
        FaultPlan::none(),
        FaultPlan::none()
            .server_crash(2, ServerFault::CrashAfterAppend)
            .torn_snapshot(1),
        FaultPlan::none(),
    ];
    let mut wal = MemorySink::new();
    let mut snapshots = SnapshotStore::in_memory();
    let outcome = run_durable_campaign_on(
        &SimTransport,
        segments(),
        rounds(),
        config(),
        0.5,
        &plans,
        &mut wal,
        &mut snapshots,
    )
    .expect("durable campaign");

    assert_eq!(
        format!("{:?}", outcome.database),
        format!("{:?}", reference.database),
        "crash-recovered campaign database diverged"
    );
    assert_eq!(snapshots.writes(), 3);
    assert_eq!(snapshots.torn_writes(), 1);

    // The newest intact snapshot is round 2's; round 1's torn write is
    // invisible.
    let loaded = snapshots
        .load()
        .expect("snapshot slots readable")
        .expect("some snapshot intact");
    assert_eq!(loaded.seq, 2);
    assert_eq!(loaded.round, 2);
    assert_eq!(
        format!("{:?}", loaded.database),
        format!("{:?}", outcome.database)
    );

    // Round close compacted the WAL: nothing left in flight.
    assert!(wal.contents().expect("in-memory contents").is_empty());
}

/// A torn snapshot with no later round falls back to the previous good
/// slot on load.
#[test]
fn torn_final_snapshot_falls_back_to_previous_slot() {
    let rounds = || vec![fleet(3), fleet(3)];
    let plans = [FaultPlan::none(), FaultPlan::none().torn_snapshot(1)];
    let mut wal = MemorySink::new();
    let mut snapshots = SnapshotStore::in_memory();
    run_durable_campaign_on(
        &SimTransport,
        segments(),
        rounds(),
        config(),
        0.5,
        &plans,
        &mut wal,
        &mut snapshots,
    )
    .expect("durable campaign");

    let loaded = snapshots
        .load()
        .expect("snapshot slots readable")
        .expect("round 0 snapshot intact");
    assert_eq!(loaded.seq, 0, "must fall back past the torn slot");
    assert_eq!(loaded.round, 0);
}
