//! The geo-sharded AP map wired through the full stack: campaign
//! rounds drain into the map via [`GeoMapSink`], the map's corridor
//! query feeds the handoff policies, and the intern table is shared
//! with the observation store so the two layers never disagree on AP
//! identifiers.

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::ApEstimate;
use crowdwifi::geo::{Point, Rect};
use crowdwifi::geomap::{grid_key, shared_interner, GeoMap, MapConfig};
use crowdwifi::handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi::handoff::db::ApDatabase;
use crowdwifi::middleware::fault::FaultPlan;
use crowdwifi::middleware::mapsink::GeoMapSink;
use crowdwifi::middleware::messages::{SensingUpload, VehicleId};
use crowdwifi::middleware::platform::{FaultTolerance, PlatformConfig};
use crowdwifi::middleware::protocol::VirtualInstant;
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::store::{ObsStore, KEY_RESOLUTION_M};
use crowdwifi::middleware::transport::{run_campaign_with_faults_into, FleetTransport};
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
use crowdwifi::sim::mobility::vanlan_round;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// Fading-free staggered drive past two roadside APs (the
/// transport-equivalence fixture).
fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn area() -> Rect {
    Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap()
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator =
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(v as f64 * 0.5),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 7,
        tolerance: FaultTolerance {
            retry_backoff: Duration::from_millis(100),
            max_retries: 1,
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

#[test]
fn campaign_rounds_drain_into_the_map_through_the_sink() {
    let period = Duration::from_secs(60);
    let map = Arc::new(GeoMap::new(MapConfig::new(area())).unwrap());
    let mut sink = GeoMapSink::new(Arc::clone(&map), period);
    let outcome = run_campaign_with_faults_into(
        &FleetTransport::new().with_shards(2).with_workers(2),
        SegmentMap::new(area(), 150.0),
        vec![fleet(3), fleet(4)],
        config(),
        0.5,
        &[FaultPlan::none(), FaultPlan::none()],
        &mut sink,
    )
    .expect("campaign");
    assert_eq!(sink.rounds_closed(), 2);
    assert!(!map.is_empty(), "campaign produced no map entries");

    // The sink is a pure fold of the report stream: replaying each
    // round's fused estimates by hand must reproduce the map byte for
    // byte.
    let replay = GeoMap::new(MapConfig::new(area())).unwrap();
    for (i, report) in outcome.reports.iter().enumerate() {
        let estimates: Vec<ApEstimate> = report
            .fused
            .iter()
            .map(|f| ApEstimate {
                position: f.position,
                credit: f.support,
            })
            .collect();
        replay.absorb_estimates((i as u64 + 1) * period.as_micros() as u64, &estimates);
    }
    assert_eq!(
        map.snapshot(),
        replay.snapshot(),
        "sink-fed map diverged from a replay of the report stream"
    );
}

#[test]
fn map_fed_brr_is_identical_to_the_static_list_baseline() {
    let scenario = Scenario::vanlan();
    let route = vanlan_round(0.0);
    let cfg = ConnectivityConfig::default();

    // Two rounds of credit-2 fused estimates: each AP consolidates to
    // credit 4 at its exact position (power-of-two credits keep the
    // weighted-mean merge bit-exact).
    let map = GeoMap::new(MapConfig::new(scenario.area())).unwrap();
    for round in 0u64..2 {
        let estimates: Vec<ApEstimate> = scenario
            .ap_positions()
            .into_iter()
            .map(|position| ApEstimate {
                position,
                credit: 2.0,
            })
            .collect();
        map.absorb_estimates((round + 1) * 60_000_000, &estimates);
    }

    let path: Vec<Point> = route.waypoints().iter().map(|w| w.position).collect();
    let ahead = map.aps_ahead(&path, cfg.believed_range);
    let map_db = ApDatabase::new(ahead.iter().map(|a| a.position).collect());
    assert!(!map_db.is_empty(), "corridor query found nothing");

    // Static baseline in the map's canonical order: any AP the policies
    // could consider sits within `believed_range` of the route, i.e.
    // inside the corridor, so the two databases filter identically at
    // every step of the drive.
    let mut baseline = scenario.ap_positions();
    baseline.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let static_db = ApDatabase::new(baseline);

    for policy in [Policy::Brr, Policy::AllAp] {
        let from_map = simulate(
            policy,
            &scenario,
            &route,
            &map_db,
            cfg,
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .expect("map-fed simulation");
        let from_static = simulate(
            policy,
            &scenario,
            &route,
            &static_db,
            cfg,
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .expect("static simulation");
        assert_eq!(
            from_map, from_static,
            "{policy} trace diverged between map-fed and static databases"
        );
    }
}

#[test]
fn store_and_map_agree_on_interned_identifiers() {
    let interner = shared_interner();
    let mut store = ObsStore::with_shared_interner(Arc::clone(&interner));
    let map = GeoMap::with_interner(
        MapConfig::new(Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()),
        Arc::clone(&interner),
    )
    .unwrap();

    // The same upload flows into both layers.
    let positions = [
        Point::new(105.0, 205.0),
        Point::new(455.0, 755.0),
        Point::new(901.0, 99.0),
    ];
    let estimates: Vec<ApEstimate> = positions
        .iter()
        .map(|&position| ApEstimate {
            position,
            credit: 2.0,
        })
        .collect();
    store.absorb_upload(
        VirtualInstant::from_micros(5),
        &SensingUpload {
            vehicle: VehicleId(0),
            estimates: estimates.clone(),
        },
    );
    map.absorb_estimates(10, &estimates);

    // Every map entry's id resolves through the store to the same grid
    // key the store filed the observation under.
    let entries = map.query_radius(Point::new(500.0, 500.0), 1000.0);
    assert_eq!(entries.len(), positions.len());
    for entry in &entries {
        let key = grid_key(entry.position, KEY_RESOLUTION_M);
        let store_id = store.intern(&key);
        assert_eq!(
            store_id.0, entry.id,
            "store and map disagree on the id for {key}"
        );
    }
    assert_eq!(
        interner.lock().unwrap().len(),
        positions.len(),
        "shared table grew duplicate names"
    );
}
