//! # CrowdWiFi
//!
//! A from-scratch Rust reproduction of **"CrowdWiFi: Efficient
//! Crowdsensing of Roadside WiFi Networks"** (Wu et al., ACM
//! Middleware 2014): a vehicular middleware that counts and localizes
//! roadside WiFi access points from sparse drive-by RSS readings, using
//! online compressive sensing on the vehicle and offline crowdsourcing
//! on the server.
//!
//! This facade crate re-exports the full stack; each layer is its own
//! crate under `crates/`:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`linalg`] | `crowdwifi-linalg` | dense matrices, QR, eigen, SVD, pseudo-inverse |
//! | [`sparsesolve`] | `crowdwifi-sparsesolve` | ℓ1 solvers: FISTA, ADMM, OMP |
//! | [`geo`] | `crowdwifi-geo` | points, rectangles, grids, trajectories |
//! | [`channel`] | `crowdwifi-channel` | path loss, fading, GMM likelihood, BIC |
//! | [`sim`] | `crowdwifi-vanet-sim` | scenario maps, mobility, RSS trace generation |
//! | [`core`] | `crowdwifi-core` | the online CS pipeline (§4 of the paper) |
//! | [`crowd`] | `crowdwifi-crowd` | bipartite crowdsourcing + iterative inference (§5) |
//! | [`baselines`] | `crowdwifi-baselines` | LGMM, MDS and Skyhook comparators |
//! | [`handoff`] | `crowdwifi-handoff` | BRR/AllAP policies, sessions, transfers (§6.3) |
//! | [`geomap`] | `crowdwifi-geomap` | geo-sharded global AP map: lock-light reads, TTL eviction, snapshots |
//! | [`middleware`] | `crowdwifi-middleware` | crowd-server / vehicle / user roles, fault-tolerant rounds (§3, §5.5) |
//!
//! # Quickstart
//!
//! ```
//! use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
//! use crowdwifi::sim::{mobility, RssCollector, Scenario};
//! use rand::SeedableRng;
//!
//! // Drive the UCI campus loop and estimate the 8 APs.
//! let scenario = Scenario::uci_campus();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let readings = RssCollector::new(&scenario)
//!     .collect_along(&mobility::uci_loop_route(), 1.0, &mut rng);
//! let estimator = OnlineCs::new(OnlineCsConfig::default(), *scenario.pathloss())?;
//! let aps = estimator.run(&readings)?;
//! assert!(!aps.is_empty());
//! # Ok::<(), crowdwifi::core::CoreError>(())
//! ```

#![deny(missing_docs)]

pub use crowdwifi_baselines as baselines;
pub use crowdwifi_channel as channel;
pub use crowdwifi_core as core;
pub use crowdwifi_crowd as crowd;
pub use crowdwifi_geo as geo;
pub use crowdwifi_geomap as geomap;
pub use crowdwifi_handoff as handoff;
pub use crowdwifi_linalg as linalg;
pub use crowdwifi_middleware as middleware;
pub use crowdwifi_obs as obs;
pub use crowdwifi_sparsesolve as sparsesolve;
pub use crowdwifi_vanet_sim as sim;
