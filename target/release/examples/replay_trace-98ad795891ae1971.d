/root/repo/target/release/examples/replay_trace-98ad795891ae1971.d: examples/replay_trace.rs

/root/repo/target/release/examples/replay_trace-98ad795891ae1971: examples/replay_trace.rs

examples/replay_trace.rs:
