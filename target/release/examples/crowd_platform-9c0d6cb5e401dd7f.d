/root/repo/target/release/examples/crowd_platform-9c0d6cb5e401dd7f.d: examples/crowd_platform.rs

/root/repo/target/release/examples/crowd_platform-9c0d6cb5e401dd7f: examples/crowd_platform.rs

examples/crowd_platform.rs:
