/root/repo/target/release/examples/quickstart-86a2508b18c92b88.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-86a2508b18c92b88: examples/quickstart.rs

examples/quickstart.rs:
