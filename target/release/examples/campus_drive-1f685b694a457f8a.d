/root/repo/target/release/examples/campus_drive-1f685b694a457f8a.d: examples/campus_drive.rs

/root/repo/target/release/examples/campus_drive-1f685b694a457f8a: examples/campus_drive.rs

examples/campus_drive.rs:
