/root/repo/target/release/examples/handoff_policies-92465649ff8b0153.d: examples/handoff_policies.rs

/root/repo/target/release/examples/handoff_policies-92465649ff8b0153: examples/handoff_policies.rs

examples/handoff_policies.rs:
