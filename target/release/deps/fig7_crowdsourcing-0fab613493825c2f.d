/root/repo/target/release/deps/fig7_crowdsourcing-0fab613493825c2f.d: crates/bench/src/bin/fig7_crowdsourcing.rs

/root/repo/target/release/deps/fig7_crowdsourcing-0fab613493825c2f: crates/bench/src/bin/fig7_crowdsourcing.rs

crates/bench/src/bin/fig7_crowdsourcing.rs:
