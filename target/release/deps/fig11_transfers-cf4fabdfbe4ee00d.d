/root/repo/target/release/deps/fig11_transfers-cf4fabdfbe4ee00d.d: crates/bench/src/bin/fig11_transfers.rs

/root/repo/target/release/deps/fig11_transfers-cf4fabdfbe4ee00d: crates/bench/src/bin/fig11_transfers.rs

crates/bench/src/bin/fig11_transfers.rs:
