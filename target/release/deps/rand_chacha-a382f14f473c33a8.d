/root/repo/target/release/deps/rand_chacha-a382f14f473c33a8.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-a382f14f473c33a8: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
