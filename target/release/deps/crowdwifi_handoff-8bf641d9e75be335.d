/root/repo/target/release/deps/crowdwifi_handoff-8bf641d9e75be335.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/release/deps/libcrowdwifi_handoff-8bf641d9e75be335.rlib: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/release/deps/libcrowdwifi_handoff-8bf641d9e75be335.rmeta: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
