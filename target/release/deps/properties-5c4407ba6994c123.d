/root/repo/target/release/deps/properties-5c4407ba6994c123.d: crates/channel/tests/properties.rs

/root/repo/target/release/deps/properties-5c4407ba6994c123: crates/channel/tests/properties.rs

crates/channel/tests/properties.rs:
