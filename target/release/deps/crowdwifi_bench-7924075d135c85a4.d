/root/repo/target/release/deps/crowdwifi_bench-7924075d135c85a4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcrowdwifi_bench-7924075d135c85a4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcrowdwifi_bench-7924075d135c85a4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
