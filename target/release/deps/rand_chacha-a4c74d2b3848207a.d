/root/repo/target/release/deps/rand_chacha-a4c74d2b3848207a.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-a4c74d2b3848207a.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-a4c74d2b3848207a.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
