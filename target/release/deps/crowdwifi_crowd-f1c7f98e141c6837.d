/root/repo/target/release/deps/crowdwifi_crowd-f1c7f98e141c6837.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/release/deps/libcrowdwifi_crowd-f1c7f98e141c6837.rlib: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/release/deps/libcrowdwifi_crowd-f1c7f98e141c6837.rmeta: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
