/root/repo/target/release/deps/ablations-6d8cbd46506e43f3.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-6d8cbd46506e43f3: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
