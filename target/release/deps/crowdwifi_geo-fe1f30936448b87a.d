/root/repo/target/release/deps/crowdwifi_geo-fe1f30936448b87a.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/release/deps/libcrowdwifi_geo-fe1f30936448b87a.rlib: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/release/deps/libcrowdwifi_geo-fe1f30936448b87a.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
