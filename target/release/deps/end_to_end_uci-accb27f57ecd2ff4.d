/root/repo/target/release/deps/end_to_end_uci-accb27f57ecd2ff4.d: tests/end_to_end_uci.rs

/root/repo/target/release/deps/end_to_end_uci-accb27f57ecd2ff4: tests/end_to_end_uci.rs

tests/end_to_end_uci.rs:
