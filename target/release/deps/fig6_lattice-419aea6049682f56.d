/root/repo/target/release/deps/fig6_lattice-419aea6049682f56.d: crates/bench/src/bin/fig6_lattice.rs

/root/repo/target/release/deps/fig6_lattice-419aea6049682f56: crates/bench/src/bin/fig6_lattice.rs

crates/bench/src/bin/fig6_lattice.rs:
