/root/repo/target/release/deps/recovery_properties-859a66c3d08eed11.d: crates/sparsesolve/tests/recovery_properties.rs

/root/repo/target/release/deps/recovery_properties-859a66c3d08eed11: crates/sparsesolve/tests/recovery_properties.rs

crates/sparsesolve/tests/recovery_properties.rs:
