/root/repo/target/release/deps/crowdwifi_geo-d9d451324136156d.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/release/deps/crowdwifi_geo-d9d451324136156d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
