/root/repo/target/release/deps/crowdwifi_baselines-dcce0973dd97b3f5.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/release/deps/libcrowdwifi_baselines-dcce0973dd97b3f5.rlib: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/release/deps/libcrowdwifi_baselines-dcce0973dd97b3f5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
