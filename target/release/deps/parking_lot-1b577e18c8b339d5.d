/root/repo/target/release/deps/parking_lot-1b577e18c8b339d5.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-1b577e18c8b339d5: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
