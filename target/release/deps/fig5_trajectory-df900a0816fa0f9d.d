/root/repo/target/release/deps/fig5_trajectory-df900a0816fa0f9d.d: crates/bench/src/bin/fig5_trajectory.rs

/root/repo/target/release/deps/fig5_trajectory-df900a0816fa0f9d: crates/bench/src/bin/fig5_trajectory.rs

crates/bench/src/bin/fig5_trajectory.rs:
