/root/repo/target/release/deps/fig5_trajectory-e62f096e0ef75ad7.d: crates/bench/src/bin/fig5_trajectory.rs

/root/repo/target/release/deps/fig5_trajectory-e62f096e0ef75ad7: crates/bench/src/bin/fig5_trajectory.rs

crates/bench/src/bin/fig5_trajectory.rs:
