/root/repo/target/release/deps/crowdwifi_vanet_sim-c7089708d9fff468.d: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/release/deps/libcrowdwifi_vanet_sim-c7089708d9fff468.rlib: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/release/deps/libcrowdwifi_vanet_sim-c7089708d9fff468.rmeta: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

crates/vanet-sim/src/lib.rs:
crates/vanet-sim/src/ap.rs:
crates/vanet-sim/src/collector.rs:
crates/vanet-sim/src/mobility.rs:
crates/vanet-sim/src/scenario.rs:
crates/vanet-sim/src/trace_io.rs:
crates/vanet-sim/src/vanlan.rs:
