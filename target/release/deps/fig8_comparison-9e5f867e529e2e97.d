/root/repo/target/release/deps/fig8_comparison-9e5f867e529e2e97.d: crates/bench/src/bin/fig8_comparison.rs

/root/repo/target/release/deps/fig8_comparison-9e5f867e529e2e97: crates/bench/src/bin/fig8_comparison.rs

crates/bench/src/bin/fig8_comparison.rs:
