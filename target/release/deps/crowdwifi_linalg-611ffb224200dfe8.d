/root/repo/target/release/deps/crowdwifi_linalg-611ffb224200dfe8.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/crowdwifi_linalg-611ffb224200dfe8: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
