/root/repo/target/release/deps/fig9_testbed-7662abcfc6d1c464.d: crates/bench/src/bin/fig9_testbed.rs

/root/repo/target/release/deps/fig9_testbed-7662abcfc6d1c464: crates/bench/src/bin/fig9_testbed.rs

crates/bench/src/bin/fig9_testbed.rs:
