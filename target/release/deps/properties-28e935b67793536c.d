/root/repo/target/release/deps/properties-28e935b67793536c.d: crates/geo/tests/properties.rs

/root/repo/target/release/deps/properties-28e935b67793536c: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
