/root/repo/target/release/deps/properties-757870ac5be2647d.d: crates/baselines/tests/properties.rs

/root/repo/target/release/deps/properties-757870ac5be2647d: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
