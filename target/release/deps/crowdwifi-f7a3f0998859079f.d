/root/repo/target/release/deps/crowdwifi-f7a3f0998859079f.d: src/lib.rs

/root/repo/target/release/deps/crowdwifi-f7a3f0998859079f: src/lib.rs

src/lib.rs:
