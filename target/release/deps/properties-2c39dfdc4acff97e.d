/root/repo/target/release/deps/properties-2c39dfdc4acff97e.d: crates/handoff/tests/properties.rs

/root/repo/target/release/deps/properties-2c39dfdc4acff97e: crates/handoff/tests/properties.rs

crates/handoff/tests/properties.rs:
