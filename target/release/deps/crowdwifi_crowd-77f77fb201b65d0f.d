/root/repo/target/release/deps/crowdwifi_crowd-77f77fb201b65d0f.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/release/deps/crowdwifi_crowd-77f77fb201b65d0f: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
