/root/repo/target/release/deps/fig11_transfers-120899e89a06be46.d: crates/bench/src/bin/fig11_transfers.rs

/root/repo/target/release/deps/fig11_transfers-120899e89a06be46: crates/bench/src/bin/fig11_transfers.rs

crates/bench/src/bin/fig11_transfers.rs:
