/root/repo/target/release/deps/properties-6d63f6e71fc91b1f.d: crates/crowd/tests/properties.rs

/root/repo/target/release/deps/properties-6d63f6e71fc91b1f: crates/crowd/tests/properties.rs

crates/crowd/tests/properties.rs:
