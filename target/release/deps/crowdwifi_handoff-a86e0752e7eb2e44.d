/root/repo/target/release/deps/crowdwifi_handoff-a86e0752e7eb2e44.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/release/deps/crowdwifi_handoff-a86e0752e7eb2e44: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
