/root/repo/target/release/deps/criterion-05584dbd1df0b074.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-05584dbd1df0b074: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
