/root/repo/target/release/deps/crossbeam-17b473a854767fed.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-17b473a854767fed: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
