/root/repo/target/release/deps/crowdwifi-8593c26d640f2ef5.d: src/lib.rs

/root/repo/target/release/deps/libcrowdwifi-8593c26d640f2ef5.rlib: src/lib.rs

/root/repo/target/release/deps/libcrowdwifi-8593c26d640f2ef5.rmeta: src/lib.rs

src/lib.rs:
