/root/repo/target/release/deps/crowdsourcing_round-48d0f174d1cca2f3.d: tests/crowdsourcing_round.rs

/root/repo/target/release/deps/crowdsourcing_round-48d0f174d1cca2f3: tests/crowdsourcing_round.rs

tests/crowdsourcing_round.rs:
