/root/repo/target/release/deps/handoff_stack-055f1ab0c6a9ccc3.d: tests/handoff_stack.rs

/root/repo/target/release/deps/handoff_stack-055f1ab0c6a9ccc3: tests/handoff_stack.rs

tests/handoff_stack.rs:
