/root/repo/target/release/deps/crowdwifi_channel-350aff62c3eb0ca8.d: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/release/deps/libcrowdwifi_channel-350aff62c3eb0ca8.rlib: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/release/deps/libcrowdwifi_channel-350aff62c3eb0ca8.rmeta: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

crates/channel/src/lib.rs:
crates/channel/src/bic.rs:
crates/channel/src/gmm.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/reading.rs:
