/root/repo/target/release/deps/pipeline_throughput-6d4dc47adfe1dd75.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/release/deps/pipeline_throughput-6d4dc47adfe1dd75: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
