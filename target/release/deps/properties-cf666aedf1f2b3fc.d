/root/repo/target/release/deps/properties-cf666aedf1f2b3fc.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-cf666aedf1f2b3fc: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
