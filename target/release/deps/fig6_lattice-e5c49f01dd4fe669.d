/root/repo/target/release/deps/fig6_lattice-e5c49f01dd4fe669.d: crates/bench/src/bin/fig6_lattice.rs

/root/repo/target/release/deps/fig6_lattice-e5c49f01dd4fe669: crates/bench/src/bin/fig6_lattice.rs

crates/bench/src/bin/fig6_lattice.rs:
