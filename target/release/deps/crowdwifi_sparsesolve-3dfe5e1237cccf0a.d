/root/repo/target/release/deps/crowdwifi_sparsesolve-3dfe5e1237cccf0a.d: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

/root/repo/target/release/deps/crowdwifi_sparsesolve-3dfe5e1237cccf0a: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

crates/sparsesolve/src/lib.rs:
crates/sparsesolve/src/admm.rs:
crates/sparsesolve/src/any.rs:
crates/sparsesolve/src/fista.rs:
crates/sparsesolve/src/irls.rs:
crates/sparsesolve/src/omp.rs:
crates/sparsesolve/src/prox.rs:
crates/sparsesolve/src/workspace.rs:
