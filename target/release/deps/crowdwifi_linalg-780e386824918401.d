/root/repo/target/release/deps/crowdwifi_linalg-780e386824918401.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libcrowdwifi_linalg-780e386824918401.rlib: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libcrowdwifi_linalg-780e386824918401.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
