/root/repo/target/release/deps/fig9_testbed-9952e9e6844bbd1e.d: crates/bench/src/bin/fig9_testbed.rs

/root/repo/target/release/deps/fig9_testbed-9952e9e6844bbd1e: crates/bench/src/bin/fig9_testbed.rs

crates/bench/src/bin/fig9_testbed.rs:
