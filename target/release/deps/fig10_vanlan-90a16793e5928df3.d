/root/repo/target/release/deps/fig10_vanlan-90a16793e5928df3.d: crates/bench/src/bin/fig10_vanlan.rs

/root/repo/target/release/deps/fig10_vanlan-90a16793e5928df3: crates/bench/src/bin/fig10_vanlan.rs

crates/bench/src/bin/fig10_vanlan.rs:
