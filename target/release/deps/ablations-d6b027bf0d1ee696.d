/root/repo/target/release/deps/ablations-d6b027bf0d1ee696.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-d6b027bf0d1ee696: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
