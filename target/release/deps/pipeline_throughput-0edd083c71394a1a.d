/root/repo/target/release/deps/pipeline_throughput-0edd083c71394a1a.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/release/deps/pipeline_throughput-0edd083c71394a1a: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
