/root/repo/target/release/deps/crowdwifi_baselines-bee162dba1ff8800.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/release/deps/crowdwifi_baselines-bee162dba1ff8800: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
