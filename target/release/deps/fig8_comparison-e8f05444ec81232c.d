/root/repo/target/release/deps/fig8_comparison-e8f05444ec81232c.d: crates/bench/src/bin/fig8_comparison.rs

/root/repo/target/release/deps/fig8_comparison-e8f05444ec81232c: crates/bench/src/bin/fig8_comparison.rs

crates/bench/src/bin/fig8_comparison.rs:
