/root/repo/target/release/deps/crowdwifi_core-329e6cff7465d1d7.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

/root/repo/target/release/deps/libcrowdwifi_core-329e6cff7465d1d7.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

/root/repo/target/release/deps/libcrowdwifi_core-329e6cff7465d1d7.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/centroid.rs:
crates/core/src/consolidate.rs:
crates/core/src/metrics.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/refine.rs:
crates/core/src/recovery.rs:
crates/core/src/select.rs:
crates/core/src/window.rs:
