/root/repo/target/release/deps/properties-4b38071fc255f46b.d: crates/linalg/tests/properties.rs

/root/repo/target/release/deps/properties-4b38071fc255f46b: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
