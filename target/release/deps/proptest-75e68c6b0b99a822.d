/root/repo/target/release/deps/proptest-75e68c6b0b99a822.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-75e68c6b0b99a822: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
