/root/repo/target/release/deps/crowdwifi_channel-8a0401f596a30f0b.d: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/release/deps/crowdwifi_channel-8a0401f596a30f0b: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

crates/channel/src/lib.rs:
crates/channel/src/bic.rs:
crates/channel/src/gmm.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/reading.rs:
