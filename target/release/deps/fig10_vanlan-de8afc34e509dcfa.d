/root/repo/target/release/deps/fig10_vanlan-de8afc34e509dcfa.d: crates/bench/src/bin/fig10_vanlan.rs

/root/repo/target/release/deps/fig10_vanlan-de8afc34e509dcfa: crates/bench/src/bin/fig10_vanlan.rs

crates/bench/src/bin/fig10_vanlan.rs:
