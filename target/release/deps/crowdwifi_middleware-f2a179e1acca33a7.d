/root/repo/target/release/deps/crowdwifi_middleware-f2a179e1acca33a7.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/release/deps/crowdwifi_middleware-f2a179e1acca33a7: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
