/root/repo/target/release/deps/failure_injection-10eec2d174173a9a.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-10eec2d174173a9a: tests/failure_injection.rs

tests/failure_injection.rs:
