/root/repo/target/release/deps/crowdwifi_middleware-be0869139df648ed.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/release/deps/libcrowdwifi_middleware-be0869139df648ed.rlib: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/release/deps/libcrowdwifi_middleware-be0869139df648ed.rmeta: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
