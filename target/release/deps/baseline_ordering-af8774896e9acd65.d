/root/repo/target/release/deps/baseline_ordering-af8774896e9acd65.d: tests/baseline_ordering.rs

/root/repo/target/release/deps/baseline_ordering-af8774896e9acd65: tests/baseline_ordering.rs

tests/baseline_ordering.rs:
