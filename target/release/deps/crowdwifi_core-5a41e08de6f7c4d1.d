/root/repo/target/release/deps/crowdwifi_core-5a41e08de6f7c4d1.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

/root/repo/target/release/deps/crowdwifi_core-5a41e08de6f7c4d1: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/centroid.rs:
crates/core/src/consolidate.rs:
crates/core/src/metrics.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/refine.rs:
crates/core/src/recovery.rs:
crates/core/src/select.rs:
crates/core/src/window.rs:
