/root/repo/target/release/deps/fig7_crowdsourcing-9c050dbcaed3470c.d: crates/bench/src/bin/fig7_crowdsourcing.rs

/root/repo/target/release/deps/fig7_crowdsourcing-9c050dbcaed3470c: crates/bench/src/bin/fig7_crowdsourcing.rs

crates/bench/src/bin/fig7_crowdsourcing.rs:
