/root/repo/target/release/deps/crowdwifi_bench-0d8fbe3612093a53.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/crowdwifi_bench-0d8fbe3612093a53: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
