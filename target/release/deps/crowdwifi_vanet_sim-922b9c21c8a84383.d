/root/repo/target/release/deps/crowdwifi_vanet_sim-922b9c21c8a84383.d: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/release/deps/crowdwifi_vanet_sim-922b9c21c8a84383: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

crates/vanet-sim/src/lib.rs:
crates/vanet-sim/src/ap.rs:
crates/vanet-sim/src/collector.rs:
crates/vanet-sim/src/mobility.rs:
crates/vanet-sim/src/scenario.rs:
crates/vanet-sim/src/trace_io.rs:
crates/vanet-sim/src/vanlan.rs:
