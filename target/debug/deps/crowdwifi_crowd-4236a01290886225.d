/root/repo/target/debug/deps/crowdwifi_crowd-4236a01290886225.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/debug/deps/libcrowdwifi_crowd-4236a01290886225.rlib: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/debug/deps/libcrowdwifi_crowd-4236a01290886225.rmeta: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
