/root/repo/target/debug/deps/crowdwifi_crowd-8f8863b4803737ff.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/debug/deps/crowdwifi_crowd-8f8863b4803737ff: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
