/root/repo/target/debug/deps/crowdwifi_middleware-70e9b5d91ee1af04.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/debug/deps/libcrowdwifi_middleware-70e9b5d91ee1af04.rlib: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/debug/deps/libcrowdwifi_middleware-70e9b5d91ee1af04.rmeta: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
