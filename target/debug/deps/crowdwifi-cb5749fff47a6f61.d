/root/repo/target/debug/deps/crowdwifi-cb5749fff47a6f61.d: src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi-cb5749fff47a6f61.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi-cb5749fff47a6f61.rmeta: src/lib.rs

src/lib.rs:
