/root/repo/target/debug/deps/fig7_crowdsourcing-a6a484927c150f9f.d: crates/bench/src/bin/fig7_crowdsourcing.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_crowdsourcing-a6a484927c150f9f.rmeta: crates/bench/src/bin/fig7_crowdsourcing.rs Cargo.toml

crates/bench/src/bin/fig7_crowdsourcing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
