/root/repo/target/debug/deps/properties-d5c8b96844c15c8b.d: crates/crowd/tests/properties.rs

/root/repo/target/debug/deps/properties-d5c8b96844c15c8b: crates/crowd/tests/properties.rs

crates/crowd/tests/properties.rs:
