/root/repo/target/debug/deps/crowdwifi_channel-07245d7160e47a68.d: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/debug/deps/crowdwifi_channel-07245d7160e47a68: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

crates/channel/src/lib.rs:
crates/channel/src/bic.rs:
crates/channel/src/gmm.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/reading.rs:
