/root/repo/target/debug/deps/end_to_end_uci-de2dce2d36ec1dbe.d: tests/end_to_end_uci.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_uci-de2dce2d36ec1dbe.rmeta: tests/end_to_end_uci.rs Cargo.toml

tests/end_to_end_uci.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
