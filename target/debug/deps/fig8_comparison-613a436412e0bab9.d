/root/repo/target/debug/deps/fig8_comparison-613a436412e0bab9.d: crates/bench/src/bin/fig8_comparison.rs

/root/repo/target/debug/deps/fig8_comparison-613a436412e0bab9: crates/bench/src/bin/fig8_comparison.rs

crates/bench/src/bin/fig8_comparison.rs:
