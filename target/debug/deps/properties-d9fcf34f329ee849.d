/root/repo/target/debug/deps/properties-d9fcf34f329ee849.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-d9fcf34f329ee849: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
