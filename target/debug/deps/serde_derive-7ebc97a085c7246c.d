/root/repo/target/debug/deps/serde_derive-7ebc97a085c7246c.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-7ebc97a085c7246c: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
