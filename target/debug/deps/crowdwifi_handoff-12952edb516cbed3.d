/root/repo/target/debug/deps/crowdwifi_handoff-12952edb516cbed3.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/debug/deps/libcrowdwifi_handoff-12952edb516cbed3.rlib: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/debug/deps/libcrowdwifi_handoff-12952edb516cbed3.rmeta: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
