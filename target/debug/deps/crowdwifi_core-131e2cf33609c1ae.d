/root/repo/target/debug/deps/crowdwifi_core-131e2cf33609c1ae.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

/root/repo/target/debug/deps/libcrowdwifi_core-131e2cf33609c1ae.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

/root/repo/target/debug/deps/libcrowdwifi_core-131e2cf33609c1ae.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/centroid.rs:
crates/core/src/consolidate.rs:
crates/core/src/metrics.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/refine.rs:
crates/core/src/recovery.rs:
crates/core/src/select.rs:
crates/core/src/window.rs:
