/root/repo/target/debug/deps/recovery_properties-267487781cdc9018.d: crates/sparsesolve/tests/recovery_properties.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_properties-267487781cdc9018.rmeta: crates/sparsesolve/tests/recovery_properties.rs Cargo.toml

crates/sparsesolve/tests/recovery_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
