/root/repo/target/debug/deps/rand_chacha-dbd3ba99fbd31007.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-dbd3ba99fbd31007: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
