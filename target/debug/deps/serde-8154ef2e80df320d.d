/root/repo/target/debug/deps/serde-8154ef2e80df320d.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-8154ef2e80df320d: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
