/root/repo/target/debug/deps/baseline_ordering-df11f7507580042c.d: tests/baseline_ordering.rs

/root/repo/target/debug/deps/baseline_ordering-df11f7507580042c: tests/baseline_ordering.rs

tests/baseline_ordering.rs:
