/root/repo/target/debug/deps/crossbeam-c0b40833caa901f1.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-c0b40833caa901f1: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
