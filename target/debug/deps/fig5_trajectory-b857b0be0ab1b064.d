/root/repo/target/debug/deps/fig5_trajectory-b857b0be0ab1b064.d: crates/bench/src/bin/fig5_trajectory.rs

/root/repo/target/debug/deps/fig5_trajectory-b857b0be0ab1b064: crates/bench/src/bin/fig5_trajectory.rs

crates/bench/src/bin/fig5_trajectory.rs:
