/root/repo/target/debug/deps/crowdwifi_channel-c6c71a688acb9534.d: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/debug/deps/libcrowdwifi_channel-c6c71a688acb9534.rlib: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

/root/repo/target/debug/deps/libcrowdwifi_channel-c6c71a688acb9534.rmeta: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs

crates/channel/src/lib.rs:
crates/channel/src/bic.rs:
crates/channel/src/gmm.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/reading.rs:
