/root/repo/target/debug/deps/crowdwifi_geo-91ec724a5ee686c5.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/libcrowdwifi_geo-91ec724a5ee686c5.rlib: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/libcrowdwifi_geo-91ec724a5ee686c5.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
