/root/repo/target/debug/deps/crowdwifi_baselines-c6fe24b70faaeaca.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/debug/deps/libcrowdwifi_baselines-c6fe24b70faaeaca.rlib: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/debug/deps/libcrowdwifi_baselines-c6fe24b70faaeaca.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
