/root/repo/target/debug/deps/fig9_testbed-bda61fcc6813eca2.d: crates/bench/src/bin/fig9_testbed.rs

/root/repo/target/debug/deps/fig9_testbed-bda61fcc6813eca2: crates/bench/src/bin/fig9_testbed.rs

crates/bench/src/bin/fig9_testbed.rs:
