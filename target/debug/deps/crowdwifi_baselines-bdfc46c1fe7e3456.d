/root/repo/target/debug/deps/crowdwifi_baselines-bdfc46c1fe7e3456.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_baselines-bdfc46c1fe7e3456.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
