/root/repo/target/debug/deps/fig6_lattice-b286391f250db8fa.d: crates/bench/src/bin/fig6_lattice.rs

/root/repo/target/debug/deps/fig6_lattice-b286391f250db8fa: crates/bench/src/bin/fig6_lattice.rs

crates/bench/src/bin/fig6_lattice.rs:
