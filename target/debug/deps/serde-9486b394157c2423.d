/root/repo/target/debug/deps/serde-9486b394157c2423.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9486b394157c2423.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9486b394157c2423.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
