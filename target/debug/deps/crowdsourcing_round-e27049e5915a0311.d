/root/repo/target/debug/deps/crowdsourcing_round-e27049e5915a0311.d: tests/crowdsourcing_round.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdsourcing_round-e27049e5915a0311.rmeta: tests/crowdsourcing_round.rs Cargo.toml

tests/crowdsourcing_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
