/root/repo/target/debug/deps/crowdwifi-89d462634c6cd9dd.d: src/lib.rs

/root/repo/target/debug/deps/crowdwifi-89d462634c6cd9dd: src/lib.rs

src/lib.rs:
