/root/repo/target/debug/deps/end_to_end_uci-7c921e8145627364.d: tests/end_to_end_uci.rs

/root/repo/target/debug/deps/end_to_end_uci-7c921e8145627364: tests/end_to_end_uci.rs

tests/end_to_end_uci.rs:
