/root/repo/target/debug/deps/crowdwifi_linalg-650238df1aea0c2f.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_linalg-650238df1aea0c2f.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
