/root/repo/target/debug/deps/crowdwifi_handoff-84d9da559c92b7e7.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/debug/deps/crowdwifi_handoff-84d9da559c92b7e7: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
