/root/repo/target/debug/deps/ablations-bef549ec6462490c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-bef549ec6462490c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
