/root/repo/target/debug/deps/fig11_transfers-775bb716652bbbe0.d: crates/bench/src/bin/fig11_transfers.rs

/root/repo/target/debug/deps/fig11_transfers-775bb716652bbbe0: crates/bench/src/bin/fig11_transfers.rs

crates/bench/src/bin/fig11_transfers.rs:
