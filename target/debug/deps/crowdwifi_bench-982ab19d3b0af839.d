/root/repo/target/debug/deps/crowdwifi_bench-982ab19d3b0af839.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_bench-982ab19d3b0af839.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
