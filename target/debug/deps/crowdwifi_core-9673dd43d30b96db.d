/root/repo/target/debug/deps/crowdwifi_core-9673dd43d30b96db.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_core-9673dd43d30b96db.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/centroid.rs crates/core/src/consolidate.rs crates/core/src/metrics.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/refine.rs crates/core/src/recovery.rs crates/core/src/select.rs crates/core/src/window.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/centroid.rs:
crates/core/src/consolidate.rs:
crates/core/src/metrics.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/refine.rs:
crates/core/src/recovery.rs:
crates/core/src/select.rs:
crates/core/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
