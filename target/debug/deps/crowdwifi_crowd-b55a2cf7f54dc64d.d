/root/repo/target/debug/deps/crowdwifi_crowd-b55a2cf7f54dc64d.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/debug/deps/libcrowdwifi_crowd-b55a2cf7f54dc64d.rlib: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

/root/repo/target/debug/deps/libcrowdwifi_crowd-b55a2cf7f54dc64d.rmeta: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
