/root/repo/target/debug/deps/crowdwifi_baselines-3be5a21858d3f86a.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_baselines-3be5a21858d3f86a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
