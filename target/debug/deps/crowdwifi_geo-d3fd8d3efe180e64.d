/root/repo/target/debug/deps/crowdwifi_geo-d3fd8d3efe180e64.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/libcrowdwifi_geo-d3fd8d3efe180e64.rlib: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/libcrowdwifi_geo-d3fd8d3efe180e64.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
