/root/repo/target/debug/deps/failure_injection-44e65eb28fbff715.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-44e65eb28fbff715: tests/failure_injection.rs

tests/failure_injection.rs:
