/root/repo/target/debug/deps/fig7_crowdsourcing-112f5461952c894b.d: crates/bench/src/bin/fig7_crowdsourcing.rs

/root/repo/target/debug/deps/fig7_crowdsourcing-112f5461952c894b: crates/bench/src/bin/fig7_crowdsourcing.rs

crates/bench/src/bin/fig7_crowdsourcing.rs:
