/root/repo/target/debug/deps/crossbeam-1cf24e43298b48be.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1cf24e43298b48be.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1cf24e43298b48be.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
