/root/repo/target/debug/deps/rand_chacha-80d04deb8bd0c71c.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-80d04deb8bd0c71c.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-80d04deb8bd0c71c.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
