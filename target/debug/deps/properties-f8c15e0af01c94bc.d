/root/repo/target/debug/deps/properties-f8c15e0af01c94bc.d: crates/geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f8c15e0af01c94bc.rmeta: crates/geo/tests/properties.rs Cargo.toml

crates/geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
