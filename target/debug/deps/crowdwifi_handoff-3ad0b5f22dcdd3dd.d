/root/repo/target/debug/deps/crowdwifi_handoff-3ad0b5f22dcdd3dd.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/debug/deps/libcrowdwifi_handoff-3ad0b5f22dcdd3dd.rlib: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

/root/repo/target/debug/deps/libcrowdwifi_handoff-3ad0b5f22dcdd3dd.rmeta: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
