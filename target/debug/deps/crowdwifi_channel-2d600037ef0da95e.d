/root/repo/target/debug/deps/crowdwifi_channel-2d600037ef0da95e.d: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_channel-2d600037ef0da95e.rmeta: crates/channel/src/lib.rs crates/channel/src/bic.rs crates/channel/src/gmm.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/reading.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/bic.rs:
crates/channel/src/gmm.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/reading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
