/root/repo/target/debug/deps/handoff_stack-0133d5d98477e958.d: tests/handoff_stack.rs Cargo.toml

/root/repo/target/debug/deps/libhandoff_stack-0133d5d98477e958.rmeta: tests/handoff_stack.rs Cargo.toml

tests/handoff_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
