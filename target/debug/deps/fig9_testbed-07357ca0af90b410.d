/root/repo/target/debug/deps/fig9_testbed-07357ca0af90b410.d: crates/bench/src/bin/fig9_testbed.rs

/root/repo/target/debug/deps/fig9_testbed-07357ca0af90b410: crates/bench/src/bin/fig9_testbed.rs

crates/bench/src/bin/fig9_testbed.rs:
