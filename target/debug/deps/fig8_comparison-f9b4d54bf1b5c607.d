/root/repo/target/debug/deps/fig8_comparison-f9b4d54bf1b5c607.d: crates/bench/src/bin/fig8_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_comparison-f9b4d54bf1b5c607.rmeta: crates/bench/src/bin/fig8_comparison.rs Cargo.toml

crates/bench/src/bin/fig8_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
