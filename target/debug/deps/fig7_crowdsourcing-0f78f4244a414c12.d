/root/repo/target/debug/deps/fig7_crowdsourcing-0f78f4244a414c12.d: crates/bench/src/bin/fig7_crowdsourcing.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_crowdsourcing-0f78f4244a414c12.rmeta: crates/bench/src/bin/fig7_crowdsourcing.rs Cargo.toml

crates/bench/src/bin/fig7_crowdsourcing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
