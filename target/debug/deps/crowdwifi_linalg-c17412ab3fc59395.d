/root/repo/target/debug/deps/crowdwifi_linalg-c17412ab3fc59395.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libcrowdwifi_linalg-c17412ab3fc59395.rlib: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libcrowdwifi_linalg-c17412ab3fc59395.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
