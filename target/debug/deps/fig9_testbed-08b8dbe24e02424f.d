/root/repo/target/debug/deps/fig9_testbed-08b8dbe24e02424f.d: crates/bench/src/bin/fig9_testbed.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_testbed-08b8dbe24e02424f.rmeta: crates/bench/src/bin/fig9_testbed.rs Cargo.toml

crates/bench/src/bin/fig9_testbed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
