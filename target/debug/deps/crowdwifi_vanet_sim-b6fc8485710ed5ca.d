/root/repo/target/debug/deps/crowdwifi_vanet_sim-b6fc8485710ed5ca.d: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/debug/deps/libcrowdwifi_vanet_sim-b6fc8485710ed5ca.rlib: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/debug/deps/libcrowdwifi_vanet_sim-b6fc8485710ed5ca.rmeta: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

crates/vanet-sim/src/lib.rs:
crates/vanet-sim/src/ap.rs:
crates/vanet-sim/src/collector.rs:
crates/vanet-sim/src/mobility.rs:
crates/vanet-sim/src/scenario.rs:
crates/vanet-sim/src/trace_io.rs:
crates/vanet-sim/src/vanlan.rs:
