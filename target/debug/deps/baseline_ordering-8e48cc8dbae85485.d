/root/repo/target/debug/deps/baseline_ordering-8e48cc8dbae85485.d: tests/baseline_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_ordering-8e48cc8dbae85485.rmeta: tests/baseline_ordering.rs Cargo.toml

tests/baseline_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
