/root/repo/target/debug/deps/rand_chacha-a85c1ac18f1d44fc.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-a85c1ac18f1d44fc.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-a85c1ac18f1d44fc.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
