/root/repo/target/debug/deps/properties-faeeed97c1557d73.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-faeeed97c1557d73: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
