/root/repo/target/debug/deps/inference_scaling-a160f07f10225f56.d: crates/bench/benches/inference_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libinference_scaling-a160f07f10225f56.rmeta: crates/bench/benches/inference_scaling.rs Cargo.toml

crates/bench/benches/inference_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
