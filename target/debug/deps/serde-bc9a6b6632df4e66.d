/root/repo/target/debug/deps/serde-bc9a6b6632df4e66.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bc9a6b6632df4e66.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bc9a6b6632df4e66.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
