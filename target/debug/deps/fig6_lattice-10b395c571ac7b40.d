/root/repo/target/debug/deps/fig6_lattice-10b395c571ac7b40.d: crates/bench/src/bin/fig6_lattice.rs

/root/repo/target/debug/deps/fig6_lattice-10b395c571ac7b40: crates/bench/src/bin/fig6_lattice.rs

crates/bench/src/bin/fig6_lattice.rs:
