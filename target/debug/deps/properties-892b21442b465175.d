/root/repo/target/debug/deps/properties-892b21442b465175.d: crates/linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-892b21442b465175.rmeta: crates/linalg/tests/properties.rs Cargo.toml

crates/linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
