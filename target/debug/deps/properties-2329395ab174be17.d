/root/repo/target/debug/deps/properties-2329395ab174be17.d: crates/baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2329395ab174be17.rmeta: crates/baselines/tests/properties.rs Cargo.toml

crates/baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
