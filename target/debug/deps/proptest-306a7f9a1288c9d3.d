/root/repo/target/debug/deps/proptest-306a7f9a1288c9d3.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-306a7f9a1288c9d3.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-306a7f9a1288c9d3.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
