/root/repo/target/debug/deps/proptest-3ea3d6f9be35617e.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3ea3d6f9be35617e.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3ea3d6f9be35617e.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
