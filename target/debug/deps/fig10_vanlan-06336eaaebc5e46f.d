/root/repo/target/debug/deps/fig10_vanlan-06336eaaebc5e46f.d: crates/bench/src/bin/fig10_vanlan.rs

/root/repo/target/debug/deps/fig10_vanlan-06336eaaebc5e46f: crates/bench/src/bin/fig10_vanlan.rs

crates/bench/src/bin/fig10_vanlan.rs:
