/root/repo/target/debug/deps/crowdwifi_handoff-397f363b857baaf2.d: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_handoff-397f363b857baaf2.rmeta: crates/handoff/src/lib.rs crates/handoff/src/connectivity.rs crates/handoff/src/db.rs crates/handoff/src/session.rs crates/handoff/src/transfer.rs Cargo.toml

crates/handoff/src/lib.rs:
crates/handoff/src/connectivity.rs:
crates/handoff/src/db.rs:
crates/handoff/src/session.rs:
crates/handoff/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
