/root/repo/target/debug/deps/properties-cc2ed69289dbb1bc.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cc2ed69289dbb1bc.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
