/root/repo/target/debug/deps/fig8_comparison-8f02e83efa702567.d: crates/bench/src/bin/fig8_comparison.rs

/root/repo/target/debug/deps/fig8_comparison-8f02e83efa702567: crates/bench/src/bin/fig8_comparison.rs

crates/bench/src/bin/fig8_comparison.rs:
