/root/repo/target/debug/deps/pipeline_round-390df77268b5cef5.d: crates/bench/benches/pipeline_round.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_round-390df77268b5cef5.rmeta: crates/bench/benches/pipeline_round.rs Cargo.toml

crates/bench/benches/pipeline_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
