/root/repo/target/debug/deps/crowdwifi_sparsesolve-2eda6c3cda42569c.d: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

/root/repo/target/debug/deps/libcrowdwifi_sparsesolve-2eda6c3cda42569c.rlib: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

/root/repo/target/debug/deps/libcrowdwifi_sparsesolve-2eda6c3cda42569c.rmeta: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

crates/sparsesolve/src/lib.rs:
crates/sparsesolve/src/admm.rs:
crates/sparsesolve/src/any.rs:
crates/sparsesolve/src/fista.rs:
crates/sparsesolve/src/irls.rs:
crates/sparsesolve/src/omp.rs:
crates/sparsesolve/src/prox.rs:
crates/sparsesolve/src/workspace.rs:
