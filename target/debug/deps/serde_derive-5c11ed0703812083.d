/root/repo/target/debug/deps/serde_derive-5c11ed0703812083.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5c11ed0703812083.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
