/root/repo/target/debug/deps/crowdwifi_baselines-cd8b98184395bf9d.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/debug/deps/libcrowdwifi_baselines-cd8b98184395bf9d.rlib: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/debug/deps/libcrowdwifi_baselines-cd8b98184395bf9d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
