/root/repo/target/debug/deps/pipeline_throughput-8d380ed1935b2bde.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-8d380ed1935b2bde.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
