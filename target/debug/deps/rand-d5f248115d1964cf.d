/root/repo/target/debug/deps/rand-d5f248115d1964cf.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d5f248115d1964cf.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d5f248115d1964cf.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
