/root/repo/target/debug/deps/criterion-a22573b96c1189da.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a22573b96c1189da: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
