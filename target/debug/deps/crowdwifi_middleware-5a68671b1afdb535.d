/root/repo/target/debug/deps/crowdwifi_middleware-5a68671b1afdb535.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/debug/deps/crowdwifi_middleware-5a68671b1afdb535: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
