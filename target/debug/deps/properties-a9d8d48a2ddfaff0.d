/root/repo/target/debug/deps/properties-a9d8d48a2ddfaff0.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-a9d8d48a2ddfaff0: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
