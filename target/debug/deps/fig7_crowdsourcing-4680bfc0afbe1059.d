/root/repo/target/debug/deps/fig7_crowdsourcing-4680bfc0afbe1059.d: crates/bench/src/bin/fig7_crowdsourcing.rs

/root/repo/target/debug/deps/fig7_crowdsourcing-4680bfc0afbe1059: crates/bench/src/bin/fig7_crowdsourcing.rs

crates/bench/src/bin/fig7_crowdsourcing.rs:
