/root/repo/target/debug/deps/fig5_trajectory-e24822105127b140.d: crates/bench/src/bin/fig5_trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_trajectory-e24822105127b140.rmeta: crates/bench/src/bin/fig5_trajectory.rs Cargo.toml

crates/bench/src/bin/fig5_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
