/root/repo/target/debug/deps/fig10_vanlan-a6bf96d89d189f8d.d: crates/bench/src/bin/fig10_vanlan.rs

/root/repo/target/debug/deps/fig10_vanlan-a6bf96d89d189f8d: crates/bench/src/bin/fig10_vanlan.rs

crates/bench/src/bin/fig10_vanlan.rs:
