/root/repo/target/debug/deps/fig5_trajectory-280db30ee81efb44.d: crates/bench/src/bin/fig5_trajectory.rs

/root/repo/target/debug/deps/fig5_trajectory-280db30ee81efb44: crates/bench/src/bin/fig5_trajectory.rs

crates/bench/src/bin/fig5_trajectory.rs:
