/root/repo/target/debug/deps/crowdwifi_middleware-c68ca186f1eea1a5.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/debug/deps/libcrowdwifi_middleware-c68ca186f1eea1a5.rlib: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

/root/repo/target/debug/deps/libcrowdwifi_middleware-c68ca186f1eea1a5.rmeta: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
