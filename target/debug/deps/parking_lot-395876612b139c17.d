/root/repo/target/debug/deps/parking_lot-395876612b139c17.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-395876612b139c17: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
