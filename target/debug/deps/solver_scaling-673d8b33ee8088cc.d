/root/repo/target/debug/deps/solver_scaling-673d8b33ee8088cc.d: crates/bench/benches/solver_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_scaling-673d8b33ee8088cc.rmeta: crates/bench/benches/solver_scaling.rs Cargo.toml

crates/bench/benches/solver_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
