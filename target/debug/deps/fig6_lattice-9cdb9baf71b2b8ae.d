/root/repo/target/debug/deps/fig6_lattice-9cdb9baf71b2b8ae.d: crates/bench/src/bin/fig6_lattice.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_lattice-9cdb9baf71b2b8ae.rmeta: crates/bench/src/bin/fig6_lattice.rs Cargo.toml

crates/bench/src/bin/fig6_lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
