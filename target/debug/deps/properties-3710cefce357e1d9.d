/root/repo/target/debug/deps/properties-3710cefce357e1d9.d: crates/handoff/tests/properties.rs

/root/repo/target/debug/deps/properties-3710cefce357e1d9: crates/handoff/tests/properties.rs

crates/handoff/tests/properties.rs:
