/root/repo/target/debug/deps/proptest-bc619c320a2aa695.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bc619c320a2aa695.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
