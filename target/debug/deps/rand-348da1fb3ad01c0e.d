/root/repo/target/debug/deps/rand-348da1fb3ad01c0e.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-348da1fb3ad01c0e.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-348da1fb3ad01c0e.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
