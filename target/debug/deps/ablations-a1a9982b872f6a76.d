/root/repo/target/debug/deps/ablations-a1a9982b872f6a76.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a1a9982b872f6a76: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
