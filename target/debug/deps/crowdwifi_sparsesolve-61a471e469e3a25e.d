/root/repo/target/debug/deps/crowdwifi_sparsesolve-61a471e469e3a25e.d: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_sparsesolve-61a471e469e3a25e.rmeta: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs Cargo.toml

crates/sparsesolve/src/lib.rs:
crates/sparsesolve/src/admm.rs:
crates/sparsesolve/src/any.rs:
crates/sparsesolve/src/fista.rs:
crates/sparsesolve/src/irls.rs:
crates/sparsesolve/src/omp.rs:
crates/sparsesolve/src/prox.rs:
crates/sparsesolve/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
