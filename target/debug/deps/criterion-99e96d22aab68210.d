/root/repo/target/debug/deps/criterion-99e96d22aab68210.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-99e96d22aab68210.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-99e96d22aab68210.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
