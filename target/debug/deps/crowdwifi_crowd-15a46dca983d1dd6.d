/root/repo/target/debug/deps/crowdwifi_crowd-15a46dca983d1dd6.d: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_crowd-15a46dca983d1dd6.rmeta: crates/crowd/src/lib.rs crates/crowd/src/aggregate.rs crates/crowd/src/em.rs crates/crowd/src/fusion.rs crates/crowd/src/graph.rs crates/crowd/src/inference.rs crates/crowd/src/worker.rs Cargo.toml

crates/crowd/src/lib.rs:
crates/crowd/src/aggregate.rs:
crates/crowd/src/em.rs:
crates/crowd/src/fusion.rs:
crates/crowd/src/graph.rs:
crates/crowd/src/inference.rs:
crates/crowd/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
