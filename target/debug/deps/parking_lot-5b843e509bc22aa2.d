/root/repo/target/debug/deps/parking_lot-5b843e509bc22aa2.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5b843e509bc22aa2.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5b843e509bc22aa2.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
