/root/repo/target/debug/deps/crowdwifi_linalg-ed77c89ed341da1a.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_linalg-ed77c89ed341da1a.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
