/root/repo/target/debug/deps/properties-dd44ffa523d26997.d: crates/handoff/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dd44ffa523d26997.rmeta: crates/handoff/tests/properties.rs Cargo.toml

crates/handoff/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
