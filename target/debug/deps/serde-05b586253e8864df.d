/root/repo/target/debug/deps/serde-05b586253e8864df.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-05b586253e8864df.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
