/root/repo/target/debug/deps/crowdwifi_geo-e480439fb7229bce.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_geo-e480439fb7229bce.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
