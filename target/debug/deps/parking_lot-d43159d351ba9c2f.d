/root/repo/target/debug/deps/parking_lot-d43159d351ba9c2f.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d43159d351ba9c2f.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d43159d351ba9c2f.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
