/root/repo/target/debug/deps/recovery_properties-4eba40175b66ead8.d: crates/sparsesolve/tests/recovery_properties.rs

/root/repo/target/debug/deps/recovery_properties-4eba40175b66ead8: crates/sparsesolve/tests/recovery_properties.rs

crates/sparsesolve/tests/recovery_properties.rs:
