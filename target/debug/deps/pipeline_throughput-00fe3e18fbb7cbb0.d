/root/repo/target/debug/deps/pipeline_throughput-00fe3e18fbb7cbb0.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-00fe3e18fbb7cbb0.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
