/root/repo/target/debug/deps/crowdsourcing_round-722dd91ce700ed39.d: tests/crowdsourcing_round.rs

/root/repo/target/debug/deps/crowdsourcing_round-722dd91ce700ed39: tests/crowdsourcing_round.rs

tests/crowdsourcing_round.rs:
