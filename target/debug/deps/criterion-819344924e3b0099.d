/root/repo/target/debug/deps/criterion-819344924e3b0099.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-819344924e3b0099.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-819344924e3b0099.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
