/root/repo/target/debug/deps/properties-0d21d837ef2b4ffd.d: crates/channel/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0d21d837ef2b4ffd.rmeta: crates/channel/tests/properties.rs Cargo.toml

crates/channel/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
