/root/repo/target/debug/deps/pipeline_throughput-6906772cf03217c5.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/debug/deps/pipeline_throughput-6906772cf03217c5: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
