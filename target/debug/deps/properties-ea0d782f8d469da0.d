/root/repo/target/debug/deps/properties-ea0d782f8d469da0.d: crates/channel/tests/properties.rs

/root/repo/target/debug/deps/properties-ea0d782f8d469da0: crates/channel/tests/properties.rs

crates/channel/tests/properties.rs:
