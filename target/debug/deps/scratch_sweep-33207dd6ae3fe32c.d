/root/repo/target/debug/deps/scratch_sweep-33207dd6ae3fe32c.d: crates/middleware/tests/scratch_sweep.rs

/root/repo/target/debug/deps/scratch_sweep-33207dd6ae3fe32c: crates/middleware/tests/scratch_sweep.rs

crates/middleware/tests/scratch_sweep.rs:
