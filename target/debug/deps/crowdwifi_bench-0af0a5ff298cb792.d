/root/repo/target/debug/deps/crowdwifi_bench-0af0a5ff298cb792.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/crowdwifi_bench-0af0a5ff298cb792: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
