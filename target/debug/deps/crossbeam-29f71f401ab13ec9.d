/root/repo/target/debug/deps/crossbeam-29f71f401ab13ec9.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-29f71f401ab13ec9.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-29f71f401ab13ec9.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
