/root/repo/target/debug/deps/rand_chacha-6462ce07bfb5a4e0.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-6462ce07bfb5a4e0.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
