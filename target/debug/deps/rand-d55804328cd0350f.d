/root/repo/target/debug/deps/rand-d55804328cd0350f.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-d55804328cd0350f: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
