/root/repo/target/debug/deps/crowdwifi_middleware-08d824cb70186a4b.d: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_middleware-08d824cb70186a4b.rmeta: crates/middleware/src/lib.rs crates/middleware/src/messages.rs crates/middleware/src/platform.rs crates/middleware/src/segment.rs crates/middleware/src/server.rs crates/middleware/src/user.rs crates/middleware/src/vehicle.rs Cargo.toml

crates/middleware/src/lib.rs:
crates/middleware/src/messages.rs:
crates/middleware/src/platform.rs:
crates/middleware/src/segment.rs:
crates/middleware/src/server.rs:
crates/middleware/src/user.rs:
crates/middleware/src/vehicle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
