/root/repo/target/debug/deps/crowdwifi_bench-3261710f800b08b1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_bench-3261710f800b08b1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
