/root/repo/target/debug/deps/properties-f18319827e6c1311.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-f18319827e6c1311: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
