/root/repo/target/debug/deps/crowdwifi_bench-c9d3fdcadcf673ca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi_bench-c9d3fdcadcf673ca.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi_bench-c9d3fdcadcf673ca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
