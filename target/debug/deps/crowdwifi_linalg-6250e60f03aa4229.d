/root/repo/target/debug/deps/crowdwifi_linalg-6250e60f03aa4229.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libcrowdwifi_linalg-6250e60f03aa4229.rlib: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libcrowdwifi_linalg-6250e60f03aa4229.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
