/root/repo/target/debug/deps/fig11_transfers-0567988ba4fa5e8b.d: crates/bench/src/bin/fig11_transfers.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_transfers-0567988ba4fa5e8b.rmeta: crates/bench/src/bin/fig11_transfers.rs Cargo.toml

crates/bench/src/bin/fig11_transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
