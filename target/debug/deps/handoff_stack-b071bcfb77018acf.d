/root/repo/target/debug/deps/handoff_stack-b071bcfb77018acf.d: tests/handoff_stack.rs

/root/repo/target/debug/deps/handoff_stack-b071bcfb77018acf: tests/handoff_stack.rs

tests/handoff_stack.rs:
