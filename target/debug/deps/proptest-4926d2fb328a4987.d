/root/repo/target/debug/deps/proptest-4926d2fb328a4987.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4926d2fb328a4987: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
