/root/repo/target/debug/deps/crowdwifi-ab8d57b5d9caf025.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi-ab8d57b5d9caf025.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
