/root/repo/target/debug/deps/fig10_vanlan-2f2cfdbd5177f868.d: crates/bench/src/bin/fig10_vanlan.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_vanlan-2f2cfdbd5177f868.rmeta: crates/bench/src/bin/fig10_vanlan.rs Cargo.toml

crates/bench/src/bin/fig10_vanlan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
