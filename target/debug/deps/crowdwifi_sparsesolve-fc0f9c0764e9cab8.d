/root/repo/target/debug/deps/crowdwifi_sparsesolve-fc0f9c0764e9cab8.d: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

/root/repo/target/debug/deps/crowdwifi_sparsesolve-fc0f9c0764e9cab8: crates/sparsesolve/src/lib.rs crates/sparsesolve/src/admm.rs crates/sparsesolve/src/any.rs crates/sparsesolve/src/fista.rs crates/sparsesolve/src/irls.rs crates/sparsesolve/src/omp.rs crates/sparsesolve/src/prox.rs crates/sparsesolve/src/workspace.rs

crates/sparsesolve/src/lib.rs:
crates/sparsesolve/src/admm.rs:
crates/sparsesolve/src/any.rs:
crates/sparsesolve/src/fista.rs:
crates/sparsesolve/src/irls.rs:
crates/sparsesolve/src/omp.rs:
crates/sparsesolve/src/prox.rs:
crates/sparsesolve/src/workspace.rs:
