/root/repo/target/debug/deps/crowdwifi_bench-4a06f65bdaaddcab.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi_bench-4a06f65bdaaddcab.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi_bench-4a06f65bdaaddcab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
