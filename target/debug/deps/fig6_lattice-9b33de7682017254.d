/root/repo/target/debug/deps/fig6_lattice-9b33de7682017254.d: crates/bench/src/bin/fig6_lattice.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_lattice-9b33de7682017254.rmeta: crates/bench/src/bin/fig6_lattice.rs Cargo.toml

crates/bench/src/bin/fig6_lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
