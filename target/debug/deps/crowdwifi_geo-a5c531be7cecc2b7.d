/root/repo/target/debug/deps/crowdwifi_geo-a5c531be7cecc2b7.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_geo-a5c531be7cecc2b7.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
