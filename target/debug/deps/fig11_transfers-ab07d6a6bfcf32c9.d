/root/repo/target/debug/deps/fig11_transfers-ab07d6a6bfcf32c9.d: crates/bench/src/bin/fig11_transfers.rs

/root/repo/target/debug/deps/fig11_transfers-ab07d6a6bfcf32c9: crates/bench/src/bin/fig11_transfers.rs

crates/bench/src/bin/fig11_transfers.rs:
