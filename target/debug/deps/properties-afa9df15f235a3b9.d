/root/repo/target/debug/deps/properties-afa9df15f235a3b9.d: crates/crowd/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-afa9df15f235a3b9.rmeta: crates/crowd/tests/properties.rs Cargo.toml

crates/crowd/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
