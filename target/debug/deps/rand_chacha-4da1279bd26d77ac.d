/root/repo/target/debug/deps/rand_chacha-4da1279bd26d77ac.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-4da1279bd26d77ac.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
