/root/repo/target/debug/deps/crowdwifi_baselines-6949686a106ea814.d: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

/root/repo/target/debug/deps/crowdwifi_baselines-6949686a106ea814: crates/baselines/src/lib.rs crates/baselines/src/lgmm.rs crates/baselines/src/mds.rs crates/baselines/src/skyhook.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lgmm.rs:
crates/baselines/src/mds.rs:
crates/baselines/src/skyhook.rs:
