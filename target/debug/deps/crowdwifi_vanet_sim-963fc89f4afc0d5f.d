/root/repo/target/debug/deps/crowdwifi_vanet_sim-963fc89f4afc0d5f.d: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/debug/deps/libcrowdwifi_vanet_sim-963fc89f4afc0d5f.rlib: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

/root/repo/target/debug/deps/libcrowdwifi_vanet_sim-963fc89f4afc0d5f.rmeta: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs

crates/vanet-sim/src/lib.rs:
crates/vanet-sim/src/ap.rs:
crates/vanet-sim/src/collector.rs:
crates/vanet-sim/src/mobility.rs:
crates/vanet-sim/src/scenario.rs:
crates/vanet-sim/src/trace_io.rs:
crates/vanet-sim/src/vanlan.rs:
