/root/repo/target/debug/deps/crowdwifi_vanet_sim-01dcffc9f86bc038.d: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi_vanet_sim-01dcffc9f86bc038.rmeta: crates/vanet-sim/src/lib.rs crates/vanet-sim/src/ap.rs crates/vanet-sim/src/collector.rs crates/vanet-sim/src/mobility.rs crates/vanet-sim/src/scenario.rs crates/vanet-sim/src/trace_io.rs crates/vanet-sim/src/vanlan.rs Cargo.toml

crates/vanet-sim/src/lib.rs:
crates/vanet-sim/src/ap.rs:
crates/vanet-sim/src/collector.rs:
crates/vanet-sim/src/mobility.rs:
crates/vanet-sim/src/scenario.rs:
crates/vanet-sim/src/trace_io.rs:
crates/vanet-sim/src/vanlan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
