/root/repo/target/debug/deps/crowdwifi_geo-7d11be494723781d.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/crowdwifi_geo-7d11be494723781d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs crates/geo/src/rect.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
crates/geo/src/rect.rs:
crates/geo/src/trajectory.rs:
