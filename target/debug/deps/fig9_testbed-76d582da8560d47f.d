/root/repo/target/debug/deps/fig9_testbed-76d582da8560d47f.d: crates/bench/src/bin/fig9_testbed.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_testbed-76d582da8560d47f.rmeta: crates/bench/src/bin/fig9_testbed.rs Cargo.toml

crates/bench/src/bin/fig9_testbed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
