/root/repo/target/debug/deps/crowdwifi-bc71bb5ca091b6a5.d: src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi-bc71bb5ca091b6a5.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrowdwifi-bc71bb5ca091b6a5.rmeta: src/lib.rs

src/lib.rs:
