/root/repo/target/debug/deps/crowdwifi-6a108c7c9a617396.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdwifi-6a108c7c9a617396.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
