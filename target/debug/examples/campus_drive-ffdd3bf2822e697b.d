/root/repo/target/debug/examples/campus_drive-ffdd3bf2822e697b.d: examples/campus_drive.rs

/root/repo/target/debug/examples/campus_drive-ffdd3bf2822e697b: examples/campus_drive.rs

examples/campus_drive.rs:
