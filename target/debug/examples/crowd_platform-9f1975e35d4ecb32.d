/root/repo/target/debug/examples/crowd_platform-9f1975e35d4ecb32.d: examples/crowd_platform.rs

/root/repo/target/debug/examples/crowd_platform-9f1975e35d4ecb32: examples/crowd_platform.rs

examples/crowd_platform.rs:
