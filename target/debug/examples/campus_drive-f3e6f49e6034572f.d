/root/repo/target/debug/examples/campus_drive-f3e6f49e6034572f.d: examples/campus_drive.rs Cargo.toml

/root/repo/target/debug/examples/libcampus_drive-f3e6f49e6034572f.rmeta: examples/campus_drive.rs Cargo.toml

examples/campus_drive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
