/root/repo/target/debug/examples/handoff_policies-8f258efa17c27ce2.d: examples/handoff_policies.rs

/root/repo/target/debug/examples/handoff_policies-8f258efa17c27ce2: examples/handoff_policies.rs

examples/handoff_policies.rs:
