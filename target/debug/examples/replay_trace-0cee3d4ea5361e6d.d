/root/repo/target/debug/examples/replay_trace-0cee3d4ea5361e6d.d: examples/replay_trace.rs

/root/repo/target/debug/examples/replay_trace-0cee3d4ea5361e6d: examples/replay_trace.rs

examples/replay_trace.rs:
