/root/repo/target/debug/examples/crowd_platform-be965c7432de8cd3.d: examples/crowd_platform.rs Cargo.toml

/root/repo/target/debug/examples/libcrowd_platform-be965c7432de8cd3.rmeta: examples/crowd_platform.rs Cargo.toml

examples/crowd_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
