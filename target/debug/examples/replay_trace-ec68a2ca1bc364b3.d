/root/repo/target/debug/examples/replay_trace-ec68a2ca1bc364b3.d: examples/replay_trace.rs Cargo.toml

/root/repo/target/debug/examples/libreplay_trace-ec68a2ca1bc364b3.rmeta: examples/replay_trace.rs Cargo.toml

examples/replay_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
