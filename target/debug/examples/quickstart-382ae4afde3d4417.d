/root/repo/target/debug/examples/quickstart-382ae4afde3d4417.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-382ae4afde3d4417: examples/quickstart.rs

examples/quickstart.rs:
