/root/repo/target/debug/examples/handoff_policies-ff40921f119a215f.d: examples/handoff_policies.rs Cargo.toml

/root/repo/target/debug/examples/libhandoff_policies-ff40921f119a215f.rmeta: examples/handoff_policies.rs Cargo.toml

examples/handoff_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
