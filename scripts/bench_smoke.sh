#!/usr/bin/env bash
# Bench smoke gate (CI's second job): runs the pipeline-throughput and
# observability benches in reduced smoke mode, writes their JSON into
# $BENCH_OUT_DIR (default: bench-artifacts/), and fails on regression
# past the thresholds committed below. The determinism contracts
# (thread sweep produces identical estimates, seed solver baseline is
# bit-identical) are asserted inside the benches themselves.
#
# Thresholds are deliberately looser than the committed full-run
# numbers in BENCH_pipeline.json / BENCH_obs.json: smoke repetitions on
# a shared CI core are noisy, and the gate is for *regressions* (an
# algorithmic win disappearing), not for benchmarking the runner.
#
# An optional first argument filters which benches run (and which gates
# apply): "core" runs the pipeline/obs/platform benches, "fleet" runs
# only the fleet-scale round bench (CI's fleet-smoke job), "wire" runs
# only the binary-codec + columnar-store bench, "all" (the default)
# runs everything.
set -euo pipefail
cd "$(dirname "$0")/.."

only="${1:-all}"
case "$only" in
    all | core | fleet | wire | map) ;;
    *)
        echo "usage: $0 [all|core|fleet|wire|map]" >&2
        exit 2
        ;;
esac
run_core=1
run_fleet=1
run_wire=1
run_map=1
if [ "$only" != all ]; then
    run_core=0
    run_fleet=0
    run_wire=0
    run_map=0
    [ "$only" = core ] && run_core=1
    [ "$only" = fleet ] && run_fleet=1
    [ "$only" = wire ] && run_wire=1
    [ "$only" = map ] && run_map=1
fi

export BENCH_OUT_DIR="${BENCH_OUT_DIR:-bench-artifacts}"
export BENCH_SMOKE=1
mkdir -p "$BENCH_OUT_DIR"

cargo build -q --release -p crowdwifi-bench
if [ "$run_core" -eq 1 ]; then
    ./target/release/pipeline_throughput
    ./target/release/obs_overhead
    ./target/release/platform_rounds
fi
if [ "$run_fleet" -eq 1 ]; then
    ./target/release/fleet_rounds
fi
if [ "$run_wire" -eq 1 ]; then
    ./target/release/wire_store
fi
if [ "$run_map" -eq 1 ]; then
    ./target/release/ap_map
fi

# Pulls a numeric field out of one of the bench JSONs (no python in the
# gate; the emitters write one "key": value pair per occurrence).
num() {
    sed -n 's/.*"'"$2"'": \(-\{0,1\}[0-9][0-9.]*\).*/\1/p' "$1" | head -n 1
}

fail=0
gate() { # label value op threshold
    local label="$1" value="$2" op="$3" threshold="$4"
    if [ -z "$value" ]; then
        echo "FAIL: $label missing from bench output" >&2
        fail=1
    elif ! awk -v v="$value" -v t="$threshold" "BEGIN{exit !(v $op t)}"; then
        echo "FAIL: $label = $value (want $op $threshold)" >&2
        fail=1
    else
        echo "  ok: $label = $value ($op $threshold)"
    fi
}

P="$BENCH_OUT_DIR/BENCH_pipeline.json"
O="$BENCH_OUT_DIR/BENCH_obs.json"
R="$BENCH_OUT_DIR/BENCH_platform.json"
F="$BENCH_OUT_DIR/BENCH_fleet.json"
W="$BENCH_OUT_DIR/BENCH_wire.json"
M="$BENCH_OUT_DIR/BENCH_map.json"

echo "bench smoke thresholds:"
if [ "$run_core" -eq 0 ]; then
    echo "  (core benches skipped: filter '$only')"
fi
if [ "$run_core" -eq 1 ]; then
# The machine-independent algorithmic gains over the seed
# implementation must not regress away. The cold-path ratio sits near
# 1.05-1.08 with ~±0.1 of scheduler noise in smoke runs (the solve
# dominates a cold recovery either way); the gate only has to catch the
# shared factorization becoming meaningfully *slower* than a per-group
# rebuild.
gate "shared-window cold speedup" "$(num "$P" cold_speedup)" ">=" 0.90
gate "memoized replay speedup" "$(num "$P" memoized_speedup)" ">=" 5
gate "solver workspace speedup" "$(num "$P" speedup)" ">=" 1.02
# The acceleration layer's headline win is machine-independent: total
# l1 iterations over the seed campus drive must stay >=30% below the
# unaccelerated path (smoke mode replays the same drive, so the ratio
# does not move with repetitions).
gate "l1 iteration reduction" "$(num "$P" iteration_reduction)" ">=" 0.30
# The vectorized-kernel + fused-factorization layer must keep a real
# wall-clock margin over the scalar/unfused path. Both legs run the
# *same* binary, so the scalar leg also benefits from this PR's shared
# algorithmic wins (eigensolver restructure, cached BIC refinement):
# the honest in-binary ratio sits at 1.4-1.65x on a quiet core (the
# committed full run records 1.64x; against PR 5's committed accel wall
# the new path is 2.05x). Smoke repetitions on a shared core are noisy,
# so the gate is a regression floor under the measured band, not the
# headline.
gate "kernel accel wall speedup" "$(num "$P" kernel_wall_speedup)" ">=" 1.3
if ! grep -q '"kernel_support_identical": true' "$P"; then
    echo "FAIL: kernel_accel support not identical between kernel paths" >&2
    fail=1
else
    echo "  ok: kernel accel support identical"
fi
# Enabled recording budget is 2% of pipeline time; the smoke gate
# allows noise on top of it. The disabled path must stay a few atomic
# loads (nanoseconds), since it is compiled into every hot loop.
gate "obs enabled overhead pct" "$(num "$O" overhead_pct)" "<=" 10
gate "obs disabled counter ns" "$(num "$O" disabled_ns)" "<=" 50
gate "obs enabled counter ns" "$(num "$O" enabled_ns)" "<=" 500
# The virtual-clock simulator must stay usable for fault-matrix testing:
# clean rounds at interactive rates, and meaningfully faster than the
# threaded backend on a degraded round whose timeouts really sleep.
gate "sim platform rounds/sec" "$(num "$R" sim_rounds_per_sec)" ">=" 0.2
gate "sim vs threaded speedup" "$(num "$R" sim_speedup)" ">=" 1.5
# Durability budgets: the write-ahead log must stay invisible next to
# the estimator maths that dominates a round (the measured percentage
# hovers around zero and can go negative with scheduler noise), and
# crash recovery must replay a mid-round log far faster than vehicles
# can fill one.
gate "WAL overhead pct" "$(num "$R" wal_overhead_pct)" "<=" 5
gate "recovery replay events/sec" "$(num "$R" recovery_replay_events_per_sec)" ">=" 50000
fi

if [ "$run_fleet" -eq 1 ]; then
# The fleet engine's headline: simulated vehicle-rounds per hour on a
# faulted round. The smoke row is 2k vehicles; the committed full run
# records ~15M/hour at 10k-100k on one core, so gating at the 1M
# project target leaves an order of magnitude of headroom for a noisy
# shared runner while still catching the engine going quadratic.
gate "fleet vehicle-rounds/hour" "$(num "$F" headline_vehicle_rounds_per_hour)" ">=" 1000000
# The bench refuses to time anything unless a small fleet on the
# batched sharded engine was byte-identical to the reference simulator;
# the written flag records that the assertion ran.
if ! grep -q '"digest_match": true' "$F"; then
    echo "FAIL: fleet round not byte-identical to the reference simulator" >&2
    fail=1
else
    echo "  ok: fleet round matches sim byte-for-byte"
fi
fi

if [ "$run_wire" -eq 1 ]; then
# The binary codec's two headline wins over the retired text codec,
# measured on a deterministic corpus so the byte ratio is exact (no
# machine noise) and the throughput ratio only has scheduler noise on
# both legs at once. The bench itself asserts the same bounds, so these
# gates are the CI-visible restatement, not the only line of defense.
gate "wire payload bytes ratio" "$(num "$W" payload_bytes_ratio)" "<=" 0.35
gate "wire encode+decode speedup" "$(num "$W" encode_decode_speedup)" ">=" 5
fi

if [ "$run_map" -eq 1 ]; then
# The geo-sharded AP map's contract: the epoch read path must sustain
# >=1M radius lookups/sec while a paced writer concurrently re-ingests
# the estimate stream (smoke stores ~250k APs instead of the full run's
# 1.2M; the rate gates are scale-independent because lookups only touch
# the queried corridor's buckets). Latency gates pin the lock-light
# claim: p99 under ingest stays in single-digit microseconds and within
# 2x of the ingest-off p99. The bench asserts the same bounds (plus the
# stored-AP floor) before writing JSON.
gate "map lookups/sec under ingest" "$(num "$M" lookups_per_sec_with_ingest)" ">=" 1000000
gate "map lookup p99 us under ingest" "$(num "$M" p99_us_with_ingest)" "<=" 10
gate "map p99 ratio ingest on/off" "$(num "$M" p99_ratio_on_off)" "<=" 2.0
# Map-fed BRR handoff must be indistinguishable from the static AP
# list on the same seed; the flag records the in-bench assertion.
if ! grep -q '"brr_identical": true' "$M"; then
    echo "FAIL: map-fed BRR handoff diverged from the static-list baseline" >&2
    fail=1
else
    echo "  ok: map-fed BRR identical to static baseline"
fi
fi

if [ "$fail" -ne 0 ]; then
    echo "bench smoke: FAILED" >&2
    exit 1
fi
echo "bench smoke: OK (artifacts in $BENCH_OUT_DIR)"
