#!/usr/bin/env bash
# Observability report: builds and runs the obs overhead bench, which
# writes BENCH_obs.json (repo root, or $BENCH_OUT_DIR when set) with
# the pipeline overhead of enabled recording, the per-record
# micro-costs, and the pipeline's metric counters for that run.
# BENCH_SMOKE=1 switches to the reduced CI repetitions.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release -p crowdwifi-bench --bin obs_overhead

out="${BENCH_OUT_DIR:-.}/BENCH_obs.json"
echo "--- ${out} ---"
cat "${out}"
