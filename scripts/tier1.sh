#!/usr/bin/env bash
# Tier-1 gate: the single source of truth for what "green" means.
# CI (.github/workflows/ci.yml) runs exactly this script, so a change
# that passes here passes there — format, build, tests (unit, doc,
# integration), both observability feature configurations, lints and
# rustdoc. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo build --release --examples

# The sans-I/O protocol core must stay pure: no threads, channels or
# wall clocks — those belong to the transport drivers. Grep keeps this
# honest because the compiler can't.
if grep -RnE 'std::thread|crossbeam|Instant::now|std::time::Instant|thread::sleep|SystemTime' \
    crates/middleware/src/protocol/; then
    echo "tier1: FAILED — I/O or wall-clock primitive in the sans-I/O protocol core" >&2
    exit 1
fi

# Small-budget end-to-end platform run on the simulator backend: a
# clean round plus a degraded (crash + stall + lossy links) round.
./target/release/examples/crowd_platform --smoke

cargo test -q --workspace
# Doc tests explicitly, so a future test filter can never drop them.
cargo test -q --workspace --doc
# The fault-injection suite exercises the platform's degraded-round
# paths (crashes, stragglers, lossy links); run it by name so a
# workspace filter can never silently skip it.
cargo test -q --test failure_injection
# The vectorized kernels must match the scalar reference bit for bit
# across shapes, ragged tails and non-finite inputs; run the property
# suite by name so a workspace filter can never silently skip it, and
# run it under both dispatch modes so the batch entry points are pinned
# on each path.
cargo test -q -p crowdwifi-linalg --test kernel_equivalence
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-linalg --test kernel_equivalence
# Cross-backend determinism: same seed + fault plan must produce
# byte-identical deterministic projections on the threaded runtime and
# the virtual-clock simulator. Run twice — default dispatch and with
# the scalar kernels pinned — so the byte-equivalence contract is
# proven independent of the kernel path.
cargo test -q --test transport_equivalence
CROWDWIFI_FORCE_SCALAR=1 cargo test -q --test transport_equivalence
# The fleet-scale engine's contract is byte-equality with the reference
# simulator: batched session multiplexing and segment-sharded fusion
# may never change a round's outcome, digest or metrics. The fleet_*
# tests live in the same suite, but run them by name too so a future
# test filter can never silently drop the contract (release mode: a
# faulted multi-vehicle round per test is slow unoptimized).
cargo test -q --release --test transport_equivalence fleet_
# The chaos harness: deterministic server-kill schedules over durable
# rounds on the simulator — crash before/after the WAL append, torn and
# corrupted log tails, torn snapshot writes — each followed by replay
# recovery and checked byte-identical against the fault-free round. Run
# by name so a workspace filter can never silently skip it; the sweep
# is trimmed from its 32-schedule default to keep the gate quick (all
# four fault flavors are still covered — the test asserts so).
CROWDWIFI_CHAOS_SCHEDULES=12 cargo test -q --test chaos_recovery
# The solver-acceleration layer must never change what is recovered:
# gap-safe screening has to land on the same minimizer as the plain
# solve (property test), and the accelerated campus drive must keep the
# unaccelerated support while cutting >=30% of total l1 iterations.
# Run both by name so a workspace filter can never silently skip them,
# and under both kernel dispatch modes: the solver invariants may not
# depend on which kernel path computed them.
cargo test -q -p crowdwifi-sparsesolve --test recovery_properties \
    screening_preserves_support_and_solution
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-sparsesolve --test recovery_properties \
    screening_preserves_support_and_solution
cargo test -q --test solver_accel
CROWDWIFI_FORCE_SCALAR=1 cargo test -q --test solver_accel
# The binary wire codec's contracts: proptest round-trips over every
# message variant (NaN bit-exact, text and binary codecs agreeing), the
# adversarial corrupted-frame corpus landing in quarantine, and
# text-era WAL logs recovering byte-identically through codec-version
# dispatch. Run by name so a workspace filter can never silently skip
# them, and under both kernel dispatch modes: frame bytes are part of
# the cross-backend digest, so they may not depend on the kernel path.
cargo test -q -p crowdwifi-middleware --test wire_roundtrip
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-middleware --test wire_roundtrip
cargo test -q -p crowdwifi-middleware --test wal_compat
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-middleware --test wal_compat
# The codec primitives and the columnar observation store unit suites,
# by module name for the same reason.
cargo test -q -p crowdwifi-middleware --lib wire::
cargo test -q -p crowdwifi-middleware --lib store::
# The geo-sharded AP map's contracts: geohash encode/decode/neighbor
# round-trips (property suite), TTL-eviction determinism under a seeded
# clock, snapshot→compact→recover byte-identity, and the full-stack
# suite (campaign rounds draining into the map through the round sink,
# map-fed BRR handoff identical to the static-list baseline, store/map
# intern-table agreement). Run by name so a workspace filter can never
# silently skip them, and under both kernel dispatch modes: the map
# consumes fused campaign output, which is part of the cross-backend
# digest, so its contracts may not depend on the kernel path.
cargo test -q -p crowdwifi-geomap --test geohash_properties
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-geomap --test geohash_properties
cargo test -q -p crowdwifi-geomap --test map_properties
CROWDWIFI_FORCE_SCALAR=1 cargo test -q -p crowdwifi-geomap --test map_properties
cargo test -q --test geomap_stack
CROWDWIFI_FORCE_SCALAR=1 cargo test -q --test geomap_stack
# The observability layer ships a compile-out mode; it must stay green
# with recording compiled to nothing.
cargo test -q -p crowdwifi-obs --no-default-features
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p crowdwifi-obs --no-default-features --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "tier1: OK"
