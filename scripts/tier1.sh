#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings
# denied. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
