#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings
# denied. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# The fault-injection suite exercises the platform's degraded-round
# paths (crashes, stragglers, lossy links); run it by name so a
# workspace filter can never silently skip it.
cargo test -q --test failure_injection
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
