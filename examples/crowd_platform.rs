//! The three-party crowdsensing platform (§3, §5.5): crowd-vehicles
//! sense and label, the crowd-server infers reliabilities and fuses, a
//! user-vehicle downloads the result.
//!
//! The server is a sans-I/O state machine, so the same rounds run on
//! either pluggable transport backend:
//!
//! * threaded (default) — one OS thread per vehicle, wall-clock
//!   deadlines; the paper's "many independent devices" shape.
//! * `--sim` — single-threaded virtual-clock simulator; a multi-second
//!   degraded round replays in milliseconds.
//!
//! Round 1: one of the five vehicles is a spammer; watch its inferred
//! reliability sink and its influence disappear from the fused map.
//!
//! Round 2 replays the same fleet under an injected fault schedule —
//! one vehicle crashes silently, one stalls past every deadline, and
//! every link drops 10% of its messages — and still completes, degraded,
//! on the survivors.
//!
//! ```sh
//! cargo run --release --example crowd_platform            # threaded
//! cargo run --release --example crowd_platform -- --sim   # simulator
//! cargo run --release --example crowd_platform -- --smoke # CI budget
//! ```
//!
//! `--smoke` runs both rounds on the simulator with tight deadlines and
//! prints a one-line verdict — the mode `scripts/tier1.sh` exercises.

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{FaultTolerance, PlatformConfig, RoundHealth};
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::transport::{SimTransport, ThreadTransport, Transport};
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};
use std::time::Duration;

/// Fading-free staggered drive past the two "roadside" APs.
fn drive(lane_offset: f64, aps: &[Point]) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sim = smoke || args.iter().any(|a| a == "--sim");
    let backend: &dyn Transport = if sim { &SimTransport } else { &ThreadTransport };
    let backend_name = if sim { "sim" } else { "threaded" };

    let truth = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0))?,
        150.0,
    );

    // The simulator never sleeps, so smoke runs can afford the same
    // protocol under much tighter wall-clock-free deadlines.
    let tolerance = if smoke {
        FaultTolerance {
            retry_backoff: Duration::from_millis(50),
            ..FaultTolerance::default()
        }
    } else {
        FaultTolerance::default()
    };

    // Five crowd-vehicles: four honest, one spammer.
    let mk_fleet = |truth: &[Point]| -> Result<Vec<_>, Box<dyn std::error::Error>> {
        let mut fleet = Vec::new();
        for v in 0..5u32 {
            let estimator = OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus())?;
            let behavior = if v == 4 {
                Behavior::Spammer
            } else {
                Behavior::Honest
            };
            fleet.push((
                CrowdVehicle::new(VehicleId(v), estimator, behavior),
                drive(v as f64 * 0.5, truth),
            ));
        }
        Ok(fleet)
    };

    if !smoke {
        println!(
            "running one crowdsensing round with 4 honest vehicles + 1 spammer \
             on the {backend_name} backend..."
        );
    }
    let report = backend.run_round(
        segments.clone(),
        mk_fleet(&truth)?,
        PlatformConfig {
            workers_per_task: 4,
            tolerance,
            ..PlatformConfig::default()
        },
    )?;

    if !smoke {
        println!("\ninferred reliabilities:");
        for (vehicle, q) in &report.outcome.reliabilities {
            let tag = if vehicle.0 == 4 { " (spammer)" } else { "" };
            println!("  {vehicle}: {q:.2}{tag}");
        }

        println!("\nfused AP database (what a user-vehicle downloads):");
        for ap in &report.fused {
            let nearest = truth
                .iter()
                .map(|t| t.distance(ap.position))
                .fold(f64::INFINITY, f64::min);
            println!(
                "  {} support {:.1} from {} vehicles ({nearest:.1} m from truth)",
                ap.position, ap.support, ap.contributors
            );
        }

        // A user-vehicle about to enter the road segment asks for APs
        // ahead.
        let user_position = Point::new(100.0, 0.0);
        let nearby: Vec<_> = report
            .fused
            .iter()
            .filter(|ap| ap.position.distance(user_position) <= 150.0)
            .collect();
        println!(
            "\nuser-vehicle at {user_position}: {} APs within 150 m available \
             for opportunistic access",
            nearby.len()
        );
    }

    // Round 2: same road, hostile weather. vehicle1 crashes before it
    // can upload, vehicle2 stalls instead of answering its mapping
    // tasks, and every link drops 10% of its messages. The round must
    // still finish on the survivors — degraded, with every casualty
    // accounted for.
    let plan = FaultPlan::noisy(7, 0.10, 0.0, 0.0)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(2), FaultPoint::Answer);
    if !smoke {
        println!("\nrunning a second round under an injected fault schedule");
        println!("(vehicle1 crashes, vehicle2 stalls, 10% message drop)...");
    }
    let degraded = backend.run_round_with_faults(
        segments,
        mk_fleet(&truth)?,
        PlatformConfig {
            workers_per_task: 3,
            tolerance,
            ..PlatformConfig::default()
        },
        &plan,
    )?;

    if smoke {
        // CI budget mode: assert the essentials and report one line.
        assert_eq!(report.health, RoundHealth::Complete, "clean round degraded");
        assert!(!report.fused.is_empty(), "clean round fused nothing");
        assert_eq!(
            degraded.health,
            RoundHealth::Degraded,
            "faulty round should degrade, got {:?}",
            degraded.health
        );
        println!(
            "smoke ok: {backend_name} backend, clean round fused {} APs, \
             degraded round survived with {} fates recorded",
            report.fused.len(),
            degraded.fates.len()
        );
        return Ok(());
    }

    println!("\nround health: {:?}", degraded.health);
    println!(
        "reassigned tasks: {}, lost label slots: {}",
        degraded.reassigned_tasks, degraded.lost_label_slots
    );
    println!("per-vehicle fates (server view / vehicle view):");
    for (vehicle, record) in &degraded.fates {
        println!(
            "  {vehicle}: {:?} after {} retries / {:?}",
            record.fate,
            record.retries,
            degraded.exits.get(vehicle)
        );
    }
    println!("fused APs from the survivors:");
    for ap in &degraded.fused {
        let nearest = truth
            .iter()
            .map(|t| t.distance(ap.position))
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {} support {:.1} from {} vehicles ({nearest:.1} m from truth)",
            ap.position, ap.support, ap.contributors
        );
    }
    Ok(())
}
