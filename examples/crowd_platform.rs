//! The three-party crowdsensing platform (§3, §5.5): crowd-vehicles on
//! their own threads sense and label, the crowd-server infers
//! reliabilities and fuses, a user-vehicle downloads the result.
//!
//! One of the five vehicles is a spammer; watch its inferred
//! reliability sink and its influence disappear from the fused map.
//!
//! ```sh
//! cargo run --release --example crowd_platform
//! ```

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{run_round, PlatformConfig};
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};

/// Fading-free staggered drive past the two "roadside" APs.
fn drive(lane_offset: f64, aps: &[Point]) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0))?,
        150.0,
    );

    // Five crowd-vehicles: four honest, one spammer.
    let mut fleet = Vec::new();
    for v in 0..5u32 {
        let estimator = OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus())?;
        let behavior = if v == 4 { Behavior::Spammer } else { Behavior::Honest };
        fleet.push((
            CrowdVehicle::new(VehicleId(v), estimator, behavior),
            drive(v as f64 * 0.5, &truth),
        ));
    }

    println!("running one crowdsensing round with 4 honest vehicles + 1 spammer...");
    let report = run_round(
        segments,
        fleet,
        PlatformConfig {
            workers_per_task: 4,
            ..PlatformConfig::default()
        },
    )?;

    println!("\ninferred reliabilities:");
    for (vehicle, q) in &report.outcome.reliabilities {
        let tag = if vehicle.0 == 4 { " (spammer)" } else { "" };
        println!("  {vehicle}: {q:.2}{tag}");
    }

    println!("\nfused AP database (what a user-vehicle downloads):");
    for ap in &report.fused {
        let nearest = truth
            .iter()
            .map(|t| t.distance(ap.position))
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {} support {:.1} from {} vehicles ({nearest:.1} m from truth)",
            ap.position, ap.support, ap.contributors
        );
    }

    // A user-vehicle about to enter the road segment asks for APs ahead.
    let user_position = Point::new(100.0, 0.0);
    let nearby: Vec<_> = report
        .fused
        .iter()
        .filter(|ap| ap.position.distance(user_position) <= 150.0)
        .collect();
    println!(
        "\nuser-vehicle at {user_position}: {} APs within 150 m available for opportunistic access",
        nearby.len()
    );
    Ok(())
}
