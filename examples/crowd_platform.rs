//! The three-party crowdsensing platform (§3, §5.5): crowd-vehicles on
//! their own threads sense and label, the crowd-server infers
//! reliabilities and fuses, a user-vehicle downloads the result.
//!
//! Round 1: one of the five vehicles is a spammer; watch its inferred
//! reliability sink and its influence disappear from the fused map.
//!
//! Round 2 replays the same fleet under an injected fault schedule —
//! one vehicle crashes silently, one stalls past every deadline, and
//! every link drops 10% of its messages — and still completes, degraded,
//! on the survivors.
//!
//! ```sh
//! cargo run --release --example crowd_platform
//! ```

use crowdwifi::channel::{PathLossModel, RssReading};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::geo::{Point, Rect};
use crowdwifi::middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi::middleware::messages::VehicleId;
use crowdwifi::middleware::platform::{run_round, run_round_with_faults, PlatformConfig};
use crowdwifi::middleware::segment::SegmentMap;
use crowdwifi::middleware::vehicle::{Behavior, CrowdVehicle};

/// Fading-free staggered drive past the two "roadside" APs.
fn drive(lane_offset: f64, aps: &[Point]) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0))?,
        150.0,
    );

    // Five crowd-vehicles: four honest, one spammer.
    let mk_fleet = |truth: &[Point]| -> Result<Vec<_>, Box<dyn std::error::Error>> {
        let mut fleet = Vec::new();
        for v in 0..5u32 {
            let estimator = OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus())?;
            let behavior = if v == 4 {
                Behavior::Spammer
            } else {
                Behavior::Honest
            };
            fleet.push((
                CrowdVehicle::new(VehicleId(v), estimator, behavior),
                drive(v as f64 * 0.5, truth),
            ));
        }
        Ok(fleet)
    };

    println!("running one crowdsensing round with 4 honest vehicles + 1 spammer...");
    let report = run_round(
        segments.clone(),
        mk_fleet(&truth)?,
        PlatformConfig {
            workers_per_task: 4,
            ..PlatformConfig::default()
        },
    )?;

    println!("\ninferred reliabilities:");
    for (vehicle, q) in &report.outcome.reliabilities {
        let tag = if vehicle.0 == 4 { " (spammer)" } else { "" };
        println!("  {vehicle}: {q:.2}{tag}");
    }

    println!("\nfused AP database (what a user-vehicle downloads):");
    for ap in &report.fused {
        let nearest = truth
            .iter()
            .map(|t| t.distance(ap.position))
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {} support {:.1} from {} vehicles ({nearest:.1} m from truth)",
            ap.position, ap.support, ap.contributors
        );
    }

    // A user-vehicle about to enter the road segment asks for APs ahead.
    let user_position = Point::new(100.0, 0.0);
    let nearby: Vec<_> = report
        .fused
        .iter()
        .filter(|ap| ap.position.distance(user_position) <= 150.0)
        .collect();
    println!(
        "\nuser-vehicle at {user_position}: {} APs within 150 m available for opportunistic access",
        nearby.len()
    );

    // Round 2: same road, hostile weather. vehicle1 crashes before it
    // can upload, vehicle2 stalls instead of answering its mapping
    // tasks, and every link drops 10% of its messages. The round must
    // still finish on the survivors — degraded, with every casualty
    // accounted for.
    let plan = FaultPlan::noisy(7, 0.10, 0.0, 0.0)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(2), FaultPoint::Answer);
    println!("\nrunning a second round under an injected fault schedule");
    println!("(vehicle1 crashes, vehicle2 stalls, 10% message drop)...");
    let degraded = run_round_with_faults(
        segments,
        mk_fleet(&truth)?,
        PlatformConfig {
            workers_per_task: 3,
            ..PlatformConfig::default()
        },
        &plan,
    )?;

    println!("\nround health: {:?}", degraded.health);
    println!(
        "reassigned tasks: {}, lost label slots: {}",
        degraded.reassigned_tasks, degraded.lost_label_slots
    );
    println!("per-vehicle fates (server view / vehicle view):");
    for (vehicle, record) in &degraded.fates {
        println!(
            "  {vehicle}: {:?} after {} retries / {:?}",
            record.fate,
            record.retries,
            degraded.exits.get(vehicle)
        );
    }
    println!("fused APs from the survivors:");
    for ap in &degraded.fused {
        let nearest = truth
            .iter()
            .map(|t| t.distance(ap.position))
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {} support {:.1} from {} vehicles ({nearest:.1} m from truth)",
            ap.position, ap.support, ap.contributors
        );
    }
    Ok(())
}
