//! BRR vs AllAP handoff on the VanLan-like campus (§6.3), fed end to
//! end from the geo-sharded AP map.
//!
//! Crowd rounds ingest fused AP estimates into a [`GeoMap`]; the
//! user-vehicle then asks the map for "APs ahead on my trajectory" via
//! the geohash corridor query and drives the van round under both
//! association policies. To show the map path loses nothing, the BRR
//! trace is also compared against a static ground-truth AP list in the
//! same canonical order — the two must be identical.
//!
//! ```sh
//! cargo run --release --example handoff_policies
//! ```

use crowdwifi::core::ApEstimate;
use crowdwifi::geo::Point;
use crowdwifi::geomap::{GeoMap, MapConfig};
use crowdwifi::handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi::handoff::db::ApDatabase;
use crowdwifi::handoff::session::{median_session_length, session_lengths};
use crowdwifi::handoff::transfer::{run_transfers, TransferConfig};
use crowdwifi::sim::mobility::vanlan_round;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::vanlan();
    let route = vanlan_round(0.0);
    let cfg = ConnectivityConfig::default();

    // Crowdsense the global map: two campaign rounds each contribute a
    // fused estimate per AP (credit 2 ≈ two supporting drives), so
    // every AP consolidates to credit 4 — well above the transient
    // floor — at its exact position.
    let map = GeoMap::new(MapConfig::new(scenario.area()))?;
    for round in 0u64..2 {
        let estimates: Vec<ApEstimate> = scenario
            .ap_positions()
            .into_iter()
            .map(|position| ApEstimate {
                position,
                credit: 2.0,
            })
            .collect();
        map.absorb_estimates((round + 1) * 60_000_000, &estimates);
    }

    // The user-vehicle's download is a corridor query along its planned
    // route: the corridor half-width matches the believed association
    // range, so every AP the policies could ever consider is included.
    let path: Vec<Point> = route.waypoints().iter().map(|w| w.position).collect();
    let ahead = map.aps_ahead(&path, cfg.believed_range);
    let db = ApDatabase::new(ahead.iter().map(|a| a.position).collect());
    println!(
        "van round of {:.0} s; map holds {} APs, corridor query returned {} candidates",
        route.duration(),
        map.len(),
        db.len()
    );

    // Sanity: the map-fed BRR trace must match a static ground-truth
    // list in the same canonical order.
    let mut baseline = scenario.ap_positions();
    baseline.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let static_db = ApDatabase::new(baseline);
    let map_trace = simulate(
        Policy::Brr,
        &scenario,
        &route,
        &db,
        cfg,
        &mut ChaCha8Rng::seed_from_u64(9),
    )?;
    let static_trace = simulate(
        Policy::Brr,
        &scenario,
        &route,
        &static_db,
        cfg,
        &mut ChaCha8Rng::seed_from_u64(9),
    )?;
    assert_eq!(
        map_trace, static_trace,
        "map-fed BRR must match the static-list baseline"
    );
    println!("map-fed BRR trace is identical to the static-list baseline\n");

    for policy in [Policy::Brr, Policy::AllAp] {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trace = simulate(policy, &scenario, &route, &db, cfg, &mut rng)?;
        let lengths = session_lengths(&trace);
        let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
        println!("{policy}:");
        println!(
            "  connected {:.1} % of the drive, {} interruptions",
            trace.connectivity_fraction() * 100.0,
            trace.interruptions()
        );
        println!(
            "  {} sessions, median session length {} s",
            lengths.len(),
            median_session_length(&lengths).map_or("-".to_string(), |l| l.to_string())
        );
        println!(
            "  {} transfers completed ({:.1} per session), median time {}",
            stats.completion_times.len(),
            stats.transfers_per_session,
            stats
                .median_time()
                .map_or("-".to_string(), |t| format!("{t:.2} s"))
        );
    }
    println!("\npaper: AllAP roughly halves the median transfer time and doubles throughput");
    Ok(())
}
