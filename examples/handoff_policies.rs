//! BRR vs AllAP handoff on the VanLan-like campus (§6.3).
//!
//! A user-vehicle downloads the crowdsensed AP map and drives a van
//! round under both association policies; the example prints
//! connectivity, session statistics and 10 KB transfer performance.
//!
//! ```sh
//! cargo run --release --example handoff_policies
//! ```

use crowdwifi::handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi::handoff::db::ApDatabase;
use crowdwifi::handoff::session::{median_session_length, session_lengths};
use crowdwifi::handoff::transfer::{run_transfers, TransferConfig};
use crowdwifi::sim::mobility::vanlan_round;
use crowdwifi::sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::vanlan();
    // Assume a perfect crowdsensed database (error injection is
    // explored by the fig11_transfers bench binary).
    let db = ApDatabase::new(scenario.ap_positions());
    let route = vanlan_round(0.0);
    println!(
        "van round of {:.0} s through {} APs; policies: BRR (hard handoff) vs AllAP (opportunistic)",
        route.duration(),
        scenario.aps().len()
    );

    for policy in [Policy::Brr, Policy::AllAp] {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trace = simulate(
            policy,
            &scenario,
            &route,
            &db,
            ConnectivityConfig::default(),
            &mut rng,
        )?;
        let lengths = session_lengths(&trace);
        let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
        println!("\n{policy}:");
        println!(
            "  connected {:.1} % of the drive, {} interruptions",
            trace.connectivity_fraction() * 100.0,
            trace.interruptions()
        );
        println!(
            "  {} sessions, median session length {} s",
            lengths.len(),
            median_session_length(&lengths).map_or("-".to_string(), |l| l.to_string())
        );
        println!(
            "  {} transfers completed ({:.1} per session), median time {}",
            stats.completion_times.len(),
            stats.transfers_per_session,
            stats
                .median_time()
                .map_or("-".to_string(), |t| format!("{t:.2} s"))
        );
    }
    println!("\npaper: AllAP roughly halves the median transfer time and doubles throughput");
    Ok(())
}
