//! Streaming online CS: estimates refine while the vehicle drives.
//!
//! Feeds the UCI drive into an [`OnlineCs`] session one reading at a
//! time — the way a real vehicle would — and prints how the estimated
//! AP count and accuracy evolve round by round (compare the paper's
//! Fig. 5(b)–(d) progression).
//!
//! ```sh
//! cargo run --release --example campus_drive
//! ```

use crowdwifi::core::metrics::mean_distance_error;
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::geo::Grid;
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0)?;
    let scenario = scenario.snapped_to_grid(&grid); // Fig. 5: APs on grid points
    let truth = scenario.ap_positions();

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 181.0, &mut rng);

    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.015,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let estimator = OnlineCs::new(config, *scenario.pathloss())?;
    let mut session = estimator.session()?;

    println!(
        "streaming {} readings (true APs: {})",
        readings.len(),
        truth.len()
    );
    println!("{:>8}  {:>6}  {:>10}", "reading", "k_est", "avg_err_m");
    for (i, reading) in readings.iter().enumerate() {
        if let Some(current) = session.push(*reading)? {
            let positions: Vec<_> = current.iter().map(|e| e.position).collect();
            let err = mean_distance_error(&truth, &positions)
                .map_or("-".to_string(), |e| format!("{e:.2}"));
            println!("{:>8}  {:>6}  {:>10}", i + 1, positions.len(), err);
        }
    }

    let final_aps = session.finish()?;
    println!("\nfinal estimate after the full drive:");
    for est in &final_aps {
        println!("  {} (credit {:.1})", est.position, est.credit);
    }
    let positions: Vec<_> = final_aps.iter().map(|e| e.position).collect();
    if let Some(err) = mean_distance_error(&truth, &positions) {
        println!("mean matched distance: {err:.2} m (paper: 1.83 m at 180 points)");
    }
    Ok(())
}
