//! Record a drive to CSV, replay it later, and run lookup on the replay
//! — the workflow for working with real recorded datasets.
//!
//! ```sh
//! cargo run --release --example replay_trace
//! ```

use crowdwifi::core::metrics::mean_distance_error;
use crowdwifi::core::pipeline::{ensemble_run, OnlineCsConfig};
use crowdwifi::sim::trace_io::{read_csv, write_csv};
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::uci_campus();
    let truth = scenario.ap_positions();

    // 1. Record a drive.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let route = mobility::uci_loop_route_with(2, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    let path = std::env::temp_dir().join("crowdwifi_trace.csv");
    write_csv(&readings, std::fs::File::create(&path)?)?;
    println!("recorded {} readings to {}", readings.len(), path.display());

    // 2. Replay it from disk.
    let replayed = read_csv(BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(replayed.len(), readings.len());
    println!("replayed {} readings", replayed.len());

    // 3. Run the full-strength lookup on the replay.
    let config = OnlineCsConfig {
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let estimates = ensemble_run(&replayed, config, *scenario.pathloss(), 8)?;
    println!("\nlookup from the replayed trace:");
    for est in &estimates {
        println!("  {} (credit {:.1})", est.position, est.credit);
    }
    let positions: Vec<_> = estimates.iter().map(|e| e.position).collect();
    if let Some(err) = mean_distance_error(&truth, &positions) {
        println!(
            "\n{} of {} APs, mean matched distance {err:.2} m",
            positions.len(),
            truth.len()
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
