//! Quickstart: count and localize the UCI campus APs from one drive.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowdwifi::core::metrics::{counting_error, mean_distance_error};
use crowdwifi::core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi::core::window::WindowConfig;
use crowdwifi::sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's UCI campus scenario: 300 x 180 m, eight roadside APs.
    let scenario = Scenario::uci_campus();
    println!(
        "scenario: {} with {} APs",
        scenario.name(),
        scenario.aps().len()
    );

    // One crowd-vehicle drives the campus loop at 25 mph, collecting one
    // RSS reading roughly every half second.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let route = mobility::uci_loop_route_with(2, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    println!("collected {} drive-by RSS readings", readings.len());

    // Online compressive sensing: sliding window, l1 recovery on the
    // driving grid, BIC model selection, credit consolidation.
    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let estimator = OnlineCs::new(config, *scenario.pathloss())?;
    let estimates = estimator.run(&readings)?;

    println!("\nestimated APs:");
    for (i, est) in estimates.iter().enumerate() {
        println!("  AP{i}: {} (credit {:.1})", est.position, est.credit);
    }

    let truth = scenario.ap_positions();
    let positions: Vec<_> = estimates.iter().map(|e| e.position).collect();
    println!(
        "\ncounting error: {:.1} %",
        counting_error(truth.len(), positions.len()) * 100.0
    );
    if let Some(err) = mean_distance_error(&truth, &positions) {
        println!("mean matched distance: {err:.2} m");
    }
    Ok(())
}
