//! The crowd-server: task assignment, reliability inference and
//! fine-grained estimation.

use crate::messages::{MappingAnswer, MappingTask, Pattern, SensingUpload, VehicleId};
use crate::segment::SegmentMap;
use crate::{MiddlewareError, Result};
use crowdwifi_crowd::em::EmAggregator;
use crowdwifi_crowd::fusion::{fuse_submissions, FusedAp, Submission};
use crowdwifi_crowd::graph::BipartiteAssignment;
use crowdwifi_crowd::LabelMatrix;
use crowdwifi_geo::Point;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Participating-fleet size at which task assignment switches from the
/// full-pool shuffle to index sampling. Small fleets keep the original
/// RNG draw sequence (seed-stable against the existing test corpus);
/// large fleets draw `workers_per_task` indices per task instead of
/// shuffling the whole pool per task, turning an `O(tasks × fleet)`
/// assignment into `O(tasks × workers_per_task)`.
const SAMPLED_ASSIGNMENT_FLOOR: usize = 65;

/// Outcome of one crowdsourcing round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Patterns the inference accepted as existing (ẑ = +1).
    pub accepted_patterns: Vec<Pattern>,
    /// Inferred reliability per vehicle, in `[0, 1]`.
    pub reliabilities: BTreeMap<VehicleId, f64>,
    /// Whether reliability inference converged within its iteration
    /// budget.
    pub converged: bool,
}

/// The crowd-server.
#[derive(Debug)]
pub struct CrowdServer {
    segments: SegmentMap,
    vehicles: Vec<VehicleId>,
    /// Set mirror of `vehicles` for `O(log n)` membership checks; the
    /// `Vec` stays authoritative for registration order.
    registered: std::collections::BTreeSet<VehicleId>,
    opted_out: std::collections::BTreeSet<VehicleId>,
    uploads: BTreeMap<VehicleId, SensingUpload>,
    patterns: Vec<Pattern>,
    answers: Vec<MappingAnswer>,
    reliabilities: BTreeMap<VehicleId, f64>,
    fused: Vec<FusedAp>,
    /// EMA factor blending each round's inferred reliability into the
    /// long-run estimate (1.0 = use the latest round only).
    reliability_smoothing: f64,
}

impl CrowdServer {
    /// Creates a server over the given segment map.
    pub fn new(segments: SegmentMap) -> Self {
        CrowdServer {
            segments,
            vehicles: Vec::new(),
            registered: std::collections::BTreeSet::new(),
            opted_out: std::collections::BTreeSet::new(),
            uploads: BTreeMap::new(),
            patterns: Vec::new(),
            answers: Vec::new(),
            reliabilities: BTreeMap::new(),
            fused: Vec::new(),
            reliability_smoothing: 1.0,
        }
    }

    /// Sets the reliability EMA factor `α ∈ (0, 1]`: across repeated
    /// crowdsourcing rounds a vehicle's long-run reliability becomes
    /// `α·round + (1−α)·previous`, so one lucky round cannot whitewash a
    /// spammer. The default `α = 1` keeps the paper's per-round behavior.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_reliability_smoothing(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor must lie in (0, 1]"
        );
        self.reliability_smoothing = alpha;
        self
    }

    /// The segment map in force.
    pub fn segments(&self) -> &SegmentMap {
        &self.segments
    }

    /// Registers a crowd-vehicle (idempotent).
    pub fn register(&mut self, vehicle: VehicleId) {
        if self.registered.insert(vehicle) {
            self.vehicles.push(vehicle);
        }
    }

    /// Whether a vehicle has been registered.
    pub fn is_registered(&self, vehicle: VehicleId) -> bool {
        self.registered.contains(&vehicle)
    }

    /// Registered vehicles, in registration order.
    pub fn vehicles(&self) -> &[VehicleId] {
        &self.vehicles
    }

    /// Records a vehicle's participation choice (§5.5: crowd-vehicles
    /// may deny tasks to protect their privacy). Opted-out vehicles are
    /// never assigned mapping tasks; their uploads, if any, are still
    /// used.
    pub fn set_participation(&mut self, vehicle: VehicleId, participates: bool) {
        if participates {
            self.opted_out.remove(&vehicle);
        } else {
            self.opted_out.insert(vehicle);
        }
    }

    /// Whether a vehicle currently accepts mapping tasks.
    pub fn participates(&self, vehicle: VehicleId) -> bool {
        !self.opted_out.contains(&vehicle)
    }

    /// Ingests a sensing upload (replacing the vehicle's previous one).
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::UnknownVehicle`] for unregistered
    /// senders.
    pub fn receive_upload(&mut self, upload: SensingUpload) -> Result<()> {
        if !self.registered.contains(&upload.vehicle) {
            return Err(MiddlewareError::UnknownVehicle(upload.vehicle.0));
        }
        self.uploads.insert(upload.vehicle, upload);
        Ok(())
    }

    /// The stored upload for a vehicle, if it has sent one this round.
    pub fn upload_of(&self, vehicle: VehicleId) -> Option<&SensingUpload> {
        self.uploads.get(&vehicle)
    }

    /// Generates the mapping-task pattern set: one pattern per segment
    /// per upload (candidate true patterns) plus `bootstrap` random
    /// patterns per non-empty segment (§5.2: random patterns for
    /// bootstrapping, so the inference has negatives to reject).
    pub fn generate_patterns<R: Rng + ?Sized>(&mut self, bootstrap: usize, rng: &mut R) {
        self.patterns.clear();
        // Candidate patterns from uploads, grouped per segment. Two
        // patterns can only be similar within one segment, so dedup
        // scans a per-segment index instead of the whole pattern list —
        // same accept/reject decisions, `O(uploads-per-segment)` per
        // candidate instead of `O(total patterns)`.
        let mut seen_segments = std::collections::BTreeSet::new();
        let mut by_segment_index: BTreeMap<crate::segment::SegmentId, Vec<usize>> = BTreeMap::new();
        for upload in self.uploads.values() {
            let mut by_segment: BTreeMap<_, Vec<Point>> = BTreeMap::new();
            for est in &upload.estimates {
                by_segment
                    .entry(self.segments.segment_of(est.position))
                    .or_default()
                    .push(est.position);
            }
            for (segment, aps) in by_segment {
                seen_segments.insert(segment);
                let pattern = Pattern { segment, aps };
                let peers = by_segment_index.entry(segment).or_default();
                if !peers
                    .iter()
                    .any(|&i| patterns_similar(&self.patterns[i], &pattern, 15.0))
                {
                    peers.push(self.patterns.len());
                    self.patterns.push(pattern);
                }
            }
        }
        // Random bootstrap patterns in segments where something was
        // sensed (deliberately implausible: uniform positions).
        for &segment in &seen_segments {
            let bounds = self.segments.bounds(segment);
            for _ in 0..bootstrap {
                let count = rng.random_range(1..=3usize);
                let aps = (0..count)
                    .map(|_| {
                        Point::new(
                            rng.random_range(
                                bounds.min().x..bounds.max().x.max(bounds.min().x + 1.0),
                            ),
                            rng.random_range(
                                bounds.min().y..bounds.max().y.max(bounds.min().y + 1.0),
                            ),
                        )
                    })
                    .collect();
                self.patterns.push(Pattern { segment, aps });
            }
        }
    }

    /// The current pattern set (tasks), in task-id order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Assigns every pattern to `workers_per_task` distinct vehicles at
    /// random; returns the per-vehicle task lists.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidConfig`] when there are no
    /// patterns, no vehicles, or fewer vehicles than `workers_per_task`.
    pub fn assign_tasks<R: Rng + ?Sized>(
        &mut self,
        workers_per_task: usize,
        rng: &mut R,
    ) -> Result<BTreeMap<VehicleId, Vec<MappingTask>>> {
        if self.patterns.is_empty() {
            return Err(MiddlewareError::InvalidConfig(
                "no patterns to assign".to_string(),
            ));
        }
        let participating: Vec<VehicleId> = self
            .vehicles
            .iter()
            .copied()
            .filter(|v| self.participates(*v))
            .collect();
        if participating.len() < workers_per_task || workers_per_task == 0 {
            return Err(MiddlewareError::InvalidConfig(format!(
                "need at least {workers_per_task} participating vehicles"
            )));
        }
        self.answers.clear();
        let mut out: BTreeMap<VehicleId, Vec<MappingTask>> = BTreeMap::new();
        let sampled = participating.len() >= SAMPLED_ASSIGNMENT_FLOOR;
        // Reusable index pool for the sampled path: a partial
        // Fisher–Yates draws `workers_per_task` distinct entries per
        // task; leaving the pool permuted between tasks keeps every
        // draw uniform without re-shuffling (or re-allocating) it.
        let mut pool_idx: Vec<usize> = if sampled {
            (0..participating.len()).collect()
        } else {
            Vec::new()
        };
        for (task_id, pattern) in self.patterns.iter().enumerate() {
            let assign = |out: &mut BTreeMap<VehicleId, Vec<MappingTask>>, vehicle: VehicleId| {
                out.entry(vehicle).or_default().push(MappingTask {
                    task_id,
                    pattern: pattern.clone(),
                });
            };
            if sampled {
                for k in 0..workers_per_task {
                    let j = rng.random_range(k..pool_idx.len());
                    pool_idx.swap(k, j);
                    assign(&mut out, participating[pool_idx[k]]);
                }
            } else {
                let mut pool = participating.clone();
                pool.shuffle(rng);
                for &vehicle in pool.iter().take(workers_per_task) {
                    assign(&mut out, vehicle);
                }
            }
        }
        Ok(out)
    }

    /// Ingests a batch of answers.
    pub fn receive_answers(&mut self, answers: Vec<MappingAnswer>) {
        self.answers.extend(answers);
    }

    /// Runs reliability inference over the collected answers, updating
    /// vehicle reliabilities and returning the accepted patterns.
    ///
    /// Uses one-coin Dawid–Skene EM seeded from majority voting: a
    /// single round produces a small, class-imbalanced task graph (one
    /// true pattern among several bootstrap negatives), where the
    /// message-passing decoder's rank-1 dynamics latch onto the "reject
    /// everything" direction and rank blanket-negative spammers above
    /// honest vehicles. EM is robust to that imbalance and makes round
    /// inference deterministic; the `rng` parameter is kept for
    /// API stability but no longer consumed.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidConfig`] when no answers were
    /// collected, and propagates graph-construction failures.
    pub fn infer<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> Result<RoundOutcome> {
        if self.answers.is_empty() {
            return Err(MiddlewareError::InvalidConfig(
                "no answers collected".to_string(),
            ));
        }
        // Dense vehicle indices for the bipartite graph.
        let vehicle_index: BTreeMap<VehicleId, usize> = self
            .vehicles
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        // Canonicalize: answers arrive in thread-scheduling order (and,
        // under fault injection, duplicated or reordered). Keep the
        // first answer per (task, vehicle) and sort, so inference — and
        // the floating-point sums inside EM — see a deterministic edge
        // list regardless of arrival interleaving.
        let mut canonical: Vec<&MappingAnswer> = Vec::with_capacity(self.answers.len());
        let mut seen = std::collections::BTreeSet::new();
        for a in &self.answers {
            if seen.insert((a.task_id, a.vehicle)) {
                canonical.push(a);
            }
        }
        canonical.sort_by_key(|a| (a.task_id, a.vehicle));
        let mut edges = Vec::with_capacity(canonical.len());
        let mut labels = Vec::with_capacity(canonical.len());
        let mut covered = vec![false; self.patterns.len()];
        for a in canonical {
            let Some(&w) = vehicle_index.get(&a.vehicle) else {
                return Err(MiddlewareError::UnknownVehicle(a.vehicle.0));
            };
            if a.task_id < covered.len() {
                covered[a.task_id] = true;
            }
            edges.push((a.task_id, w));
            labels.push(a.label);
        }
        let graph =
            BipartiteAssignment::from_edge_list(self.patterns.len(), self.vehicles.len(), edges)?;
        let matrix = LabelMatrix::from_labels(graph, labels);
        let result = EmAggregator::default().run(&matrix);

        let reliability = &result.reliabilities;
        let alpha = self.reliability_smoothing;
        for (i, &v) in self.vehicles.iter().enumerate() {
            let previous = self.reliabilities.get(&v).copied().unwrap_or(0.5);
            self.reliabilities
                .insert(v, alpha * reliability[i] + (1.0 - alpha) * previous);
        }

        // A task that lost all of its labels (every assigned vehicle
        // died) sits at the EM prior of 0.5 and would be waved through;
        // unlabeled patterns are never accepted.
        let accepted_patterns: Vec<Pattern> = result
            .estimates
            .iter()
            .enumerate()
            .filter(|&(i, &z)| z == 1 && covered[i])
            .map(|(i, _)| self.patterns[i].clone())
            .collect();
        Ok(RoundOutcome {
            accepted_patterns,
            reliabilities: self.reliabilities.clone(),
            converged: result.converged,
        })
    }

    /// Multiplies a vehicle's stored reliability by `factor` (clamped
    /// to `[0, 1]`), returning the new value. The platform applies this
    /// to vehicles that died mid-round: a crash or missed deadline is
    /// evidence against the vehicle just like a wrong label, and the
    /// penalty feeds the cross-round prior so repeat offenders are
    /// down-weighted even if their answers looked fine while they
    /// lasted. Vehicles never seen before start from the 0.5 prior.
    pub fn penalize(&mut self, vehicle: VehicleId, factor: f64) -> f64 {
        let prev = self.reliabilities.get(&vehicle).copied().unwrap_or(0.5);
        let q = (prev * factor.clamp(0.0, 1.0)).clamp(0.0, 1.0);
        self.reliabilities.insert(vehicle, q);
        q
    }

    /// Fuses all uploads into fine-grained AP estimates, weighting each
    /// vehicle by its inferred reliability (§5.4). Vehicles with
    /// reliability ≤ `spammer_cutoff` are ignored.
    pub fn finalize(&mut self, merge_radius: f64, spammer_cutoff: f64) -> &[FusedAp] {
        let submissions: Vec<Submission> = self
            .uploads
            .values()
            .map(|up| {
                let reliability = self
                    .reliabilities
                    .get(&up.vehicle)
                    .copied()
                    .unwrap_or(0.5)
                    .clamp(0.0, 1.0);
                Submission::new(
                    up.estimates.iter().map(|e| e.position).collect(),
                    reliability,
                )
            })
            .collect();
        self.fused = fuse_submissions(&submissions, merge_radius, spammer_cutoff, 0.0);
        &self.fused
    }

    /// Shard-aware variant of [`CrowdServer::finalize`]: fusion runs
    /// independently per road segment (see
    /// [`crate::protocol::shards::fuse_sharded`]) and the results are
    /// concatenated in segment-id order. Clusters never straddle a
    /// segment boundary, which is what lets shards advance — and
    /// eventually be hosted — independently.
    pub fn finalize_sharded(&mut self, merge_radius: f64, spammer_cutoff: f64) -> &[FusedAp] {
        self.fused = crate::protocol::shards::fuse_sharded(
            &self.segments,
            self.uploads.values(),
            &self.reliabilities,
            merge_radius,
            spammer_cutoff,
        );
        &self.fused
    }

    /// The fused AP database (empty before [`CrowdServer::finalize`]).
    pub fn fused(&self) -> &[FusedAp] {
        &self.fused
    }

    /// Installs an externally computed fused database. Shard
    /// consolidation uses this to land the cross-shard merge so that
    /// downloads and state digests match the single-core path byte for
    /// byte.
    pub(crate) fn set_fused(&mut self, fused: Vec<FusedAp>) {
        self.fused = fused;
    }

    /// Serves a user-vehicle download: fused APs within `radius` of
    /// `position`.
    pub fn download(&self, position: Point, radius: f64) -> Vec<FusedAp> {
        self.fused
            .iter()
            .copied()
            .filter(|ap| ap.position.distance(position) <= radius)
            .collect()
    }
}

/// Two patterns are similar when they describe the same segment with
/// the same AP count and pairwise-matched positions within `tol`.
fn patterns_similar(a: &Pattern, b: &Pattern, tol: f64) -> bool {
    if a.segment != b.segment || a.aps.len() != b.aps.len() {
        return false;
    }
    let mut used = vec![false; b.aps.len()];
    for pa in &a.aps {
        let found = b
            .aps
            .iter()
            .enumerate()
            .find(|(i, pb)| !used[*i] && pa.distance(**pb) <= tol);
        match found {
            Some((i, _)) => used[i] = true,
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_core::ApEstimate;
    use crowdwifi_geo::Rect;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn server() -> CrowdServer {
        CrowdServer::new(SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 180.0)).unwrap(),
            150.0,
        ))
    }

    fn upload(vehicle: u32, points: &[(f64, f64)]) -> SensingUpload {
        SensingUpload {
            vehicle: VehicleId(vehicle),
            estimates: points
                .iter()
                .map(|&(x, y)| ApEstimate {
                    position: Point::new(x, y),
                    credit: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn upload_requires_registration() {
        let mut s = server();
        assert!(matches!(
            s.receive_upload(upload(9, &[(10.0, 10.0)])),
            Err(MiddlewareError::UnknownVehicle(9))
        ));
        s.register(VehicleId(9));
        assert!(s.receive_upload(upload(9, &[(10.0, 10.0)])).is_ok());
    }

    #[test]
    fn pattern_generation_dedups_similar_uploads() {
        let mut s = server();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for v in 0..3 {
            s.register(VehicleId(v));
            // All three vehicles agree on roughly the same AP.
            s.receive_upload(upload(v, &[(50.0 + v as f64, 50.0)]))
                .unwrap();
        }
        s.generate_patterns(2, &mut rng);
        // 1 deduped candidate + 2 bootstrap for the one active segment.
        assert_eq!(s.patterns().len(), 3);
    }

    #[test]
    fn assignment_covers_every_pattern_l_times() {
        let mut s = server();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for v in 0..5 {
            s.register(VehicleId(v));
        }
        s.receive_upload(upload(0, &[(50.0, 50.0), (200.0, 100.0)]))
            .unwrap();
        s.generate_patterns(1, &mut rng);
        let tasks = s.assign_tasks(3, &mut rng).unwrap();
        let total: usize = tasks.values().map(|t| t.len()).sum();
        assert_eq!(total, s.patterns().len() * 3);
        // No vehicle got the same task twice.
        for list in tasks.values() {
            let mut ids: Vec<usize> = list.iter().map(|t| t.task_id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), list.len());
        }
    }

    #[test]
    fn full_round_identifies_spammers_and_fuses() {
        let mut s = server();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let truth = Point::new(60.0, 60.0);
        // 6 honest vehicles agree; 2 spammers answer randomly later.
        for v in 0..8 {
            s.register(VehicleId(v));
        }
        for v in 0..6 {
            s.receive_upload(upload(v, &[(truth.x + v as f64 - 3.0, truth.y)]))
                .unwrap();
        }
        s.generate_patterns(3, &mut rng);
        let tasks = s.assign_tasks(5, &mut rng).unwrap();
        // Honest vehicles: label +1 iff the pattern matches the truth.
        let mut answers = Vec::new();
        for (&vehicle, list) in &tasks {
            for task in list {
                let honest =
                    task.pattern.aps.len() == 1 && task.pattern.aps[0].distance(truth) <= 20.0;
                let label = if vehicle.0 < 6 {
                    if honest {
                        1
                    } else {
                        -1
                    }
                } else if rng.random_range(0.0..1.0) < 0.5 {
                    1
                } else {
                    -1
                };
                answers.push(MappingAnswer {
                    vehicle,
                    task_id: task.task_id,
                    label,
                });
            }
        }
        s.receive_answers(answers);
        let outcome = s.infer(&mut rng).unwrap();
        // The true pattern must be accepted, most bootstrap junk rejected.
        assert!(outcome
            .accepted_patterns
            .iter()
            .any(|p| p.aps.len() == 1 && p.aps[0].distance(truth) <= 20.0));
        // Honest vehicles should out-rank spammers on average.
        let honest_avg: f64 = (0..6)
            .map(|v| outcome.reliabilities[&VehicleId(v)])
            .sum::<f64>()
            / 6.0;
        let spam_avg: f64 = (6..8)
            .map(|v| outcome.reliabilities[&VehicleId(v)])
            .sum::<f64>()
            / 2.0;
        assert!(
            honest_avg > spam_avg,
            "honest {honest_avg:.2} vs spammers {spam_avg:.2}"
        );
        // Fusion lands near the truth.
        let fused = s.finalize(25.0, 0.3);
        assert!(!fused.is_empty());
        let best = fused
            .iter()
            .map(|f| f.position.distance(truth))
            .fold(f64::INFINITY, f64::min);
        assert!(best < 10.0, "fused estimate {best:.1} m off");
        // Download honors the radius.
        assert!(!s.download(truth, 50.0).is_empty());
        assert!(s.download(Point::new(290.0, 10.0), 10.0).is_empty());
    }

    #[test]
    fn opted_out_vehicles_get_no_tasks() {
        let mut s = server();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for v in 0..4 {
            s.register(VehicleId(v));
        }
        s.receive_upload(upload(0, &[(50.0, 50.0)])).unwrap();
        s.generate_patterns(1, &mut rng);
        s.set_participation(VehicleId(3), false);
        assert!(!s.participates(VehicleId(3)));
        let tasks = s.assign_tasks(3, &mut rng).unwrap();
        assert!(!tasks.contains_key(&VehicleId(3)));
        // With one vehicle opted out, asking for 4 workers per task must
        // fail cleanly.
        assert!(s.assign_tasks(4, &mut rng).is_err());
        // Opting back in restores eligibility.
        s.set_participation(VehicleId(3), true);
        assert!(s.assign_tasks(4, &mut rng).is_ok());
    }

    #[test]
    fn reliability_smoothing_blends_rounds() {
        let mut s = server().with_reliability_smoothing(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for v in 0..4 {
            s.register(VehicleId(v));
        }
        s.receive_upload(upload(0, &[(50.0, 50.0)])).unwrap();
        s.generate_patterns(2, &mut rng);
        let tasks = s.assign_tasks(3, &mut rng).unwrap();
        let mut answers = Vec::new();
        for (&vehicle, list) in &tasks {
            for task in list {
                // Everyone answers "exists" only for the single-AP
                // pattern near (50, 50).
                let label = if task.pattern.aps.len() == 1
                    && task.pattern.aps[0].distance(Point::new(50.0, 50.0)) <= 20.0
                {
                    1
                } else {
                    -1
                };
                answers.push(MappingAnswer {
                    vehicle,
                    task_id: task.task_id,
                    label,
                });
            }
        }
        s.receive_answers(answers);
        let outcome = s.infer(&mut rng).unwrap();
        // With α = 0.5 and a 0.5 prior, one round can move a vehicle at
        // most halfway toward its round estimate.
        for (_, &q) in outcome.reliabilities.iter() {
            assert!((0.0..=1.0).contains(&q));
            assert!((q - 0.5).abs() <= 0.5 * 0.5 + 1e-9, "over-moved: {q}");
        }
    }

    #[test]
    fn infer_without_answers_fails() {
        let mut s = server();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(s.infer(&mut rng).is_err());
    }
}
