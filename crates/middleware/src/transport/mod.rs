//! Pluggable transports driving the sans-I/O [`crate::protocol`] core.
//!
//! A transport owns everything the core refuses to: channels, clocks,
//! scheduling, and the vehicle side of each link. Three backends ship:
//!
//! * [`ThreadTransport`] — the original runtime: one scoped OS thread
//!   per vehicle, crossbeam channels, wall-clock deadlines. Faithful to
//!   the paper's "many independent devices" shape and exercises real
//!   concurrency.
//! * [`SimTransport`] — a single-threaded deterministic simulator with
//!   a virtual clock: deadlines fire by advancing virtual time, never
//!   by sleeping. A multi-second degraded round replays in
//!   milliseconds, which is what makes fault-matrix testing and
//!   rounds/sec benchmarking practical.
//! * [`FleetTransport`] — the fleet-scale engine: vehicle sessions are
//!   batched state machines multiplexed over a clamped worker pool
//!   (not one thread or inline drain per vehicle), and the server is
//!   the segment-sharded [`crate::protocol::FleetCore`]. Same virtual
//!   clock, same fault layer, byte-identical same-seed rounds to
//!   [`SimTransport`] at 10k–100k vehicles.
//!
//! All backends wrap every link in the same [`crate::fault`] layer and
//! drive the same core, so a given seed + fault plan yields the same
//! [`PlatformReport::deterministic`] projection on any of them.

mod fleet;
mod sim;
mod thread;

pub use fleet::FleetTransport;
pub use sim::{sim_round_with_digest, SimTransport};
pub use thread::ThreadTransport;

use crate::durability::{LogSink, SnapshotStore};
use crate::fault::{FaultPlan, FaultTally};
use crate::protocol::rounds::smooth_reliabilities;
use crate::protocol::{Action, Event, PlatformConfig, PlatformReport, ServerCore, ShardedDatabase};
use crate::segment::SegmentMap;
use crate::vehicle::{CrowdVehicle, VehicleExit};
use crate::{messages::VehicleId, MiddlewareError, Result};
use crowdwifi_channel::RssReading;
use crowdwifi_obs::Registry;
use std::collections::BTreeMap;

/// The server-shaped thing a backend's event loop drives: a bare
/// [`ServerCore`], or the durability layer's crash-injecting
/// [`crate::durability`] host wrapping one. Backends are generic over
/// this, so the plain and durable round drivers are one loop.
pub(crate) trait EventHost {
    /// Starts the round (arms the initial deadlines).
    ///
    /// # Errors
    ///
    /// Durable hosts propagate log I/O failures.
    fn begin(&mut self) -> Result<Vec<Action>>;

    /// Feeds one event through the host.
    ///
    /// # Errors
    ///
    /// Durable hosts propagate log I/O and recovery failures.
    fn handle(&mut self, event: Event) -> Result<Vec<Action>>;

    /// End-of-round hook (final log sync, durability counters).
    ///
    /// # Errors
    ///
    /// Durable hosts propagate log I/O failures.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }

    /// The metrics registry the sealed report must snapshot. Fetched at
    /// seal time because recovery replaces it with a fresh one.
    fn registry(&self) -> Registry;
}

impl EventHost for ServerCore {
    fn begin(&mut self) -> Result<Vec<Action>> {
        Ok(self.start(crate::protocol::VirtualInstant::ZERO))
    }

    fn handle(&mut self, event: Event) -> Result<Vec<Action>> {
        Ok(ServerCore::handle(self, event))
    }

    fn registry(&self) -> Registry {
        self.registry_handle()
    }
}

/// One round-running backend. Implementations drive the whole fleet
/// plus the [`crate::protocol::ServerCore`] to completion and seal the
/// report with vehicle exits and fault tallies.
pub trait Transport {
    /// Runs one full crowdsensing round under a deterministic
    /// [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations and plans; fails with
    /// [`MiddlewareError::QuorumLost`] when too few vehicles survive;
    /// propagates assignment and inference failures.
    fn run_round_with_faults(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformReport>;

    /// [`Transport::run_round_with_faults`] with no injected faults.
    ///
    /// # Errors
    ///
    /// As [`Transport::run_round_with_faults`].
    fn run_round(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
    ) -> Result<PlatformReport> {
        self.run_round_with_faults(segments, fleet, config, &FaultPlan::none())
    }

    /// Runs one crash-consistent round: every server event is
    /// write-ahead logged to `wal` before it is applied, and the plan's
    /// [`crate::fault::ServerFault`] schedule may kill and recover the
    /// server mid-round. The report's metrics gain the `durability.*`
    /// counters (appends, fsync batches, recoveries, truncated tails).
    ///
    /// # Errors
    ///
    /// As [`Transport::run_round_with_faults`], plus
    /// [`MiddlewareError::Durability`] on log I/O failures or when a
    /// recovered server's state diverges from the never-crashed one.
    fn run_round_durable(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
        wal: &mut dyn LogSink,
    ) -> Result<PlatformReport>;
}

/// Result of a campaign: the per-round reports plus the sharded AP
/// database accumulated across them.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One report per round, in order.
    pub reports: Vec<PlatformReport>,
    /// Campaign AP state, each road-segment shard carrying the output
    /// of the last round that covered it.
    pub database: ShardedDatabase,
}

/// Observer of campaign round closes. The campaign drivers call
/// [`RoundSink::round_closed`] exactly once per round, after
/// reliability smoothing and the database fold, with the sealed
/// report — this is how downstream consumers (the geo-sharded AP map
/// via [`crate::mapsink::GeoMapSink`], metrics scrapers, ...) tap the
/// round stream without owning the campaign loop.
pub trait RoundSink {
    /// Called after round `round` closed with its sealed report.
    fn round_closed(&mut self, round: usize, report: &PlatformReport);
}

/// The do-nothing sink the plain campaign entry points use.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSink;

impl RoundSink for NoSink {
    fn round_closed(&mut self, _round: usize, _report: &PlatformReport) {}
}

/// Runs several crowdsourcing rounds back-to-back on `transport` with
/// reliability smoothing: each round re-senses, re-labels and
/// re-infers; per-vehicle reliability is the EMA across rounds, so a
/// spammer cannot whitewash itself with one lucky round. Each round's
/// fused output is folded into the sharded campaign database.
///
/// # Errors
///
/// Propagates single-round failures; requires at least one round.
pub fn run_campaign_on<T: Transport + ?Sized>(
    transport: &T,
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
) -> Result<CampaignOutcome> {
    run_campaign_with_faults_on(transport, segments, rounds, config, smoothing, &[])
}

/// [`run_campaign_on`] with a per-round [`FaultPlan`] schedule: round
/// `i` runs under `plans[i]` (or no faults when `plans` is shorter).
///
/// # Errors
///
/// As [`run_campaign_on`].
pub fn run_campaign_with_faults_on<T: Transport + ?Sized>(
    transport: &T,
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
) -> Result<CampaignOutcome> {
    run_campaign_with_faults_into(
        transport,
        segments,
        rounds,
        config,
        smoothing,
        plans,
        &mut NoSink,
    )
}

/// [`run_campaign_with_faults_on`] with a [`RoundSink`] observing each
/// round close — the wiring point that makes the geo-sharded AP map
/// the sink of [`FleetTransport`] (or any transport's) round closes.
///
/// # Errors
///
/// As [`run_campaign_on`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_with_faults_into<T: Transport + ?Sized>(
    transport: &T,
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
    sink: &mut dyn RoundSink,
) -> Result<CampaignOutcome> {
    if rounds.is_empty() {
        return Err(MiddlewareError::InvalidConfig(
            "campaign needs at least one round".to_string(),
        ));
    }
    if !(0.0..=1.0).contains(&smoothing) || !smoothing.is_finite() {
        return Err(MiddlewareError::InvalidConfig(format!(
            "smoothing must lie in [0, 1], got {smoothing}"
        )));
    }
    let none = FaultPlan::none();
    let mut long_run: BTreeMap<VehicleId, f64> = BTreeMap::new();
    let mut reports = Vec::with_capacity(rounds.len());
    let mut database = ShardedDatabase::new();
    for (i, fleet) in rounds.into_iter().enumerate() {
        let mut round_config = config;
        round_config.seed = config.seed.wrapping_add(i as u64 * 1000);
        let plan = plans.get(i).unwrap_or(&none);
        let mut report =
            transport.run_round_with_faults(segments.clone(), fleet, round_config, plan)?;
        smooth_reliabilities(&mut report, &mut long_run, smoothing);
        database.absorb(i, &segments, &report.fused);
        sink.round_closed(i, &report);
        reports.push(report);
    }
    Ok(CampaignOutcome { reports, database })
}

/// [`run_campaign_with_faults_on`] over the durable round driver:
/// every round write-ahead logs into `wal` (surviving injected
/// [`crate::fault::ServerFault`] crashes), and each round close writes
/// a [`SnapshotStore`] snapshot of the campaign database and compacts
/// the log — the snapshot owns everything up to its round, so the WAL
/// only ever carries the round in flight. Round `i`'s snapshot write
/// is torn when `plans[i].snapshot_torn(i)` says so.
///
/// # Errors
///
/// As [`run_campaign_with_faults_on`], plus
/// [`MiddlewareError::Durability`] on log or snapshot I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn run_durable_campaign_on<T: Transport + ?Sized>(
    transport: &T,
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
    wal: &mut dyn LogSink,
    snapshots: &mut SnapshotStore,
) -> Result<CampaignOutcome> {
    run_durable_campaign_into(
        transport,
        segments,
        rounds,
        config,
        smoothing,
        plans,
        wal,
        snapshots,
        &mut NoSink,
    )
}

/// [`run_durable_campaign_on`] with a [`RoundSink`] observing each
/// round close, after the snapshot write and WAL compaction.
///
/// # Errors
///
/// As [`run_durable_campaign_on`].
#[allow(clippy::too_many_arguments)]
pub fn run_durable_campaign_into<T: Transport + ?Sized>(
    transport: &T,
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
    wal: &mut dyn LogSink,
    snapshots: &mut SnapshotStore,
    sink: &mut dyn RoundSink,
) -> Result<CampaignOutcome> {
    if rounds.is_empty() {
        return Err(MiddlewareError::InvalidConfig(
            "campaign needs at least one round".to_string(),
        ));
    }
    if !(0.0..=1.0).contains(&smoothing) || !smoothing.is_finite() {
        return Err(MiddlewareError::InvalidConfig(format!(
            "smoothing must lie in [0, 1], got {smoothing}"
        )));
    }
    let none = FaultPlan::none();
    let mut long_run: BTreeMap<VehicleId, f64> = BTreeMap::new();
    let mut reports = Vec::with_capacity(rounds.len());
    let mut database = ShardedDatabase::new();
    for (i, fleet) in rounds.into_iter().enumerate() {
        let mut round_config = config;
        round_config.seed = config.seed.wrapping_add(i as u64 * 1000);
        let plan = plans.get(i).unwrap_or(&none);
        let mut report =
            transport.run_round_durable(segments.clone(), fleet, round_config, plan, &mut *wal)?;
        smooth_reliabilities(&mut report, &mut long_run, smoothing);
        database.absorb(i, &segments, &report.fused);
        // Round close: snapshot the database, then compact the WAL —
        // the snapshot now owns everything this round contributed.
        snapshots.write(i, &database, plan.snapshot_torn(i as u64))?;
        wal.reset(&[])?;
        sink.round_closed(i, &report);
        reports.push(report);
    }
    Ok(CampaignOutcome { reports, database })
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Common end-of-round sealing shared by the backends: record the
/// vehicle-side exits, fold the observed fault totals into the round's
/// counters, and embed the final metric snapshot.
pub(crate) fn seal_report(
    mut report: PlatformReport,
    exits: BTreeMap<VehicleId, VehicleExit>,
    registry: &Registry,
    tally: &FaultTally,
) -> PlatformReport {
    report.exits = exits;
    registry
        .counter("platform.faults.dropped")
        .add(tally.dropped());
    registry
        .counter("platform.faults.duplicated")
        .add(tally.duplicated());
    registry
        .counter("platform.faults.delayed")
        .add(tally.delayed());
    registry
        .counter("platform.faults.server_crashes")
        .add(tally.server_crashes());
    registry
        .counter("platform.faults.torn_wal_tails")
        .add(tally.torn_wal_tails());
    report.metrics = registry.snapshot();
    report
}
