//! The batched event-loop transport for fleet-scale rounds.
//!
//! [`FleetTransport`] multiplexes tens of thousands of simulated
//! vehicle sessions over a small worker pool instead of one OS thread
//! (or one inline drain) per vehicle. Each vehicle is a session state
//! machine split in two:
//!
//! * a **link half** on the driver thread — inbox queue, faulty uplink,
//!   recorded exit — which is where all `Rc`-backed queue plumbing and
//!   all fault-RNG consumption happens, keeping per-link fault streams
//!   in exactly the order the single-threaded simulator produces; and
//! * a **compute half** (the [`VehicleCore`] plus its staged step
//!   outcomes), which is `Send` and is fanned out across the worker
//!   pool in contiguous chunks each tick.
//!
//! A tick drains the server queue into the [`EventHost`], delivers
//! inbox traffic into per-vehicle pending batches, runs the compute
//! batch on the pool, then absorbs the staged outcomes **in vehicle-id
//! order** on the driver thread. Because absorption — the only place
//! uplink sends and exits happen — is serial and id-ordered, the server
//! sees the exact event sequence [`SimTransport`](super::SimTransport)
//! generates, and a same-seed round is byte-identical across the two
//! backends (state digest, fused map and deterministic projection
//! alike) for any worker or shard count. Virtual time advances exactly
//! as in the simulator: only at quiescence, straight to the earliest
//! armed deadline.
//!
//! The server side is the sharded [`FleetCore`]: control plane intact,
//! per-segment-shard data cores, cross-shard consolidation at round
//! close (see [`crate::protocol::fleet`]).

use super::sim::{apply, Downlink, QueueSink, ServerQueue, Uplink};
use super::{panic_message, seal_report, EventHost, Transport};
use crate::durability::{DurableRound, LogSink};
use crate::fault::{FaultPlan, FaultTally, LinkDirection};
use crate::messages::{ToServer, ToVehicle, VehicleId};
use crate::protocol::{
    Action, Event, FleetCore, PlatformConfig, PlatformReport, TimerId, VirtualInstant,
};
use crate::segment::SegmentMap;
use crate::vehicle::{CrowdVehicle, VehicleCore, VehicleExit, VehicleStep};
use crate::wire::{WireDigest, WireMessage};
use crate::{MiddlewareError, Result};
use crowdwifi_channel::RssReading;
use crowdwifi_obs::Registry;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;

/// Default segment-shard count for the sharded server core.
const DEFAULT_SHARDS: usize = 8;

/// The fleet-scale backend: a batched event loop over a clamped worker
/// pool driving a sharded [`FleetCore`].
#[derive(Debug, Clone, Copy)]
pub struct FleetTransport {
    workers: usize,
    shards: usize,
}

impl FleetTransport {
    /// A transport with the auto-detected worker budget (the
    /// `CROWDWIFI_THREADS` resolution rules, clamped to detected
    /// parallelism) and the default shard count.
    pub fn new() -> Self {
        FleetTransport {
            workers: clamp_workers(0),
            shards: DEFAULT_SHARDS,
        }
    }

    /// Overrides the worker count. Like `CROWDWIFI_THREADS`, the
    /// request is clamped to the machine's detected parallelism —
    /// oversubscribing an event loop whose work units are pure compute
    /// only adds scheduling noise. `0` restores auto-detection.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = clamp_workers(workers);
        self
    }

    /// Overrides the segment-shard count of the server core (clamped to
    /// at least one). Shard count never changes round results, only how
    /// the data plane is partitioned.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The effective (post-clamp) worker budget; benches record this
    /// under `machine.worker_budget`.
    pub fn worker_budget(&self) -> usize {
        self.workers
    }

    /// The segment-shard count in force.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Runs one faulted round and returns the report plus the sharded
    /// core's final [`state_digest`](crate::protocol::ServerCore::state_digest)
    /// extended with a [`WireDigest`] over the binary uplink frames, for
    /// byte-for-byte comparison against
    /// [`sim_round_with_digest`](super::sim_round_with_digest).
    ///
    /// # Errors
    ///
    /// As [`Transport::run_round_with_faults`].
    pub fn run_round_with_digest(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
    ) -> Result<(PlatformReport, String)> {
        let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
        let mut core = FleetCore::new(
            segments.clone(),
            &ids,
            config,
            Registry::new(),
            self.shards,
            self.workers,
        )?;
        plan.validate()?;
        let tally = Arc::new(FaultTally::new());
        let mut wire = WireDigest::new();
        let report = fleet_drive(
            &mut core,
            segments,
            fleet,
            config,
            plan,
            tally,
            self.workers,
            &mut wire,
        )?;
        let digest = format!("{} | {}", core.state_digest(), wire.render());
        Ok((report, digest))
    }
}

impl Default for FleetTransport {
    fn default() -> Self {
        FleetTransport::new()
    }
}

impl Transport for FleetTransport {
    fn run_round_with_faults(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformReport> {
        Ok(self.run_round_with_digest(segments, fleet, config, plan)?.0)
    }

    fn run_round_durable(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
        wal: &mut dyn LogSink,
    ) -> Result<PlatformReport> {
        // The durable host wraps an unsharded core: WAL replay must
        // rebuild byte-identical state under the logged config, and the
        // log format knows nothing about shard layouts. The batched
        // vehicle loop still applies.
        let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
        plan.validate()?;
        let tally = Arc::new(FaultTally::new());
        let mut host = DurableRound::new(
            segments.clone(),
            &ids,
            config,
            plan,
            wal,
            Arc::clone(&tally),
        )?;
        let mut wire = WireDigest::new();
        fleet_drive(
            &mut host,
            segments,
            fleet,
            config,
            plan,
            tally,
            self.workers,
            &mut wire,
        )
    }
}

impl EventHost for FleetCore {
    fn begin(&mut self) -> Result<Vec<Action>> {
        Ok(self.start(VirtualInstant::ZERO))
    }

    fn handle(&mut self, event: Event) -> Result<Vec<Action>> {
        Ok(FleetCore::handle(self, event))
    }

    fn registry(&self) -> Registry {
        self.registry_handle()
    }
}

/// Resolves a requested worker count exactly the way the compute
/// pipeline resolves `CROWDWIFI_THREADS` (PR 6): `0` defers to
/// [`crowdwifi_core::par::resolve_threads`] (env override included,
/// already clamped), and an explicit request is clamped to the detected
/// parallelism.
fn clamp_workers(requested: usize) -> usize {
    if requested == 0 {
        return crowdwifi_core::par::resolve_threads(0);
    }
    let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested.min(detected.max(1))
}

/// A step outcome staged by the compute half, exactly what the
/// simulator's inline step produces: the vehicle's `Result`, or the
/// payload of a caught panic.
type StepOutcome = std::result::Result<Result<VehicleStep>, Box<dyn std::any::Any + Send>>;

/// The `Send` compute half of one vehicle session: the pure state
/// machine, its pending downlink batch and the outcomes it staged this
/// tick. Workers touch nothing else.
struct ComputeCell {
    core: VehicleCore,
    readings: Vec<RssReading>,
    pending: Vec<Vec<u8>>,
    staged: Vec<StepOutcome>,
    start_pending: bool,
    /// Mirrors "no exit recorded yet" from the link half; an inactive
    /// cell absorbs pending messages silently, like the simulator's
    /// post-exit inbox drain.
    active: bool,
}

impl ComputeCell {
    /// Runs this cell's share of the tick: the initial `start` if still
    /// owed, then every pending message in order. After an exit (or
    /// failure, or panic) is staged, the remaining batch is absorbed
    /// silently — the same messages the simulator's drain would skip.
    fn step(&mut self, segments: &SegmentMap) {
        if self.start_pending {
            self.start_pending = false;
            if self.active {
                let core = &mut self.core;
                let readings = std::mem::take(&mut self.readings);
                self.staged
                    .push(catch_unwind(AssertUnwindSafe(|| core.start(&readings))));
            }
        }
        if !self.active {
            self.pending.clear();
            return;
        }
        let mut exited = self
            .staged
            .last()
            .is_some_and(|out| !matches!(out, Ok(Ok(VehicleStep::Continue(_)))));
        for bytes in std::mem::take(&mut self.pending) {
            if exited {
                continue;
            }
            // A garbled downlink frame stages the decode error, which
            // the link half reports as `ToServer::Failed` — identical
            // to the simulator's inline drain.
            let out = match ToVehicle::from_frame(&bytes) {
                Ok(msg) => {
                    let core = &mut self.core;
                    catch_unwind(AssertUnwindSafe(|| Ok(core.on_message(msg, segments))))
                }
                Err(e) => Ok(Err(e)),
            };
            exited = !matches!(out, Ok(Ok(VehicleStep::Continue(_))));
            self.staged.push(out);
        }
    }
}

/// The link half of one vehicle session; driver-thread only (the inbox
/// and uplink queues are `Rc`-shared with the fault layer).
struct LinkCell {
    id: VehicleId,
    inbox: Rc<RefCell<VecDeque<Vec<u8>>>>,
    uplink: Option<Uplink>,
    exit: Option<VehicleExit>,
}

impl LinkCell {
    /// Folds one staged outcome into the session lifecycle, mirroring
    /// the simulator's `absorb`/`fail` pair: continues dispatch uplink
    /// messages, exits close the uplink, failures report then exit.
    fn absorb(&mut self, outcome: StepOutcome, active: &mut bool) {
        let step = match outcome {
            Ok(Ok(step)) => step,
            Ok(Err(e)) => return self.fail(e.to_string(), active),
            Err(payload) => return self.fail(format!("panic: {}", panic_message(payload)), active),
        };
        match step {
            VehicleStep::Continue(msgs) => {
                if let Some(uplink) = self.uplink.as_mut() {
                    for m in msgs {
                        let _ = uplink.send((self.id, m.to_frame()));
                    }
                }
            }
            VehicleStep::Exit(exit) => {
                self.exit = Some(exit);
                self.uplink = None;
                *active = false;
            }
        }
    }

    fn fail(&mut self, reason: String, active: &mut bool) {
        if let Some(uplink) = self.uplink.as_mut() {
            let frame = ToServer::Failed(reason.clone()).to_frame();
            let _ = uplink.send((self.id, frame));
        }
        self.exit = Some(VehicleExit::Failed(reason));
        self.uplink = None;
        *active = false;
    }
}

/// Fans the compute batch out over `workers` contiguous chunks of the
/// cell array. Each cell's work is independent, so chunking is pure
/// load-splitting; with one worker (or one cell) everything runs
/// inline with zero thread spawns.
fn compute_batch(cells: &mut [ComputeCell], segments: &SegmentMap, workers: usize) {
    let workers = workers.max(1).min(cells.len().max(1));
    if workers <= 1 {
        for cell in cells.iter_mut() {
            cell.step(segments);
        }
        return;
    }
    let width = cells.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for part in cells.chunks_mut(width) {
            scope.spawn(move || {
                for cell in part {
                    cell.step(segments);
                }
            });
        }
    });
}

/// Absorbs every staged outcome in vehicle-id order on the driver
/// thread — the only place uplink sends and exits happen, which is what
/// pins the server-side event order to the simulator's.
fn absorb_batch(links: &mut [LinkCell], cells: &mut [ComputeCell]) {
    for (link, cell) in links.iter_mut().zip(cells.iter_mut()) {
        for outcome in cell.staged.drain(..) {
            link.absorb(outcome, &mut cell.active);
        }
    }
}

/// The fleet event loop, generic over the server-shaped host exactly
/// like the simulator's driver; see the [module docs](self) for the
/// tick structure and the equivalence argument.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn fleet_drive<H: EventHost>(
    host: &mut H,
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
    tally: Arc<FaultTally>,
    workers: usize,
    wire: &mut WireDigest,
) -> Result<PlatformReport> {
    let server_queue: ServerQueue = Rc::new(RefCell::new(VecDeque::new()));
    // Seeds follow fleet order (matching every other backend); the
    // session arrays are then sorted into vehicle-id order, the order
    // ticks absorb in.
    let mut sessions: Vec<(LinkCell, ComputeCell)> = Vec::with_capacity(fleet.len());
    let mut downlinks: BTreeMap<VehicleId, Downlink> = BTreeMap::new();
    for (i, (vehicle, readings)) in fleet.into_iter().enumerate() {
        let id = vehicle.id();
        let inbox = Rc::new(RefCell::new(VecDeque::new()));
        downlinks.insert(
            id,
            plan.sender_tallied(
                QueueSink(Rc::clone(&inbox)),
                id,
                LinkDirection::ToVehicle,
                Some(Arc::clone(&tally)),
            ),
        );
        let uplink = plan.sender_tallied(
            QueueSink(Rc::clone(&server_queue)),
            id,
            LinkDirection::ToServer,
            Some(Arc::clone(&tally)),
        );
        sessions.push((
            LinkCell {
                id,
                inbox,
                uplink: Some(uplink),
                exit: None,
            },
            ComputeCell {
                core: VehicleCore::new(vehicle, config.seed + i as u64 + 1, plan.misbehavior(id)),
                readings,
                pending: Vec::new(),
                staged: Vec::new(),
                start_pending: true,
                active: true,
            },
        ));
    }
    sessions.sort_by_key(|(link, _)| link.id);
    let (mut links, mut cells): (Vec<LinkCell>, Vec<ComputeCell>) = sessions.into_iter().unzip();

    let mut now = VirtualInstant::ZERO;
    let mut timers: BTreeMap<TimerId, VirtualInstant> = BTreeMap::new();
    let mut outcome: Option<Result<PlatformReport>> = None;

    apply(host.begin()?, &mut downlinks, &mut timers, &mut outcome);

    // Every vehicle runs its drive "at once" (virtual time zero): one
    // batched start tick.
    compute_batch(&mut cells, &segments, workers);
    absorb_batch(&mut links, &mut cells);

    loop {
        // Pump until every queue is empty: server traffic in queue
        // order, then one delivery + compute + absorb tick.
        loop {
            let mut progressed = false;
            loop {
                let next = server_queue.borrow_mut().pop_front();
                let Some((from, bytes)) = next else { break };
                progressed = true;
                wire.absorb(&bytes);
                let event = match ToServer::from_frame(&bytes) {
                    Ok(msg) => Event::Message { now, from, msg },
                    Err(_) => Event::Garbled { now, from },
                };
                apply(
                    host.handle(event)?,
                    &mut downlinks,
                    &mut timers,
                    &mut outcome,
                );
            }
            let mut delivered = false;
            for (link, cell) in links.iter_mut().zip(cells.iter_mut()) {
                loop {
                    let msg = link.inbox.borrow_mut().pop_front();
                    let Some(msg) = msg else { break };
                    delivered = true;
                    cell.pending.push(msg);
                }
            }
            if delivered {
                progressed = true;
                compute_batch(&mut cells, &segments, workers);
                absorb_batch(&mut links, &mut cells);
            }
            if !progressed {
                break;
            }
        }

        if outcome.is_some() {
            break;
        }

        // Quiescent: all links gone means the server sees a disconnect
        // (retried a bounded number of times for crash-eating durable
        // hosts); otherwise jump the clock to the earliest deadline.
        if links.iter().all(|link| link.uplink.is_none()) {
            for attempt in 0.. {
                apply(
                    host.handle(Event::LinksClosed { now })?,
                    &mut downlinks,
                    &mut timers,
                    &mut outcome,
                );
                if outcome.is_some() {
                    break;
                }
                if attempt >= 8 {
                    return Err(MiddlewareError::Crowd(
                        "simulation stalled: links closed but round undecided".to_string(),
                    ));
                }
            }
            continue;
        }
        let Some(&next) = timers.values().min() else {
            return Err(MiddlewareError::Crowd(
                "simulation stalled: no traffic and no armed deadlines".to_string(),
            ));
        };
        if next > now {
            now = next;
        }
        let mut due: Vec<(VirtualInstant, TimerId)> = timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, &at)| (at, t))
            .collect();
        due.sort_unstable();
        for (_, timer) in due {
            timers.remove(&timer);
            if outcome.is_some() {
                continue;
            }
            apply(
                host.handle(Event::TimerFired { now, timer })?,
                &mut downlinks,
                &mut timers,
                &mut outcome,
            );
        }
    }

    let report = outcome.expect("round outcome decided")?;

    // Round complete: dropping the downlinks flushes delayed traffic
    // into the inboxes; one final tick lets every vehicle see its
    // `Done`, then survivors classify the hang-up.
    drop(downlinks);
    for (link, cell) in links.iter_mut().zip(cells.iter_mut()) {
        loop {
            let msg = link.inbox.borrow_mut().pop_front();
            let Some(msg) = msg else { break };
            cell.pending.push(msg);
        }
    }
    compute_batch(&mut cells, &segments, workers);
    absorb_batch(&mut links, &mut cells);
    let exits: BTreeMap<VehicleId, VehicleExit> = links
        .iter_mut()
        .zip(cells.iter_mut())
        .map(|(link, cell)| {
            let exit = link
                .exit
                .take()
                .unwrap_or_else(|| cell.core.on_disconnect());
            (link.id, exit)
        })
        .collect();
    host.finish()?;
    Ok(seal_report(report, exits, &host.registry(), &tally))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_clamp_mirrors_thread_budget() {
        let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(clamp_workers(usize::MAX), detected);
        assert!(clamp_workers(0) >= 1);
        assert_eq!(clamp_workers(1), 1);
        let t = FleetTransport::new().with_workers(usize::MAX);
        assert_eq!(t.worker_budget(), detected);
        assert_eq!(FleetTransport::new().with_shards(0).shard_count(), 1);
    }
}
