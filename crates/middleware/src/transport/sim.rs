//! The deterministic single-threaded simulation transport.
//!
//! Everything the threaded backend does with OS threads and wall-clock
//! waits happens here on one thread with a virtual clock: messages move
//! through in-memory queues, and when the round quiesces the clock
//! jumps straight to the earliest armed deadline. A degraded round that
//! takes multiple real seconds on [`super::ThreadTransport`] (timeouts,
//! retry backoff) replays here in microseconds, with a bit-identical
//! [`PlatformReport::deterministic`] projection.

use crate::durability::{DurableRound, LogSink};
use crate::fault::FaultPlan;
use crate::fault::{FaultTally, FaultySender, LinkDirection, MessageSink};
use crate::messages::{ToServer, ToVehicle, VehicleId};
use crate::protocol::{
    Action, Event, PlatformConfig, PlatformReport, ServerCore, TimerId, VirtualInstant,
};
use crate::segment::SegmentMap;
use crate::transport::{panic_message, seal_report, EventHost, Transport};
use crate::vehicle::{CrowdVehicle, VehicleCore, VehicleExit, VehicleStep};
use crate::wire::{WireDigest, WireMessage};
use crate::{MiddlewareError, Result};
use crowdwifi_channel::RssReading;
use crowdwifi_obs::Registry;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;

/// The virtual-clock backend: vehicles are stepped inline, links are
/// in-memory queues behind the same [`crate::fault`] layer as the
/// threaded runtime, and time advances only when every queue is empty —
/// directly to the earliest armed deadline, never by sleeping. One run
/// is one deterministic replay: fleet order, queue order and per-link
/// fault RNG streams are all fixed by the seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTransport;

impl Transport for SimTransport {
    fn run_round_with_faults(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformReport> {
        sim_round(segments, fleet, config, plan)
    }

    fn run_round_durable(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
        wal: &mut dyn LogSink,
    ) -> Result<PlatformReport> {
        let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
        plan.validate()?;
        let tally = Arc::new(FaultTally::new());
        let mut host = DurableRound::new(
            segments.clone(),
            &ids,
            config,
            plan,
            wal,
            Arc::clone(&tally),
        )?;
        let mut wire = WireDigest::new();
        sim_drive(&mut host, segments, fleet, config, plan, tally, &mut wire)
    }
}

/// A [`MessageSink`] backed by a shared in-memory queue; the sim's
/// stand-in for a channel sender. Never disconnects. Shared with the
/// fleet backend, whose links are the same in-memory queues.
pub(super) struct QueueSink<T>(pub(super) Rc<RefCell<VecDeque<T>>>);

impl<T> MessageSink<T> for QueueSink<T> {
    fn deliver(&mut self, msg: T) -> std::result::Result<(), T> {
        self.0.borrow_mut().push_back(msg);
        Ok(())
    }
}

// The links carry raw binary frames, not typed messages: encoding
// happens at the sender, decoding at the receiver, so the bytes the
// fault layer drops, duplicates and delays are the real wire bytes.
pub(super) type Uplink = FaultySender<(VehicleId, Vec<u8>), QueueSink<(VehicleId, Vec<u8>)>>;
pub(super) type Downlink = FaultySender<Vec<u8>, QueueSink<Vec<u8>>>;
/// The server's shared uplink inbox: frames tagged with their sender.
pub(super) type ServerQueue = Rc<RefCell<VecDeque<(VehicleId, Vec<u8>)>>>;

/// One simulated vehicle: its pure state machine, its inbox queue, and
/// its (noisy) uplink. The uplink is dropped the moment the vehicle
/// exits, flushing any delayed messages — exactly when the threaded
/// vehicle's sender would go out of scope.
struct SimVehicle {
    core: VehicleCore,
    readings: Vec<RssReading>,
    inbox: Rc<RefCell<VecDeque<Vec<u8>>>>,
    uplink: Option<Uplink>,
    exit: Option<VehicleExit>,
}

impl SimVehicle {
    /// Folds one state-machine step (or its failure) into the vehicle's
    /// lifecycle: dispatch uplink messages, or record the exit and
    /// close the uplink.
    fn absorb(
        &mut self,
        outcome: std::result::Result<Result<VehicleStep>, Box<dyn std::any::Any + Send>>,
    ) {
        let step = match outcome {
            Ok(Ok(step)) => step,
            Ok(Err(e)) => return self.fail(e.to_string()),
            Err(payload) => return self.fail(format!("panic: {}", panic_message(payload))),
        };
        match step {
            VehicleStep::Continue(msgs) => {
                if let Some(uplink) = self.uplink.as_mut() {
                    let id = self.core.id();
                    for m in msgs {
                        let _ = uplink.send((id, m.to_frame()));
                    }
                }
            }
            VehicleStep::Exit(exit) => {
                self.exit = Some(exit);
                self.uplink = None;
            }
        }
    }

    /// Mirrors the threaded backend's error path: report the failure to
    /// the server, then exit.
    fn fail(&mut self, reason: String) {
        if let Some(uplink) = self.uplink.as_mut() {
            let frame = ToServer::Failed(reason.clone()).to_frame();
            let _ = uplink.send((self.core.id(), frame));
        }
        self.exit = Some(VehicleExit::Failed(reason));
        self.uplink = None;
    }

    /// Delivers every queued inbox message; exited vehicles absorb
    /// theirs silently (the threaded keepalive receiver does the same).
    /// Returns whether anything was delivered.
    fn drain_inbox(&mut self, segments: &SegmentMap) -> bool {
        let mut progressed = false;
        loop {
            let bytes = self.inbox.borrow_mut().pop_front();
            let Some(bytes) = bytes else { break };
            progressed = true;
            if self.exit.is_some() {
                continue;
            }
            // A frame the fault layer garbled fails the vehicle with
            // the decode error, exactly like the threaded receive loop.
            let step = match ToVehicle::from_frame(&bytes) {
                Ok(msg) => {
                    let core = &mut self.core;
                    catch_unwind(AssertUnwindSafe(|| Ok(core.on_message(msg, segments))))
                }
                Err(e) => Ok(Err(e)),
            };
            self.absorb(step);
        }
        progressed
    }
}

fn sim_round(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
) -> Result<PlatformReport> {
    Ok(sim_round_with_digest(segments, fleet, config, plan)?.0)
}

/// Runs one faulted round on the simulator and returns the report
/// together with the server core's final
/// [`state_digest`](ServerCore::state_digest), extended with a
/// [`WireDigest`] over the binary uplink frames the server received —
/// the reference string the fleet backend's equivalence tests compare
/// byte-for-byte (state *and* wire bytes must match).
///
/// # Errors
///
/// As [`Transport::run_round_with_faults`].
pub fn sim_round_with_digest(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
) -> Result<(PlatformReport, String)> {
    let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
    let registry = Registry::new();
    let mut core = ServerCore::new(segments.clone(), &ids, config, registry)?;
    plan.validate()?;
    let tally = Arc::new(FaultTally::new());
    let mut wire = WireDigest::new();
    let report = sim_drive(&mut core, segments, fleet, config, plan, tally, &mut wire)?;
    let digest = format!("{} | {}", core.state_digest(), wire.render());
    Ok((report, digest))
}

/// The simulator's event loop, generic over the server-shaped host so
/// plain and durable (crash-injecting) rounds share one driver. Every
/// uplink frame the server receives is absorbed into `wire` before it
/// is decoded, so the digest covers the raw bytes in arrival order.
#[allow(clippy::too_many_arguments)]
fn sim_drive<H: EventHost>(
    host: &mut H,
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
    tally: Arc<FaultTally>,
    wire: &mut WireDigest,
) -> Result<PlatformReport> {
    let server_queue: ServerQueue = Rc::new(RefCell::new(VecDeque::new()));
    let mut vehicles: BTreeMap<VehicleId, SimVehicle> = BTreeMap::new();
    let mut downlinks: BTreeMap<VehicleId, Downlink> = BTreeMap::new();
    // Seeds follow fleet order, matching the threaded spawn loop.
    for (i, (vehicle, readings)) in fleet.into_iter().enumerate() {
        let id = vehicle.id();
        let inbox = Rc::new(RefCell::new(VecDeque::new()));
        downlinks.insert(
            id,
            plan.sender_tallied(
                QueueSink(Rc::clone(&inbox)),
                id,
                LinkDirection::ToVehicle,
                Some(Arc::clone(&tally)),
            ),
        );
        let uplink = plan.sender_tallied(
            QueueSink(Rc::clone(&server_queue)),
            id,
            LinkDirection::ToServer,
            Some(Arc::clone(&tally)),
        );
        vehicles.insert(
            id,
            SimVehicle {
                core: VehicleCore::new(vehicle, config.seed + i as u64 + 1, plan.misbehavior(id)),
                readings,
                inbox,
                uplink: Some(uplink),
                exit: None,
            },
        );
    }

    let mut now = VirtualInstant::ZERO;
    let mut timers: BTreeMap<TimerId, VirtualInstant> = BTreeMap::new();
    let mut outcome: Option<Result<PlatformReport>> = None;

    apply(host.begin()?, &mut downlinks, &mut timers, &mut outcome);

    // Every vehicle runs its drive "at once" (virtual time zero).
    for v in vehicles.values_mut() {
        let core = &mut v.core;
        let readings = std::mem::take(&mut v.readings);
        let step = catch_unwind(AssertUnwindSafe(|| core.start(&readings)));
        v.absorb(step);
    }

    loop {
        // Pump messages until every queue is empty. Uplink traffic
        // reaches the core in queue order; inboxes drain in id order.
        loop {
            let mut progressed = false;
            loop {
                let next = server_queue.borrow_mut().pop_front();
                let Some((from, bytes)) = next else { break };
                progressed = true;
                wire.absorb(&bytes);
                let event = match ToServer::from_frame(&bytes) {
                    Ok(msg) => Event::Message { now, from, msg },
                    Err(_) => Event::Garbled { now, from },
                };
                apply(
                    host.handle(event)?,
                    &mut downlinks,
                    &mut timers,
                    &mut outcome,
                );
            }
            for v in vehicles.values_mut() {
                progressed |= v.drain_inbox(&segments);
            }
            if !progressed {
                break;
            }
        }

        if outcome.is_some() {
            break;
        }

        // Quiescent. If every uplink is closed the server would see a
        // disconnect; otherwise jump the clock to the next deadline.
        if vehicles.values().all(|v| v.uplink.is_none()) {
            // A crash-injecting host may consume the disconnect event
            // itself (the crash eats it), so retry a bounded number of
            // times — like a supervisor restarting the process and the
            // runtime re-reporting the closed links.
            for attempt in 0.. {
                apply(
                    host.handle(Event::LinksClosed { now })?,
                    &mut downlinks,
                    &mut timers,
                    &mut outcome,
                );
                if outcome.is_some() {
                    break;
                }
                if attempt >= 8 {
                    return Err(MiddlewareError::Crowd(
                        "simulation stalled: links closed but round undecided".to_string(),
                    ));
                }
            }
            continue;
        }
        let Some(&next) = timers.values().min() else {
            return Err(MiddlewareError::Crowd(
                "simulation stalled: no traffic and no armed deadlines".to_string(),
            ));
        };
        if next > now {
            now = next;
        }
        let mut due: Vec<(VirtualInstant, TimerId)> = timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, &at)| (at, t))
            .collect();
        due.sort_unstable();
        for (_, timer) in due {
            timers.remove(&timer);
            if outcome.is_some() {
                continue;
            }
            apply(
                host.handle(Event::TimerFired { now, timer })?,
                &mut downlinks,
                &mut timers,
                &mut outcome,
            );
        }
    }

    let report = outcome.expect("round outcome decided")?;

    // Round complete: flush delayed downlink traffic and deliver it, so
    // every vehicle sees its `Done` (the threaded backend's link drop
    // does the same), then let survivors classify the hang-up.
    drop(downlinks);
    for v in vehicles.values_mut() {
        v.drain_inbox(&segments);
    }
    let exits: BTreeMap<VehicleId, VehicleExit> = vehicles
        .into_iter()
        .map(|(id, mut v)| {
            let exit = v.exit.take().unwrap_or_else(|| v.core.on_disconnect());
            (id, exit)
        })
        .collect();
    host.finish()?;
    Ok(seal_report(report, exits, &host.registry(), &tally))
}

/// Folds one batch of core actions into the driver state: sends go to
/// the (faulty) downlinks, timers into the deadline map, terminal
/// actions into `outcome`. Shared with the fleet backend.
pub(super) fn apply(
    actions: Vec<Action>,
    downlinks: &mut BTreeMap<VehicleId, Downlink>,
    timers: &mut BTreeMap<TimerId, VirtualInstant>,
    outcome: &mut Option<Result<PlatformReport>>,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => {
                if let Some(link) = downlinks.get_mut(&to) {
                    let _ = link.send(msg.to_frame());
                }
            }
            Action::SetTimer { timer, deadline } => {
                timers.insert(timer, deadline);
            }
            Action::Completed(report) => *outcome = Some(Ok(*report)),
            Action::Failed(e) => *outcome = Some(Err(e)),
        }
    }
}
