//! The threaded transport: one scoped OS thread per vehicle, crossbeam
//! channels, wall-clock deadlines. All protocol decisions live in
//! [`ServerCore`]; this driver only moves messages, keeps wall-clock
//! timers, and stamps events with the elapsed time since round start.

use crate::durability::{DurableRound, LogSink};
use crate::fault::{FaultPlan, FaultTally, FaultySender, LinkDirection};
use crate::messages::{ToServer, VehicleId};
use crate::protocol::{
    Action, Event, PlatformConfig, PlatformReport, ServerCore, TimerId, VirtualInstant,
};
use crate::segment::SegmentMap;
use crate::transport::{panic_message, seal_report, EventHost, Transport};
use crate::vehicle::{run_protocol, CrowdVehicle, VehicleCore, VehicleExit};
use crate::wire::WireMessage;
use crate::Result;
use crossbeam::channel::{self, RecvTimeoutError};
use crowdwifi_channel::RssReading;
use crowdwifi_obs::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The original concurrent runtime: each crowd-vehicle runs on its own
/// scoped thread and talks to the server over (possibly noisy)
/// channels, like the paper's fleet of independent devices. Vehicle
/// threads are spawned under [`std::thread::scope`], so none can
/// outlive the round; each wraps its protocol in `catch_unwind`,
/// reporting panics and estimator errors to the server as
/// [`ToServer::Failed`]. Silent deaths (injected crashes, dropped
/// packets) are caught by the core's per-vehicle deadlines instead —
/// nothing blocks forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadTransport;

impl Transport for ThreadTransport {
    fn run_round_with_faults(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformReport> {
        thread_round(segments, fleet, config, plan)
    }

    fn run_round_durable(
        &self,
        segments: SegmentMap,
        fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
        config: PlatformConfig,
        plan: &FaultPlan,
        wal: &mut dyn LogSink,
    ) -> Result<PlatformReport> {
        let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
        plan.validate()?;
        let tally = Arc::new(FaultTally::new());
        // The durable host lives on the scope's main thread only; the
        // vehicle threads never touch it.
        let host = DurableRound::new(
            segments.clone(),
            &ids,
            config,
            plan,
            wal,
            Arc::clone(&tally),
        )?;
        thread_drive_round(host, segments, fleet, config, plan, tally)
    }
}

/// Server-side handle to one vehicle: the (possibly noisy) downlink
/// sender plus a receiver clone that keeps the channel open, so sends
/// to an already-dead vehicle are quietly absorbed instead of erroring.
struct VehicleLink {
    tx: FaultySender<Vec<u8>>,
    _keepalive: channel::Receiver<Vec<u8>>,
}

fn thread_round(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
) -> Result<PlatformReport> {
    let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();
    let registry = Registry::new();
    let core = ServerCore::new(segments.clone(), &ids, config, registry)?;
    plan.validate()?;
    let tally = Arc::new(FaultTally::new());
    thread_drive_round(core, segments, fleet, config, plan, tally)
}

/// Spawns the fleet and drives `host` to completion: the backend's
/// shared round body, generic over the server-shaped host so plain and
/// durable (crash-injecting) rounds use the same loop.
fn thread_drive_round<H: EventHost>(
    mut host: H,
    segments: SegmentMap,
    mut fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
    tally: Arc<FaultTally>,
) -> Result<PlatformReport> {
    let ids: Vec<VehicleId> = fleet.iter().map(|(v, _)| v.id()).collect();

    let (to_server_tx, to_server_rx) = channel::unbounded::<(VehicleId, Vec<u8>)>();
    let mut links: BTreeMap<VehicleId, VehicleLink> = BTreeMap::new();
    let mut vehicle_rxs: BTreeMap<VehicleId, channel::Receiver<Vec<u8>>> = BTreeMap::new();
    for &id in &ids {
        let (tx, rx) = channel::unbounded::<Vec<u8>>();
        vehicle_rxs.insert(id, rx.clone());
        links.insert(
            id,
            VehicleLink {
                tx: plan.sender_tallied(tx, id, LinkDirection::ToVehicle, Some(Arc::clone(&tally))),
                _keepalive: rx,
            },
        );
    }

    let exits: Mutex<BTreeMap<VehicleId, VehicleExit>> = Mutex::new(BTreeMap::new());

    let server_result = std::thread::scope(|scope| {
        for (i, (vehicle, readings)) in fleet.drain(..).enumerate() {
            let id = vehicle.id();
            let mut to_server = plan.sender_tallied(
                to_server_tx.clone(),
                id,
                LinkDirection::ToServer,
                Some(Arc::clone(&tally)),
            );
            let rx = vehicle_rxs[&id].clone();
            let script = plan.misbehavior(id);
            let seed = config.seed + i as u64 + 1;
            let segments = &segments;
            let exits = &exits;
            scope.spawn(move || {
                let mut vehicle_core = VehicleCore::new(vehicle, seed, script);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_protocol(&mut vehicle_core, &readings, segments, &mut to_server, &rx)
                }));
                let exit = match outcome {
                    Ok(Ok(exit)) => exit,
                    Ok(Err(e)) => {
                        let reason = e.to_string();
                        // Best-effort: the server may already be gone.
                        let frame = ToServer::Failed(reason.clone()).to_frame();
                        let _ = to_server.send((id, frame));
                        VehicleExit::Failed(reason)
                    }
                    Err(payload) => {
                        let reason = format!("panic: {}", panic_message(payload));
                        let frame = ToServer::Failed(reason.clone()).to_frame();
                        let _ = to_server.send((id, frame));
                        VehicleExit::Failed(reason)
                    }
                };
                exits.lock().expect("exit log lock").insert(id, exit);
            });
        }
        drop(to_server_tx);

        let result = drive(&mut host, &to_server_rx, &mut links);
        // Success or failure, release every vehicle before the scope
        // joins: dropping the downlinks turns any blocked `rx.recv()`
        // into a clean disconnect-and-exit. (On failure the core has
        // already emitted `Abort` notices through the links.)
        drop(links);
        result
    });

    let report = server_result?;
    let exits = exits.into_inner().expect("exit log lock");
    host.finish()?;
    // Fault totals are read only after the scope joins, when every
    // sender (including the uplinks owned by vehicle threads) is done.
    Ok(seal_report(report, exits, &host.registry(), &tally))
}

/// Maps wall time onto the core's virtual clock: microseconds since
/// round start.
fn virtual_now(start: Instant) -> VirtualInstant {
    VirtualInstant::from_micros(start.elapsed().as_micros() as u64)
}

/// The event loop: waits for uplink messages up to the earliest armed
/// deadline, fires due timers in (deadline, timer) order, and performs
/// whatever actions the core returns.
fn drive<H: EventHost>(
    host: &mut H,
    rx: &channel::Receiver<(VehicleId, Vec<u8>)>,
    links: &mut BTreeMap<VehicleId, VehicleLink>,
) -> Result<PlatformReport> {
    // Uplink frames that fail to decode (the fault layer garbled them)
    // become `Event::Garbled`, quarantining the sender.
    let decode =
        |now: VirtualInstant, from: VehicleId, bytes: &[u8]| match ToServer::from_frame(bytes) {
            Ok(msg) => Event::Message { now, from, msg },
            Err(_) => Event::Garbled { now, from },
        };
    let start = Instant::now();
    let mut timers: BTreeMap<TimerId, VirtualInstant> = BTreeMap::new();
    let mut outcome: Option<Result<PlatformReport>> = None;

    apply(host.begin()?, links, &mut timers, &mut outcome);

    while outcome.is_none() {
        // Fire every due timer, earliest deadline first. Stale
        // generations pass through the core as no-ops.
        let now = virtual_now(start);
        let mut due: Vec<(VirtualInstant, TimerId)> = timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, &at)| (at, t))
            .collect();
        due.sort_unstable();
        for (_, timer) in due {
            timers.remove(&timer);
            if outcome.is_some() {
                continue;
            }
            let actions = host.handle(Event::TimerFired {
                now: virtual_now(start),
                timer,
            })?;
            apply(actions, links, &mut timers, &mut outcome);
        }
        if outcome.is_some() {
            break;
        }

        // Wait for traffic until the earliest remaining deadline.
        let event = match timers.values().min().copied() {
            Some(at) => {
                let wall = start + Duration::from_micros(at.as_micros());
                let timeout = wall
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                match rx.recv_timeout(timeout) {
                    Ok((from, bytes)) => Some(decode(virtual_now(start), from, &bytes)),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => Some(Event::LinksClosed {
                        now: virtual_now(start),
                    }),
                }
            }
            // No armed deadlines (the core is between phases only
            // momentarily, so this is defensive): block on traffic.
            None => match rx.recv() {
                Ok((from, bytes)) => Some(decode(virtual_now(start), from, &bytes)),
                Err(_) => Some(Event::LinksClosed {
                    now: virtual_now(start),
                }),
            },
        };
        if let Some(event) = event {
            let actions = host.handle(event)?;
            apply(actions, links, &mut timers, &mut outcome);
        }
    }
    outcome.expect("round outcome decided")
}

fn apply(
    actions: Vec<Action>,
    links: &mut BTreeMap<VehicleId, VehicleLink>,
    timers: &mut BTreeMap<TimerId, VirtualInstant>,
    outcome: &mut Option<Result<PlatformReport>>,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => {
                if let Some(link) = links.get_mut(&to) {
                    let _ = link.tx.send(msg.to_frame());
                }
            }
            Action::SetTimer { timer, deadline } => {
                timers.insert(timer, deadline);
            }
            Action::Completed(report) => *outcome = Some(Ok(*report)),
            Action::Failed(e) => *outcome = Some(Err(e)),
        }
    }
}
