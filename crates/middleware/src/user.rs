//! The user-vehicle client (§3): downloads fine-grained AP lookup
//! results ahead of its route and turns them into the AP database its
//! WiFi stack (the `crowdwifi-handoff` crate) consumes.

use crate::platform::{PlatformReport, RoundHealth};
use crate::server::CrowdServer;
use crowdwifi_geo::{Point, Trajectory};

/// A user-vehicle: consumes crowdsensed lookup results; contributes
/// nothing.
#[derive(Debug, Clone)]
pub struct UserVehicle {
    /// How far around the planned route the vehicle prefetches APs.
    prefetch_radius: f64,
    /// Whether results from a [`RoundHealth::Degraded`] round are good
    /// enough to drive on.
    accept_degraded: bool,
}

impl Default for UserVehicle {
    fn default() -> Self {
        UserVehicle {
            prefetch_radius: 150.0,
            accept_degraded: true,
        }
    }
}

impl UserVehicle {
    /// Creates a user-vehicle with the default 150 m prefetch radius.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the prefetch radius in meters.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive and finite.
    pub fn with_prefetch_radius(mut self, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "prefetch radius must be positive and finite"
        );
        self.prefetch_radius = radius;
        self
    }

    /// The prefetch radius in meters.
    pub fn prefetch_radius(&self) -> f64 {
        self.prefetch_radius
    }

    /// Sets whether the vehicle accepts results from degraded rounds
    /// (vehicle deaths, reassigned tasks, lost coverage). Default: yes —
    /// a degraded map still beats blind scanning; a cautious navigator
    /// can insist on complete rounds instead.
    pub fn with_degraded_policy(mut self, accept: bool) -> Self {
        self.accept_degraded = accept;
        self
    }

    /// Whether degraded-round results are accepted.
    pub fn accepts_degraded(&self) -> bool {
        self.accept_degraded
    }

    /// Extracts the APs near the planned route from a round report,
    /// honoring the vehicle's degraded-round policy: `None` means the
    /// round's health was below this vehicle's bar, not that the route
    /// has no coverage.
    pub fn download_from_report(
        &self,
        report: &PlatformReport,
        route: &Trajectory,
    ) -> Option<Vec<Point>> {
        if report.health == RoundHealth::Degraded && !self.accept_degraded {
            return None;
        }
        let mut out: Vec<Point> = Vec::new();
        for w in route.sample(2.0) {
            for ap in report
                .fused
                .iter()
                .filter(|ap| ap.position.distance(w.position) <= self.prefetch_radius)
            {
                if !out
                    .iter()
                    .any(|existing| existing.distance(ap.position) < 1.0)
                {
                    out.push(ap.position);
                }
            }
        }
        Some(out)
    }

    /// Downloads every fused AP within the prefetch radius of the
    /// planned route (sampled every ~2 s of driving), deduplicated —
    /// the §3 "download in advance" step. The result is ready to become
    /// a `crowdwifi_handoff::ApDatabase`.
    pub fn download_for_route(&self, server: &CrowdServer, route: &Trajectory) -> Vec<Point> {
        let mut out: Vec<Point> = Vec::new();
        for w in route.sample(2.0) {
            for ap in server.download(w.position, self.prefetch_radius) {
                if !out
                    .iter()
                    .any(|existing| existing.distance(ap.position) < 1.0)
                {
                    out.push(ap.position);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{SensingUpload, VehicleId};
    use crate::segment::SegmentMap;
    use crowdwifi_core::ApEstimate;
    use crowdwifi_geo::{Rect, Waypoint};

    fn server_with_fused(aps: &[(f64, f64)]) -> CrowdServer {
        let mut server = CrowdServer::new(SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap(),
            250.0,
        ));
        server.register(VehicleId(0));
        server
            .receive_upload(SensingUpload {
                vehicle: VehicleId(0),
                estimates: aps
                    .iter()
                    .map(|&(x, y)| ApEstimate {
                        position: Point::new(x, y),
                        credit: 3.0,
                    })
                    .collect(),
            })
            .unwrap();
        // No labeling round ran: finalize with the default reliability.
        server.finalize(20.0, 0.0);
        server
    }

    fn straight_route() -> Trajectory {
        Trajectory::new(vec![
            Waypoint::new(Point::new(0.0, 100.0), 0.0),
            Waypoint::new(Point::new(900.0, 100.0), 90.0),
        ])
        .unwrap()
    }

    #[test]
    fn downloads_aps_near_route_only() {
        let server = server_with_fused(&[(100.0, 150.0), (500.0, 120.0), (500.0, 900.0)]);
        let user = UserVehicle::new();
        let db = user.download_for_route(&server, &straight_route());
        assert_eq!(db.len(), 2, "got {db:?}");
        assert!(db.iter().all(|p| p.y < 200.0));
    }

    #[test]
    fn dedupes_overlapping_queries() {
        let server = server_with_fused(&[(450.0, 100.0)]);
        let user = UserVehicle::new();
        // Many sample points see the same AP; it must appear once.
        let db = user.download_for_route(&server, &straight_route());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn prefetch_radius_controls_reach() {
        let server = server_with_fused(&[(500.0, 400.0)]); // 300 m off-route
        let narrow = UserVehicle::new().download_for_route(&server, &straight_route());
        assert!(narrow.is_empty());
        let wide = UserVehicle::new()
            .with_prefetch_radius(400.0)
            .download_for_route(&server, &straight_route());
        assert_eq!(wide.len(), 1);
    }

    #[test]
    #[should_panic(expected = "prefetch radius")]
    fn rejects_bad_radius() {
        UserVehicle::new().with_prefetch_radius(0.0);
    }

    fn report_with_health(health: RoundHealth) -> PlatformReport {
        use crate::server::RoundOutcome;
        use crowdwifi_crowd::fusion::FusedAp;
        use std::collections::BTreeMap;
        PlatformReport {
            outcome: RoundOutcome {
                accepted_patterns: Vec::new(),
                reliabilities: BTreeMap::new(),
                converged: true,
            },
            fused: vec![FusedAp {
                position: Point::new(450.0, 100.0),
                support: 2.0,
                contributors: 2,
            }],
            health,
            fates: BTreeMap::new(),
            exits: BTreeMap::new(),
            reassigned_tasks: 0,
            lost_label_slots: 0,
            metrics: crowdwifi_obs::Snapshot::default(),
        }
    }

    #[test]
    fn degraded_policy_gates_report_downloads() {
        let complete = report_with_health(RoundHealth::Complete);
        let degraded = report_with_health(RoundHealth::Degraded);
        let route = straight_route();

        let lenient = UserVehicle::new();
        assert!(lenient.accepts_degraded());
        assert_eq!(
            lenient
                .download_from_report(&complete, &route)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            lenient
                .download_from_report(&degraded, &route)
                .unwrap()
                .len(),
            1
        );

        let strict = UserVehicle::new().with_degraded_policy(false);
        assert!(strict.download_from_report(&complete, &route).is_some());
        assert!(strict.download_from_report(&degraded, &route).is_none());
    }
}
