//! The threaded crowdsourcing platform: server and vehicles as
//! concurrent actors connected by channels (the in-process stand-in for
//! the web platform of §5.5), hardened against unreliable participants.
//!
//! The paper's whole premise is that crowd-vehicles cannot be trusted
//! (§5.3): they spam, they crash, their links drop packets. A round
//! therefore never hinges on any single vehicle. The server enforces a
//! per-vehicle **deadline** with bounded retry/backoff in every
//! collection phase; a vehicle that stays silent past its retries is
//! marked dead, its orphaned mapping tasks are **reassigned** to the
//! least-loaded healthy vehicles (preserving (ℓ,γ)-regularity as
//! closely as the survivors allow), and the round completes in a
//! [`RoundHealth::Degraded`] state as long as a configurable **quorum**
//! of the fleet finished. Dead vehicles are penalized in the
//! reliability prior, so repeat offenders are down-weighted across
//! rounds exactly like vehicles that label badly.
//!
//! Faults are injected — deterministically, from a seeded
//! [`FaultPlan`] — rather than awaited, so every degraded-round path in
//! this module is replayable byte-for-byte in tests.

use crate::fault::{FaultPlan, FaultTally, LinkDirection};
use crate::messages::{MappingTask, ToServer, ToVehicle, VehicleId};
use crate::segment::SegmentMap;
use crate::server::{CrowdServer, RoundOutcome};
use crate::vehicle::{run_protocol, CrowdVehicle, VehicleExit};
use crate::{MiddlewareError, Result};
use crossbeam::channel::{self, RecvTimeoutError};
use crowdwifi_channel::RssReading;
use crowdwifi_crowd::fusion::FusedAp;
use crowdwifi_obs::{EventValue, Registry, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Reliability multiplier applied to vehicles that died mid-round.
const DEAD_RELIABILITY_FACTOR: f64 = 0.5;

/// Fault-tolerance knobs of the round protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTolerance {
    /// How long the server waits for a vehicle's upload or answers
    /// before retrying.
    pub deadline: Duration,
    /// Extra wait added per retry (linear backoff: retry `k` waits
    /// `deadline + k * retry_backoff`).
    pub retry_backoff: Duration,
    /// Retries per vehicle per phase before it is declared dead.
    pub max_retries: u32,
    /// Fraction of the fleet (in `(0, 1]`) that must complete the round
    /// for it to finish — degraded — instead of erroring out with
    /// [`MiddlewareError::QuorumLost`].
    pub quorum: f64,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            deadline: Duration::from_secs(2),
            retry_backoff: Duration::from_millis(250),
            max_retries: 2,
            quorum: 0.5,
        }
    }
}

/// Configuration of one platform round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Bootstrap (random) patterns per active segment.
    pub bootstrap_patterns: usize,
    /// Crowd-vehicles assigned per mapping task.
    pub workers_per_task: usize,
    /// Fusion merge radius in meters.
    pub merge_radius: f64,
    /// Vehicles at or below this inferred reliability are excluded from
    /// fusion.
    pub spammer_cutoff: f64,
    /// Base RNG seed; vehicle `i` uses `seed + i + 1`.
    pub seed: u64,
    /// Deadlines, retries and the completion quorum.
    pub tolerance: FaultTolerance,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            bootstrap_patterns: 2,
            workers_per_task: 5,
            merge_radius: 25.0,
            spammer_cutoff: 0.3,
            seed: 0,
            tolerance: FaultTolerance::default(),
        }
    }
}

/// Checks a [`PlatformConfig`] before any thread is spawned, so bad
/// knobs surface as a typed error instead of a downstream panic or
/// silently nonsensical round.
fn validate_config(config: &PlatformConfig) -> Result<()> {
    let reject = |why: String| Err(MiddlewareError::InvalidConfig(why));
    if config.workers_per_task == 0 {
        return reject("workers_per_task must be at least 1".to_string());
    }
    if !config.spammer_cutoff.is_finite() || !(0.0..=1.0).contains(&config.spammer_cutoff) {
        return reject(format!(
            "spammer_cutoff must lie in [0, 1], got {}",
            config.spammer_cutoff
        ));
    }
    if !config.merge_radius.is_finite() || config.merge_radius <= 0.0 {
        return reject(format!(
            "merge_radius must be positive and finite, got {}",
            config.merge_radius
        ));
    }
    let t = &config.tolerance;
    if t.deadline.is_zero() {
        return reject("tolerance.deadline must be non-zero".to_string());
    }
    if !t.quorum.is_finite() || t.quorum <= 0.0 || t.quorum > 1.0 {
        return reject(format!(
            "tolerance.quorum must lie in (0, 1], got {}",
            t.quorum
        ));
    }
    Ok(())
}

/// Overall health of a finished round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundHealth {
    /// Every vehicle completed on the first try; full coverage.
    Complete,
    /// The round finished, but only after recovery actions: retries,
    /// vehicle deaths, task reassignment, or lost label slots.
    Degraded,
}

/// Protocol phase in which a vehicle was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPhase {
    /// Collecting coarse sensing uploads.
    Upload,
    /// Collecting mapping-task answers.
    Labeling,
}

/// The server-side verdict on one vehicle's round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VehicleFate {
    /// Answered everything it was asked.
    Completed,
    /// Reported its own failure ([`ToServer::Failed`]) with this reason.
    Reported(String),
    /// Went silent and missed its deadline after all retries.
    TimedOut(RoundPhase),
    /// Its thread disconnected (with every other outstanding vehicle)
    /// before responding.
    Vanished(RoundPhase),
}

/// Per-vehicle fate plus how many retries it cost the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FateRecord {
    /// How the server classified the vehicle.
    pub fate: VehicleFate,
    /// Deadline-expiry retries spent on this vehicle (both phases).
    pub retries: u32,
}

/// Result of a full platform round.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// The crowdsourcing outcome (accepted patterns, reliabilities).
    pub outcome: RoundOutcome,
    /// The fused fine-grained AP estimates.
    pub fused: Vec<FusedAp>,
    /// Whether the round needed any recovery action.
    pub health: RoundHealth,
    /// Server-side fate of every vehicle in the fleet.
    pub fates: BTreeMap<VehicleId, FateRecord>,
    /// Vehicle-side exit classification (how each thread ended).
    pub exits: BTreeMap<VehicleId, VehicleExit>,
    /// Mapping tasks moved from dead vehicles to healthy ones.
    pub reassigned_tasks: usize,
    /// Label slots that could not be reassigned (coverage lost against
    /// the intended (ℓ,γ)-regular assignment).
    pub lost_label_slots: usize,
    /// Round metrics: per-phase wall-clock timers, retry / fate /
    /// reassignment counters, observed fault-injection totals, fleet and
    /// quorum gauges, plus a `vehicle.dead` event per casualty. The
    /// [`Snapshot::deterministic`] projection (which drops the
    /// wall-clock timers) is byte-identical across same-seed runs of
    /// the same fleet, config and fault plan.
    pub metrics: Snapshot,
}

impl PlatformReport {
    /// Vehicles the server declared dead this round.
    pub fn dead_vehicles(&self) -> Vec<VehicleId> {
        self.fates
            .iter()
            .filter(|(_, r)| r.fate != VehicleFate::Completed)
            .map(|(&v, _)| v)
            .collect()
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Server-side handle to one vehicle: the (possibly noisy) downlink
/// sender plus a receiver clone that keeps the channel open, so sends
/// to an already-dead vehicle are quietly absorbed instead of erroring.
struct VehicleLink {
    tx: crate::fault::FaultySender<ToVehicle>,
    _keepalive: channel::Receiver<ToVehicle>,
}

/// Minimum vehicles that must finish for a fleet of `n` under `quorum`.
fn quorum_required(n: usize, quorum: f64) -> usize {
    ((quorum * n as f64).ceil() as usize).clamp(1, n)
}

/// Runs one full crowdsensing round with each vehicle on its own
/// (scoped) thread: sense → upload → assignment → labeling → inference
/// → fusion. Equivalent to [`run_round_with_faults`] with no injected
/// faults; real (non-injected) failures are still tolerated the same
/// way.
///
/// # Errors
///
/// Rejects invalid configurations; fails with
/// [`MiddlewareError::QuorumLost`] when too few vehicles survive;
/// propagates assignment and inference failures.
pub fn run_round(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
) -> Result<PlatformReport> {
    run_round_with_faults(segments, fleet, config, &FaultPlan::none())
}

/// [`run_round`] under a deterministic, seeded [`FaultPlan`]: message
/// drops/duplicates/delays on every link and scheduled per-vehicle
/// crashes or stalls. Two runs with the same fleet, config and plan
/// produce identical reports.
///
/// Vehicle threads are spawned under [`std::thread::scope`], so none
/// can outlive the round; each wraps its protocol in `catch_unwind`,
/// reporting panics and estimator errors to the server as
/// [`ToServer::Failed`]. Silent deaths (injected crashes, dropped
/// packets) are caught by the server's per-vehicle deadlines instead —
/// nothing blocks forever.
///
/// # Errors
///
/// As [`run_round`], plus plan validation failures.
pub fn run_round_with_faults(
    segments: SegmentMap,
    mut fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
) -> Result<PlatformReport> {
    validate_config(&config)?;
    plan.validate()?;
    if fleet.is_empty() {
        return Err(MiddlewareError::InvalidConfig("empty fleet".to_string()));
    }
    {
        let mut ids = BTreeSet::new();
        for (vehicle, _) in &fleet {
            if !ids.insert(vehicle.id()) {
                return Err(MiddlewareError::InvalidConfig(format!(
                    "duplicate vehicle id {}",
                    vehicle.id()
                )));
            }
        }
    }

    // The server itself is only touched by this (the protocol) thread;
    // vehicles talk to it exclusively through channels.
    let mut server = CrowdServer::new(segments.clone());
    let (to_server_tx, to_server_rx) = channel::unbounded::<(VehicleId, ToServer)>();

    // Round-local metric registry (embedded into the report at the end)
    // and one shared tally counting the faults the plan actually
    // injected across every link.
    let registry = Registry::new();
    let tally = Arc::new(FaultTally::new());

    // Per-vehicle downlinks. The server sends through the fault layer;
    // a keepalive receiver clone stays in the link so sends to vehicles
    // that already exited are absorbed rather than failing.
    let mut links: BTreeMap<VehicleId, VehicleLink> = BTreeMap::new();
    let mut vehicle_rxs: BTreeMap<VehicleId, channel::Receiver<ToVehicle>> = BTreeMap::new();
    for (vehicle, _) in fleet.iter() {
        let (tx, rx) = channel::unbounded::<ToVehicle>();
        vehicle_rxs.insert(vehicle.id(), rx.clone());
        links.insert(
            vehicle.id(),
            VehicleLink {
                tx: plan.sender_tallied(
                    tx,
                    vehicle.id(),
                    LinkDirection::ToVehicle,
                    Some(Arc::clone(&tally)),
                ),
                _keepalive: rx,
            },
        );
        server.register(vehicle.id());
    }

    let exits: Mutex<BTreeMap<VehicleId, VehicleExit>> = Mutex::new(BTreeMap::new());

    let server_result = std::thread::scope(|scope| {
        for (i, (mut vehicle, readings)) in fleet.drain(..).enumerate() {
            let id = vehicle.id();
            let mut to_server = plan.sender_tallied(
                to_server_tx.clone(),
                id,
                LinkDirection::ToServer,
                Some(Arc::clone(&tally)),
            );
            let rx = vehicle_rxs[&id].clone();
            let script = plan.misbehavior(id);
            let seed = config.seed + i as u64 + 1;
            let segments = &segments;
            let exits = &exits;
            scope.spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_protocol(
                        &mut vehicle,
                        &readings,
                        segments,
                        &mut to_server,
                        &rx,
                        seed,
                        script,
                    )
                }));
                let exit = match outcome {
                    Ok(Ok(exit)) => exit,
                    Ok(Err(e)) => {
                        let reason = e.to_string();
                        // Best-effort: the server may already be gone.
                        let _ = to_server.send((id, ToServer::Failed(reason.clone())));
                        VehicleExit::Failed(reason)
                    }
                    Err(payload) => {
                        let reason = format!("panic: {}", panic_message(payload));
                        let _ = to_server.send((id, ToServer::Failed(reason.clone())));
                        VehicleExit::Failed(reason)
                    }
                };
                exits.lock().expect("exit log lock").insert(id, exit);
            });
        }
        drop(to_server_tx);

        let result = run_server_protocol(&mut server, &to_server_rx, &mut links, config, &registry);
        if let Err(e) = &result {
            // Deliberate abandonment: tell every vehicle why, so their
            // exit logs distinguish "server aborted" from "server
            // vanished".
            let reason = e.to_string();
            for link in links.values_mut() {
                let _ = link.tx.send(ToVehicle::Abort(reason.clone()));
            }
        }
        // Success or failure, release every vehicle before the scope
        // joins: dropping the downlinks turns any blocked `rx.recv()`
        // into a clean disconnect-and-exit.
        drop(links);
        result
    });

    let mut report = server_result?;
    report.exits = exits.into_inner().expect("exit log lock");
    // Fault totals are read only after the scope joins, when every
    // sender (including the uplinks owned by vehicle threads) is done.
    registry
        .counter("platform.faults.dropped")
        .add(tally.dropped());
    registry
        .counter("platform.faults.duplicated")
        .add(tally.duplicated());
    registry
        .counter("platform.faults.delayed")
        .add(tally.delayed());
    report.metrics = registry.snapshot();
    Ok(report)
}

/// Mutable bookkeeping of one round's casualties.
struct RoundLedger {
    fates: BTreeMap<VehicleId, FateRecord>,
    retries: BTreeMap<VehicleId, u32>,
    dead: BTreeSet<VehicleId>,
}

impl RoundLedger {
    fn new() -> Self {
        RoundLedger {
            fates: BTreeMap::new(),
            retries: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    fn retries_of(&self, v: VehicleId) -> u32 {
        self.retries.get(&v).copied().unwrap_or(0)
    }

    /// Declares `v` dead: records its fate and stops assigning it work.
    fn mark_dead(&mut self, server: &mut CrowdServer, v: VehicleId, fate: VehicleFate) {
        self.dead.insert(v);
        server.set_participation(v, false);
        self.fates.insert(
            v,
            FateRecord {
                fate,
                retries: self.retries_of(v),
            },
        );
    }

    fn alive(&self, server: &CrowdServer) -> Vec<VehicleId> {
        server
            .vehicles()
            .iter()
            .copied()
            .filter(|v| !self.dead.contains(v))
            .collect()
    }

    fn check_quorum(&self, server: &CrowdServer, quorum: f64) -> Result<()> {
        let total = server.vehicles().len();
        let alive = total - self.dead.len();
        let required = quorum_required(total, quorum);
        if alive < required {
            return Err(MiddlewareError::QuorumLost {
                alive,
                required,
                total,
            });
        }
        Ok(())
    }
}

/// Short, stable label of a fate for metric names and event fields.
fn fate_label(fate: &VehicleFate) -> &'static str {
    match fate {
        VehicleFate::Completed => "completed",
        VehicleFate::Reported(_) => "reported",
        VehicleFate::TimedOut(_) => "timed_out",
        VehicleFate::Vanished(_) => "vanished",
    }
}

/// The server's side of one round: the four protocol phases, each
/// collection phase guarded by per-vehicle deadlines and timed into
/// `reg` as a `platform.phase.*_seconds` histogram.
fn run_server_protocol(
    server: &mut CrowdServer,
    to_server_rx: &channel::Receiver<(VehicleId, ToServer)>,
    links: &mut BTreeMap<VehicleId, VehicleLink>,
    config: PlatformConfig,
    reg: &Registry,
) -> Result<PlatformReport> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let tolerance = config.tolerance;
    let mut ledger = RoundLedger::new();

    // Phase 1: collect uploads under deadline; silent vehicles are
    // nudged with `RequestUpload` retries, then declared dead.
    let span = reg.timer("platform.phase.upload_seconds").start_span();
    collect_uploads(server, to_server_rx, links, &mut ledger, &tolerance)?;
    span.finish();
    ledger.check_quorum(server, tolerance.quorum)?;

    // Phase 2: generate patterns and assign mapping tasks to survivors.
    let span = reg.timer("platform.phase.assign_seconds").start_span();
    server.generate_patterns(config.bootstrap_patterns, &mut rng);
    let alive = ledger.alive(server);
    let assignments = server.assign_tasks(config.workers_per_task.min(alive.len()), &mut rng)?;
    let mut outstanding: BTreeMap<VehicleId, BTreeSet<usize>> = BTreeMap::new();
    for &v in &alive {
        let tasks = assignments.get(&v).cloned().unwrap_or_default();
        if !tasks.is_empty() {
            outstanding.insert(v, tasks.iter().map(|t| t.task_id).collect());
        }
        let link = links.get_mut(&v).expect("registered vehicle");
        let _ = link.tx.send(ToVehicle::Assign(tasks));
    }
    span.finish();

    // Phase 3: collect answers under deadline; tasks orphaned by a dead
    // vehicle are reassigned to the least-loaded healthy candidates.
    let span = reg.timer("platform.phase.labeling_seconds").start_span();
    let (reassigned_tasks, lost_label_slots) = collect_answers(
        server,
        to_server_rx,
        links,
        &mut ledger,
        &tolerance,
        outstanding,
    )?;
    span.finish();
    ledger.check_quorum(server, tolerance.quorum)?;
    for v in ledger.alive(server) {
        let link = links.get_mut(&v).expect("registered vehicle");
        let _ = link.tx.send(ToVehicle::Done);
    }

    // Phase 4: inference + fusion. Dead vehicles are penalized in the
    // reliability prior before fusion weighs their uploads.
    let span = reg.timer("platform.phase.inference_seconds").start_span();
    let mut outcome = server.infer(&mut rng)?;
    for &v in &ledger.dead {
        let q = server.penalize(v, DEAD_RELIABILITY_FACTOR);
        outcome.reliabilities.insert(v, q);
    }
    let fused = server
        .finalize(config.merge_radius, config.spammer_cutoff)
        .to_vec();
    span.finish();

    let total_retries: u32 = ledger.retries.values().sum();
    let health = if ledger.dead.is_empty()
        && reassigned_tasks == 0
        && lost_label_slots == 0
        && total_retries == 0
    {
        RoundHealth::Complete
    } else {
        RoundHealth::Degraded
    };
    let mut fates = ledger.fates;
    for v in server.vehicles() {
        fates.entry(*v).or_insert_with(|| FateRecord {
            fate: VehicleFate::Completed,
            retries: ledger.retries.get(v).copied().unwrap_or(0),
        });
    }

    // Round bookkeeping metrics. Fates iterate in `VehicleId` order, so
    // the `vehicle.dead` event sequence is deterministic too.
    reg.counter("platform.retries")
        .add(u64::from(total_retries));
    reg.counter("platform.reassigned_tasks")
        .add(reassigned_tasks as u64);
    reg.counter("platform.lost_label_slots")
        .add(lost_label_slots as u64);
    for (v, record) in &fates {
        reg.counter(&format!("platform.fates.{}", fate_label(&record.fate)))
            .inc();
        if record.fate != VehicleFate::Completed {
            reg.event(
                "vehicle.dead",
                &[
                    ("vehicle", EventValue::Uint(u64::from(v.0))),
                    (
                        "fate",
                        EventValue::Str(fate_label(&record.fate).to_string()),
                    ),
                    ("retries", EventValue::Uint(u64::from(record.retries))),
                ],
            );
        }
    }
    let total = server.vehicles().len();
    let alive = total - ledger.dead.len();
    reg.gauge("platform.fleet_size").set(total as i64);
    reg.gauge("platform.dead_vehicles")
        .set(ledger.dead.len() as i64);
    reg.gauge("platform.quorum_margin")
        .set(alive as i64 - quorum_required(total, tolerance.quorum) as i64);

    Ok(PlatformReport {
        outcome,
        fused,
        health,
        fates,
        exits: BTreeMap::new(), // filled by the caller after the scope joins
        reassigned_tasks,
        lost_label_slots,
        metrics: Snapshot::default(), // likewise: faults are tallied after the scope joins
    })
}

/// Phase 1: every vehicle owes one upload. Deadline-expired vehicles
/// get `RequestUpload` retries with linear backoff, then die.
fn collect_uploads(
    server: &mut CrowdServer,
    rx: &channel::Receiver<(VehicleId, ToServer)>,
    links: &mut BTreeMap<VehicleId, VehicleLink>,
    ledger: &mut RoundLedger,
    tolerance: &FaultTolerance,
) -> Result<()> {
    let start = Instant::now();
    let mut waiting: BTreeMap<VehicleId, Instant> = server
        .vehicles()
        .iter()
        .map(|&v| (v, start + tolerance.deadline))
        .collect();
    while !waiting.is_empty() {
        let now = Instant::now();
        let expired: Vec<VehicleId> = waiting
            .iter()
            .filter(|&(_, &d)| d <= now)
            .map(|(&v, _)| v)
            .collect();
        for v in expired {
            let spent = ledger.retries.entry(v).or_insert(0);
            if *spent < tolerance.max_retries {
                *spent += 1;
                let extra = tolerance.retry_backoff * *spent;
                let link = links.get_mut(&v).expect("registered vehicle");
                let _ = link.tx.send(ToVehicle::RequestUpload);
                waiting.insert(v, now + tolerance.deadline + extra);
            } else {
                ledger.mark_dead(server, v, VehicleFate::TimedOut(RoundPhase::Upload));
                waiting.remove(&v);
            }
        }
        if waiting.is_empty() {
            break;
        }
        let next = *waiting.values().min().expect("non-empty waiting set");
        let timeout = next
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match rx.recv_timeout(timeout) {
            Ok((id, msg)) => {
                if ledger.dead.contains(&id) {
                    continue; // late message from a declared-dead vehicle
                }
                match msg {
                    ToServer::Upload(up) => {
                        server.receive_upload(up)?;
                        waiting.remove(&id);
                    }
                    ToServer::Failed(m) => {
                        ledger.mark_dead(server, id, VehicleFate::Reported(m));
                        waiting.remove(&id);
                    }
                    // Answers cannot precede an assignment; a duplicate
                    // or delayed stray is simply ignored.
                    ToServer::Answers(_) => {}
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Every vehicle thread is gone; nobody left to wait for.
                for v in waiting.keys().copied().collect::<Vec<_>>() {
                    ledger.mark_dead(server, v, VehicleFate::Vanished(RoundPhase::Upload));
                }
                waiting.clear();
            }
        }
    }
    Ok(())
}

/// Mutable state of the answer-collection phase, grouped so the
/// reassignment path can be one method instead of a ten-argument
/// function.
struct LabelingState {
    /// Tasks each vehicle still owes, by task id.
    outstanding: BTreeMap<VehicleId, BTreeSet<usize>>,
    /// Per-vehicle response deadline.
    waiting: BTreeMap<VehicleId, Instant>,
    /// (vehicle, task) pairs already answered, so reassignment never
    /// hands a task back to a vehicle whose label is already counted.
    answered: BTreeSet<(VehicleId, usize)>,
    reassigned: usize,
    lost: usize,
}

impl LabelingState {
    /// Moves the orphaned tasks of dead `v` to healthy candidates: for
    /// each orphan, the least-loaded survivor that has neither answered
    /// nor currently holds the task. Unplaceable orphans count as lost
    /// label slots.
    fn reassign_orphans(
        &mut self,
        server: &CrowdServer,
        links: &mut BTreeMap<VehicleId, VehicleLink>,
        ledger: &RoundLedger,
        tolerance: &FaultTolerance,
        v: VehicleId,
    ) {
        let orphans: Vec<usize> = self
            .outstanding
            .remove(&v)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        self.waiting.remove(&v);
        if orphans.is_empty() {
            return;
        }
        let alive = ledger.alive(server);
        let mut batches: BTreeMap<VehicleId, Vec<MappingTask>> = BTreeMap::new();
        // Per-vehicle load = labels already given + labels still owed;
        // picking the min keeps the degraded assignment as close to
        // γ-balanced as the survivors allow.
        let mut load: BTreeMap<VehicleId, usize> = alive
            .iter()
            .map(|&w| {
                let done = self.answered.iter().filter(|&&(aw, _)| aw == w).count();
                let owed = self.outstanding.get(&w).map_or(0, |s| s.len());
                (w, done + owed)
            })
            .collect();
        for task_id in orphans {
            let candidate = alive
                .iter()
                .copied()
                .filter(|&w| {
                    !self.answered.contains(&(w, task_id))
                        && !self
                            .outstanding
                            .get(&w)
                            .is_some_and(|s| s.contains(&task_id))
                })
                .min_by_key(|&w| (load[&w], w.0));
            match candidate {
                Some(w) => {
                    self.outstanding.entry(w).or_default().insert(task_id);
                    *load.get_mut(&w).expect("alive vehicle") += 1;
                    batches.entry(w).or_default().push(MappingTask {
                        task_id,
                        pattern: server.patterns()[task_id].clone(),
                    });
                    self.reassigned += 1;
                }
                // Every survivor already labeled (or holds) this task:
                // the label slot is unrecoverable.
                None => self.lost += 1,
            }
        }
        let now = Instant::now();
        for (w, tasks) in batches {
            let link = links.get_mut(&w).expect("registered vehicle");
            let _ = link.tx.send(ToVehicle::Assign(tasks));
            self.waiting.insert(w, now + tolerance.deadline);
        }
    }
}

/// Phase 3: collect answers for all outstanding tasks. Deadline-expired
/// vehicles are re-sent their outstanding tasks, then die; a dead
/// vehicle's orphans are reassigned to the least-loaded healthy
/// vehicles that have not already labeled them.
fn collect_answers(
    server: &mut CrowdServer,
    rx: &channel::Receiver<(VehicleId, ToServer)>,
    links: &mut BTreeMap<VehicleId, VehicleLink>,
    ledger: &mut RoundLedger,
    tolerance: &FaultTolerance,
    outstanding: BTreeMap<VehicleId, BTreeSet<usize>>,
) -> Result<(usize, usize)> {
    let start = Instant::now();
    let waiting: BTreeMap<VehicleId, Instant> = outstanding
        .keys()
        .map(|&v| (v, start + tolerance.deadline))
        .collect();
    let mut st = LabelingState {
        outstanding,
        waiting,
        answered: BTreeSet::new(),
        reassigned: 0,
        lost: 0,
    };

    while !st.waiting.is_empty() {
        let now = Instant::now();
        let expired: Vec<VehicleId> = st
            .waiting
            .iter()
            .filter(|&(_, &d)| d <= now)
            .map(|(&v, _)| v)
            .collect();
        for v in expired {
            let spent = ledger.retries.entry(v).or_insert(0);
            if *spent < tolerance.max_retries {
                *spent += 1;
                let extra = tolerance.retry_backoff * *spent;
                let tasks: Vec<MappingTask> = st.outstanding[&v]
                    .iter()
                    .map(|&task_id| MappingTask {
                        task_id,
                        pattern: server.patterns()[task_id].clone(),
                    })
                    .collect();
                let link = links.get_mut(&v).expect("registered vehicle");
                let _ = link.tx.send(ToVehicle::Assign(tasks));
                st.waiting.insert(v, now + tolerance.deadline + extra);
            } else {
                ledger.mark_dead(server, v, VehicleFate::TimedOut(RoundPhase::Labeling));
                st.reassign_orphans(server, links, ledger, tolerance, v);
            }
        }
        if st.waiting.is_empty() {
            break;
        }
        let next = *st.waiting.values().min().expect("non-empty waiting set");
        let timeout = next
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match rx.recv_timeout(timeout) {
            Ok((id, msg)) => {
                if ledger.dead.contains(&id) {
                    continue;
                }
                match msg {
                    ToServer::Answers(batch) => {
                        let Some(owed) = st.outstanding.get_mut(&id) else {
                            continue; // task-less vehicle or duplicate batch
                        };
                        let mut fresh = Vec::with_capacity(batch.len());
                        for a in batch {
                            if a.vehicle == id && owed.remove(&a.task_id) {
                                st.answered.insert((id, a.task_id));
                                fresh.push(a);
                            }
                        }
                        server.receive_answers(fresh);
                        if owed.is_empty() {
                            st.outstanding.remove(&id);
                            st.waiting.remove(&id);
                        }
                    }
                    ToServer::Failed(m) => {
                        ledger.mark_dead(server, id, VehicleFate::Reported(m));
                        st.reassign_orphans(server, links, ledger, tolerance, id);
                    }
                    // A delayed or re-requested upload arriving late;
                    // the first copy already counted.
                    ToServer::Upload(_) => {}
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                for v in st.waiting.keys().copied().collect::<Vec<_>>() {
                    ledger.mark_dead(server, v, VehicleFate::Vanished(RoundPhase::Labeling));
                    st.reassign_orphans(server, links, ledger, tolerance, v);
                }
            }
        }
    }
    Ok((st.reassigned, st.lost))
}

/// Runs several crowdsourcing rounds back-to-back with reliability
/// smoothing: each round re-senses (fleet drives are per-round),
/// re-labels and re-infers; the server's per-vehicle reliability is the
/// EMA across rounds, so a spammer cannot whitewash itself with one
/// lucky round — and a vehicle that keeps dying mid-round is
/// down-weighted the same way.
///
/// `rounds` pairs each round with its fleet (vehicle, drive) list; all
/// rounds share one server.
///
/// # Errors
///
/// Propagates single-round failures; requires at least one round.
pub fn run_campaign(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
) -> Result<Vec<PlatformReport>> {
    run_campaign_with_faults(segments, rounds, config, smoothing, &[])
}

/// [`run_campaign`] with a per-round [`FaultPlan`] schedule: round `i`
/// runs under `plans[i]` (or no faults when `plans` is shorter).
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_with_faults(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
) -> Result<Vec<PlatformReport>> {
    if rounds.is_empty() {
        return Err(MiddlewareError::InvalidConfig("no rounds".to_string()));
    }
    let none = FaultPlan::none();
    // The shared server lives across rounds; each round otherwise runs
    // the standard protocol. (`run_round` owns its server, so the
    // campaign re-applies the EMA manually from round to round.)
    let mut reports: Vec<PlatformReport> = Vec::new();
    let mut long_run: BTreeMap<VehicleId, f64> = BTreeMap::new();
    for (i, fleet) in rounds.into_iter().enumerate() {
        let round_config = PlatformConfig {
            seed: config.seed + i as u64 * 1000,
            ..config
        };
        let plan = plans.get(i).unwrap_or(&none);
        let mut report = run_round_with_faults(segments.clone(), fleet, round_config, plan)?;
        for (vehicle, q) in report.outcome.reliabilities.iter_mut() {
            let prev = long_run.get(vehicle).copied().unwrap_or(0.5);
            *q = smoothing * *q + (1.0 - smoothing) * prev;
            long_run.insert(*vehicle, *q);
        }
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPoint;
    use crate::vehicle::Behavior;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_core::{OnlineCs, OnlineCsConfig};
    use crowdwifi_geo::{Point, Rect};

    /// Fading-free staggered drive past two APs.
    fn drive(offset: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
        (0..50)
            .map(|i| {
                let p = Point::new(
                    6.0 * i as f64,
                    offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        )
    }

    fn mk_estimator() -> OnlineCs {
        OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
    }

    fn fleet_with_spammer(n: u32, spammer: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
        (0..n)
            .map(|v| {
                let behavior = if v == spammer {
                    Behavior::Spammer
                } else {
                    Behavior::Honest
                };
                (
                    CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                    drive(v as f64 * 0.5),
                )
            })
            .collect()
    }

    /// One retry with a short backoff, so fault-path tests pay at most
    /// two deadlines per dead vehicle. The deadline itself stays at the
    /// 2 s default: five concurrent estimator runs take about a second
    /// on a single-core box, and healthy vehicles must never miss it.
    fn snappy_tolerance() -> FaultTolerance {
        FaultTolerance {
            retry_backoff: Duration::from_millis(100),
            max_retries: 1,
            ..FaultTolerance::default()
        }
    }

    #[test]
    fn full_round_with_spammers_converges_to_truth() {
        let report = run_round(
            segments(),
            fleet_with_spammer(5, 4),
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Complete);
        assert!(report.dead_vehicles().is_empty());
        for fate in report.fates.values() {
            assert_eq!(
                *fate,
                FateRecord {
                    fate: VehicleFate::Completed,
                    retries: 0
                }
            );
        }
        for exit in report.exits.values() {
            assert_eq!(*exit, VehicleExit::Completed);
        }
        // Both APs recovered by the fused database.
        for truth in [Point::new(60.0, 30.0), Point::new(220.0, 30.0)] {
            let d = report
                .fused
                .iter()
                .map(|f| f.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 20.0, "AP {truth} unmatched in fusion ({d:.1} m)");
        }
        // The spammer's reliability must not exceed every honest one.
        let spam = report.outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| report.outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            spam <= best_honest,
            "spammer {spam:.2} outranked honest {best_honest:.2}"
        );
    }

    #[test]
    fn campaign_reliability_is_smoothed_across_rounds() {
        let reports = run_campaign(
            segments(),
            vec![fleet_with_spammer(5, 4), fleet_with_spammer(5, 4)],
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
            0.5,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        // With α = 0.5 from a 0.5 prior, round-1 reliabilities stay
        // within 0.25 of the prior; round 2 can move further.
        for &q in reports[0].outcome.reliabilities.values() {
            assert!((q - 0.5).abs() <= 0.25 + 1e-9, "round 1 moved too far: {q}");
        }
        // The spammer's long-run reliability never exceeds the honest max.
        let spam = reports[1].outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| reports[1].outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(spam <= best_honest + 1e-9);
    }

    #[test]
    fn failing_vehicle_degrades_round_instead_of_aborting() {
        let mut fleet = fleet_with_spammer(3, u32::MAX);
        // Poison one vehicle's drive: NaN coordinates blow up its
        // estimator mid-sense. The vehicle reports `Failed`; the round
        // must finish degraded on the two survivors instead of erroring
        // out (pre-fault-tolerance) or deadlocking (pre-scoped-threads).
        for r in fleet[1].1.iter_mut() {
            *r = RssReading::new(Point::new(f64::NAN, f64::NAN), r.rss_dbm, r.time);
        }
        let report = run_round(segments(), fleet, PlatformConfig::default()).unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(1)]);
        let fate = &report.fates[&VehicleId(1)].fate;
        assert!(
            matches!(fate, VehicleFate::Reported(m) if !m.is_empty()),
            "unexpected fate {fate:?}"
        );
        assert!(
            matches!(&report.exits[&VehicleId(1)], VehicleExit::Failed(_)),
            "unexpected exit {:?}",
            report.exits[&VehicleId(1)]
        );
        // The dead vehicle is penalized below the neutral prior.
        assert!(report.outcome.reliabilities[&VehicleId(1)] < 0.5);
        for f in &report.fused {
            assert!(f.position.is_finite());
        }
    }

    #[test]
    fn quorum_loss_aborts_the_round() {
        let mut fleet = fleet_with_spammer(3, u32::MAX);
        for idx in [0, 1] {
            for r in fleet[idx].1.iter_mut() {
                *r = RssReading::new(Point::new(f64::NAN, f64::NAN), r.rss_dbm, r.time);
            }
        }
        // 1 of 3 survivors < ceil(0.5 * 3) = 2 required.
        let err = run_round(segments(), fleet, PlatformConfig::default()).unwrap_err();
        assert_eq!(
            err,
            MiddlewareError::QuorumLost {
                alive: 1,
                required: 2,
                total: 3
            }
        );
    }

    #[test]
    fn crashed_vehicle_times_out_and_round_degrades() {
        let plan = FaultPlan::none().crash(VehicleId(2), FaultPoint::Upload);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(4, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(2)]);
        let record = &report.fates[&VehicleId(2)];
        assert_eq!(record.fate, VehicleFate::TimedOut(RoundPhase::Upload));
        assert_eq!(record.retries, 1, "one RequestUpload retry before death");
        assert_eq!(report.exits[&VehicleId(2)], VehicleExit::Crashed);
        assert!(report.outcome.reliabilities[&VehicleId(2)] < 0.5);
    }

    #[test]
    fn straggler_tasks_are_reassigned() {
        let plan = FaultPlan::none().stall(VehicleId(1), FaultPoint::Answer);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(5, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(1)]);
        assert_eq!(
            report.fates[&VehicleId(1)].fate,
            VehicleFate::TimedOut(RoundPhase::Labeling)
        );
        assert_eq!(report.exits[&VehicleId(1)], VehicleExit::Stalled);
        // The straggler uploaded and was assigned tasks; with two spare
        // vehicles per task every orphan finds a new home.
        assert!(report.reassigned_tasks > 0, "no tasks were reassigned");
        assert_eq!(report.lost_label_slots, 0);
    }

    #[test]
    fn metrics_snapshot_is_byte_identical_across_same_seed_runs() {
        let run = || {
            run_round(
                segments(),
                fleet_with_spammer(3, u32::MAX),
                PlatformConfig {
                    workers_per_task: 3,
                    ..PlatformConfig::default()
                },
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        // Wall-clock phase timers differ run to run; everything else —
        // counters, gauges, events — must not.
        let (ja, jb) = (
            a.metrics.deterministic().to_json(),
            b.metrics.deterministic().to_json(),
        );
        assert_eq!(
            ja, jb,
            "deterministic metrics diverged across same-seed runs"
        );

        let m = &a.metrics;
        assert_eq!(m.counters["platform.fates.completed"], 3);
        assert_eq!(m.counters["platform.retries"], 0);
        assert_eq!(m.counters["platform.faults.dropped"], 0);
        assert_eq!(m.counters["platform.faults.duplicated"], 0);
        assert_eq!(m.counters["platform.faults.delayed"], 0);
        assert_eq!(m.gauges["platform.fleet_size"], 3);
        assert_eq!(m.gauges["platform.dead_vehicles"], 0);
        assert_eq!(m.gauges["platform.quorum_margin"], 1); // 3 alive - ceil(0.5*3)
        assert!(
            m.events.is_empty(),
            "healthy round must emit no death events"
        );
        // All four phases were timed (present in the full snapshot,
        // stripped from the deterministic projection).
        for phase in ["upload", "assign", "labeling", "inference"] {
            let name = format!("platform.phase.{phase}_seconds");
            assert_eq!(m.histograms[&name].count, 1, "{name} not timed");
            assert!(!a.metrics.deterministic().histograms.contains_key(&name));
        }
    }

    #[test]
    fn dead_vehicle_shows_up_in_round_metrics() {
        let plan = FaultPlan::none().crash(VehicleId(2), FaultPoint::Upload);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(4, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        let m = &report.metrics;
        assert_eq!(m.counters["platform.fates.timed_out"], 1);
        assert_eq!(m.counters["platform.fates.completed"], 3);
        assert_eq!(m.counters["platform.retries"], 1);
        assert_eq!(m.gauges["platform.dead_vehicles"], 1);
        let ev = m
            .events
            .iter()
            .find(|e| e.name == "vehicle.dead")
            .expect("death event");
        assert!(ev
            .fields
            .iter()
            .any(|(k, v)| k == "vehicle" && *v == crowdwifi_obs::EventValue::Uint(2)));
    }

    #[test]
    fn injected_link_faults_are_tallied_in_metrics() {
        // Duplicate-only noise: the protocol ignores duplicates, so the
        // round still completes cleanly while the tally observes them.
        let plan = FaultPlan::noisy(5, 0.0, 0.5, 0.0);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(3, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Complete);
        let m = &report.metrics;
        assert!(m.counters["platform.faults.duplicated"] > 0);
        assert_eq!(m.counters["platform.faults.dropped"], 0);
        assert_eq!(m.counters["platform.faults.delayed"], 0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let base = PlatformConfig::default();
        let cases = [
            PlatformConfig {
                workers_per_task: 0,
                ..base
            },
            PlatformConfig {
                spammer_cutoff: 1.5,
                ..base
            },
            PlatformConfig {
                spammer_cutoff: f64::NAN,
                ..base
            },
            PlatformConfig {
                merge_radius: 0.0,
                ..base
            },
            PlatformConfig {
                merge_radius: f64::INFINITY,
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    quorum: 0.0,
                    ..base.tolerance
                },
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    quorum: 1.1,
                    ..base.tolerance
                },
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    deadline: Duration::ZERO,
                    ..base.tolerance
                },
                ..base
            },
        ];
        for bad in cases {
            let err = run_round(segments(), fleet_with_spammer(3, u32::MAX), bad).unwrap_err();
            assert!(
                matches!(err, MiddlewareError::InvalidConfig(_)),
                "expected InvalidConfig for {bad:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_vehicle_ids_rejected() {
        let fleet = vec![
            (
                CrowdVehicle::new(VehicleId(1), mk_estimator(), Behavior::Honest),
                drive(0.0),
            ),
            (
                CrowdVehicle::new(VehicleId(1), mk_estimator(), Behavior::Honest),
                drive(0.5),
            ),
        ];
        assert!(matches!(
            run_round(segments(), fleet, PlatformConfig::default()),
            Err(MiddlewareError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_fleet_rejected() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap(),
            10.0,
        );
        assert!(run_round(segments, vec![], PlatformConfig::default()).is_err());
    }

    #[test]
    fn quorum_required_covers_edges() {
        assert_eq!(quorum_required(3, 0.5), 2);
        assert_eq!(quorum_required(4, 0.5), 2);
        assert_eq!(quorum_required(5, 1.0), 5);
        assert_eq!(quorum_required(5, 0.01), 1);
        assert_eq!(quorum_required(1, 0.5), 1);
    }
}
