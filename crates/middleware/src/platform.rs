//! The crowdsourcing platform façade: the original one-call API over
//! the layered [`crate::protocol`] / [`crate::transport`] stack.
//!
//! The paper's whole premise is that crowd-vehicles cannot be trusted
//! (§5.3): they spam, they crash, their links drop packets. A round
//! therefore never hinges on any single vehicle. The server enforces a
//! per-vehicle **deadline** with bounded retry/backoff in every
//! collection phase; a vehicle that stays silent past its retries is
//! marked dead, its orphaned mapping tasks are **reassigned** to the
//! least-loaded healthy vehicles (preserving (ℓ,γ)-regularity as
//! closely as the survivors allow), and the round completes in a
//! [`RoundHealth::Degraded`] state as long as a configurable **quorum**
//! of the fleet finished. Dead vehicles are penalized in the
//! reliability prior, so repeat offenders are down-weighted across
//! rounds exactly like vehicles that label badly.
//!
//! Faults are injected — deterministically, from a seeded
//! [`FaultPlan`] — rather than awaited, so every degraded-round path is
//! replayable byte-for-byte in tests.
//!
//! All of that logic now lives in the pure [`crate::protocol::ServerCore`]
//! state machine; this module re-exports the round/report types from
//! [`crate::protocol`] and runs rounds on the concurrent
//! [`ThreadTransport`] — the in-process stand-in for the web platform of
//! §5.5. To pick a backend explicitly (e.g. the deterministic
//! [`crate::transport::SimTransport`]), use the [`crate::transport`] API
//! directly.

pub use crate::protocol::{
    quorum_required, validate_config, FateRecord, FaultTolerance, PlatformConfig, PlatformReport,
    RoundHealth, RoundPhase, VehicleFate,
};

use crate::fault::FaultPlan;
use crate::segment::SegmentMap;
use crate::transport::{run_campaign_with_faults_on, ThreadTransport, Transport};
use crate::vehicle::CrowdVehicle;
use crate::Result;
use crowdwifi_channel::RssReading;

/// Runs one crowdsensing round on the threaded backend: sense/upload,
/// pattern generation, task assignment, labeling, truth inference and
/// fusion, with the fault-tolerance machinery described in the module
/// docs.
///
/// # Errors
///
/// Rejects invalid configurations; fails with
/// [`crate::MiddlewareError::QuorumLost`] when too few vehicles survive;
/// propagates assignment and inference failures.
pub fn run_round(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
) -> Result<PlatformReport> {
    ThreadTransport.run_round(segments, fleet, config)
}

/// [`run_round`] under a deterministic [`FaultPlan`]: scheduled vehicle
/// crashes/stalls plus seeded link noise.
///
/// # Errors
///
/// As [`run_round`]; additionally rejects invalid fault plans.
pub fn run_round_with_faults(
    segments: SegmentMap,
    fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
    plan: &FaultPlan,
) -> Result<PlatformReport> {
    ThreadTransport.run_round_with_faults(segments, fleet, config, plan)
}

/// Runs several crowdsourcing rounds back-to-back with reliability
/// smoothing: each round re-senses, re-labels and re-infers; the
/// reported per-vehicle reliability is an exponential moving average
/// across rounds (`smoothing` weighs the newest round), so a spammer
/// cannot whitewash itself with one lucky round.
///
/// # Errors
///
/// Propagates single-round failures; requires at least one round.
pub fn run_campaign(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
) -> Result<Vec<PlatformReport>> {
    run_campaign_with_faults(segments, rounds, config, smoothing, &[])
}

/// [`run_campaign`] with a per-round [`FaultPlan`] schedule: round `i`
/// runs under `plans[i]` (or no faults when `plans` is shorter).
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_with_faults(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
    plans: &[FaultPlan],
) -> Result<Vec<PlatformReport>> {
    run_campaign_with_faults_on(&ThreadTransport, segments, rounds, config, smoothing, plans)
        .map(|outcome| outcome.reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPoint;
    use crate::messages::VehicleId;
    use crate::vehicle::{Behavior, VehicleExit};
    use crate::MiddlewareError;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_core::{OnlineCs, OnlineCsConfig};
    use crowdwifi_geo::{Point, Rect};
    use std::time::Duration;

    /// Fading-free staggered drive past two APs.
    fn drive(offset: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
        (0..50)
            .map(|i| {
                let p = Point::new(
                    6.0 * i as f64,
                    offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        )
    }

    fn mk_estimator() -> OnlineCs {
        OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
    }

    fn fleet_with_spammer(n: u32, spammer: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
        (0..n)
            .map(|v| {
                let behavior = if v == spammer {
                    Behavior::Spammer
                } else {
                    Behavior::Honest
                };
                (
                    CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                    drive(v as f64 * 0.5),
                )
            })
            .collect()
    }

    /// One retry with a short backoff, so fault-path tests pay at most
    /// two deadlines per dead vehicle. The deadline itself stays at the
    /// 2 s default: five concurrent estimator runs take about a second
    /// on a single-core box, and healthy vehicles must never miss it.
    fn snappy_tolerance() -> FaultTolerance {
        FaultTolerance {
            retry_backoff: Duration::from_millis(100),
            max_retries: 1,
            ..FaultTolerance::default()
        }
    }

    #[test]
    fn full_round_with_spammers_converges_to_truth() {
        let report = run_round(
            segments(),
            fleet_with_spammer(5, 4),
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Complete);
        assert!(report.dead_vehicles().is_empty());
        for fate in report.fates.values() {
            assert_eq!(
                *fate,
                FateRecord {
                    fate: VehicleFate::Completed,
                    retries: 0
                }
            );
        }
        for exit in report.exits.values() {
            assert_eq!(*exit, VehicleExit::Completed);
        }
        // Both APs recovered by the fused database.
        for truth in [Point::new(60.0, 30.0), Point::new(220.0, 30.0)] {
            let d = report
                .fused
                .iter()
                .map(|f| f.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 20.0, "AP {truth} unmatched in fusion ({d:.1} m)");
        }
        // The spammer's reliability must not exceed every honest one.
        let spam = report.outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| report.outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            spam <= best_honest,
            "spammer {spam:.2} outranked honest {best_honest:.2}"
        );
    }

    #[test]
    fn campaign_reliability_is_smoothed_across_rounds() {
        let reports = run_campaign(
            segments(),
            vec![fleet_with_spammer(5, 4), fleet_with_spammer(5, 4)],
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
            0.5,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        // With α = 0.5 from a 0.5 prior, round-1 reliabilities stay
        // within 0.25 of the prior; round 2 can move further.
        for &q in reports[0].outcome.reliabilities.values() {
            assert!((q - 0.5).abs() <= 0.25 + 1e-9, "round 1 moved too far: {q}");
        }
        // The spammer's long-run reliability never exceeds the honest max.
        let spam = reports[1].outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| reports[1].outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(spam <= best_honest + 1e-9);
    }

    #[test]
    fn failing_vehicle_degrades_round_instead_of_aborting() {
        let mut fleet = fleet_with_spammer(3, u32::MAX);
        // Poison one vehicle's drive: NaN coordinates blow up its
        // estimator mid-sense. The vehicle reports `Failed`; the round
        // must finish degraded on the two survivors instead of erroring
        // out (pre-fault-tolerance) or deadlocking (pre-scoped-threads).
        for r in fleet[1].1.iter_mut() {
            *r = RssReading::new(Point::new(f64::NAN, f64::NAN), r.rss_dbm, r.time);
        }
        let report = run_round(segments(), fleet, PlatformConfig::default()).unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(1)]);
        let fate = &report.fates[&VehicleId(1)].fate;
        assert!(
            matches!(fate, VehicleFate::Reported(m) if !m.is_empty()),
            "unexpected fate {fate:?}"
        );
        assert!(
            matches!(&report.exits[&VehicleId(1)], VehicleExit::Failed(_)),
            "unexpected exit {:?}",
            report.exits[&VehicleId(1)]
        );
        // The dead vehicle is penalized below the neutral prior.
        assert!(report.outcome.reliabilities[&VehicleId(1)] < 0.5);
        for f in &report.fused {
            assert!(f.position.is_finite());
        }
    }

    #[test]
    fn quorum_loss_aborts_the_round() {
        let mut fleet = fleet_with_spammer(3, u32::MAX);
        for idx in [0, 1] {
            for r in fleet[idx].1.iter_mut() {
                *r = RssReading::new(Point::new(f64::NAN, f64::NAN), r.rss_dbm, r.time);
            }
        }
        // 1 of 3 survivors < ceil(0.5 * 3) = 2 required.
        let err = run_round(segments(), fleet, PlatformConfig::default()).unwrap_err();
        assert_eq!(
            err,
            MiddlewareError::QuorumLost {
                alive: 1,
                required: 2,
                total: 3
            }
        );
    }

    #[test]
    fn crashed_vehicle_times_out_and_round_degrades() {
        let plan = FaultPlan::none().crash(VehicleId(2), FaultPoint::Upload);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(4, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(2)]);
        let record = &report.fates[&VehicleId(2)];
        assert_eq!(record.fate, VehicleFate::TimedOut(RoundPhase::Upload));
        assert_eq!(record.retries, 1, "one RequestUpload retry before death");
        assert_eq!(report.exits[&VehicleId(2)], VehicleExit::Crashed);
        assert!(report.outcome.reliabilities[&VehicleId(2)] < 0.5);
    }

    #[test]
    fn straggler_tasks_are_reassigned() {
        let plan = FaultPlan::none().stall(VehicleId(1), FaultPoint::Answer);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(5, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Degraded);
        assert_eq!(report.dead_vehicles(), vec![VehicleId(1)]);
        assert_eq!(
            report.fates[&VehicleId(1)].fate,
            VehicleFate::TimedOut(RoundPhase::Labeling)
        );
        assert_eq!(report.exits[&VehicleId(1)], VehicleExit::Stalled);
        // The straggler uploaded and was assigned tasks; with two spare
        // vehicles per task every orphan finds a new home.
        assert!(report.reassigned_tasks > 0, "no tasks were reassigned");
        assert_eq!(report.lost_label_slots, 0);
    }

    #[test]
    fn metrics_snapshot_is_byte_identical_across_same_seed_runs() {
        let run = || {
            run_round(
                segments(),
                fleet_with_spammer(3, u32::MAX),
                PlatformConfig {
                    workers_per_task: 3,
                    ..PlatformConfig::default()
                },
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        // Wall-clock phase timers differ run to run; everything else —
        // counters, gauges, events — must not.
        let (ja, jb) = (
            a.metrics.deterministic().to_json(),
            b.metrics.deterministic().to_json(),
        );
        assert_eq!(
            ja, jb,
            "deterministic metrics diverged across same-seed runs"
        );

        let m = &a.metrics;
        assert_eq!(m.counters["platform.fates.completed"], 3);
        assert_eq!(m.counters["platform.retries"], 0);
        assert_eq!(m.counters["platform.faults.dropped"], 0);
        assert_eq!(m.counters["platform.faults.duplicated"], 0);
        assert_eq!(m.counters["platform.faults.delayed"], 0);
        assert_eq!(m.gauges["platform.fleet_size"], 3);
        assert_eq!(m.gauges["platform.dead_vehicles"], 0);
        assert_eq!(m.gauges["platform.quorum_margin"], 1); // 3 alive - ceil(0.5*3)
        assert!(
            m.events.is_empty(),
            "healthy round must emit no death events"
        );
        // All four phases were timed (present in the full snapshot,
        // stripped from the deterministic projection).
        for phase in ["upload", "assign", "labeling", "inference"] {
            let name = format!("platform.phase.{phase}_seconds");
            assert_eq!(m.histograms[&name].count, 1, "{name} not timed");
            assert!(!a.metrics.deterministic().histograms.contains_key(&name));
        }
    }

    #[test]
    fn dead_vehicle_shows_up_in_round_metrics() {
        let plan = FaultPlan::none().crash(VehicleId(2), FaultPoint::Upload);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(4, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                tolerance: snappy_tolerance(),
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        let m = &report.metrics;
        assert_eq!(m.counters["platform.fates.timed_out"], 1);
        assert_eq!(m.counters["platform.fates.completed"], 3);
        assert_eq!(m.counters["platform.retries"], 1);
        assert_eq!(m.gauges["platform.dead_vehicles"], 1);
        let ev = m
            .events
            .iter()
            .find(|e| e.name == "vehicle.dead")
            .expect("death event");
        assert!(ev
            .fields
            .iter()
            .any(|(k, v)| k == "vehicle" && *v == crowdwifi_obs::EventValue::Uint(2)));
    }

    #[test]
    fn injected_link_faults_are_tallied_in_metrics() {
        // Duplicate-only noise: the protocol ignores duplicates, so the
        // round still completes cleanly while the tally observes them.
        let plan = FaultPlan::noisy(5, 0.0, 0.5, 0.0);
        let report = run_round_with_faults(
            segments(),
            fleet_with_spammer(3, u32::MAX),
            PlatformConfig {
                workers_per_task: 3,
                ..PlatformConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert_eq!(report.health, RoundHealth::Complete);
        let m = &report.metrics;
        assert!(m.counters["platform.faults.duplicated"] > 0);
        assert_eq!(m.counters["platform.faults.dropped"], 0);
        assert_eq!(m.counters["platform.faults.delayed"], 0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let base = PlatformConfig::default();
        let cases = [
            PlatformConfig {
                workers_per_task: 0,
                ..base
            },
            PlatformConfig {
                spammer_cutoff: 1.5,
                ..base
            },
            PlatformConfig {
                spammer_cutoff: f64::NAN,
                ..base
            },
            PlatformConfig {
                merge_radius: 0.0,
                ..base
            },
            PlatformConfig {
                merge_radius: f64::INFINITY,
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    quorum: 0.0,
                    ..base.tolerance
                },
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    quorum: 1.1,
                    ..base.tolerance
                },
                ..base
            },
            PlatformConfig {
                tolerance: FaultTolerance {
                    deadline: Duration::ZERO,
                    ..base.tolerance
                },
                ..base
            },
        ];
        for bad in cases {
            let err = run_round(segments(), fleet_with_spammer(3, u32::MAX), bad).unwrap_err();
            assert!(
                matches!(err, MiddlewareError::InvalidConfig(_)),
                "expected InvalidConfig for {bad:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_vehicle_ids_rejected() {
        let fleet = vec![
            (
                CrowdVehicle::new(VehicleId(1), mk_estimator(), Behavior::Honest),
                drive(0.0),
            ),
            (
                CrowdVehicle::new(VehicleId(1), mk_estimator(), Behavior::Honest),
                drive(0.5),
            ),
        ];
        assert!(matches!(
            run_round(segments(), fleet, PlatformConfig::default()),
            Err(MiddlewareError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_fleet_rejected() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap(),
            10.0,
        );
        assert!(run_round(segments, vec![], PlatformConfig::default()).is_err());
    }
}
