//! The threaded crowdsourcing platform: server and vehicles as
//! concurrent actors connected by channels (the in-process stand-in for
//! the web platform of §5.5).

use crate::messages::{ToServer, ToVehicle, VehicleId};
use crate::segment::SegmentMap;
use crate::server::{CrowdServer, RoundOutcome};
use crate::vehicle::CrowdVehicle;
use crate::{MiddlewareError, Result};
use crossbeam::channel;
use crowdwifi_channel::RssReading;
use crowdwifi_crowd::fusion::FusedAp;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Configuration of one platform round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Bootstrap (random) patterns per active segment.
    pub bootstrap_patterns: usize,
    /// Crowd-vehicles assigned per mapping task.
    pub workers_per_task: usize,
    /// Fusion merge radius in meters.
    pub merge_radius: f64,
    /// Vehicles at or below this inferred reliability are excluded from
    /// fusion.
    pub spammer_cutoff: f64,
    /// Base RNG seed; vehicle `i` uses `seed + i + 1`.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            bootstrap_patterns: 2,
            workers_per_task: 5,
            merge_radius: 25.0,
            spammer_cutoff: 0.3,
            seed: 0,
        }
    }
}

/// Result of a full platform round.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// The crowdsourcing outcome (accepted patterns, reliabilities).
    pub outcome: RoundOutcome,
    /// The fused fine-grained AP estimates.
    pub fused: Vec<FusedAp>,
}

/// Runs one full crowdsensing round with each vehicle on its own
/// thread: sense → upload → assignment → labeling → inference → fusion.
///
/// `drives` pairs each vehicle with the RSS readings of its drive.
///
/// # Errors
///
/// Propagates estimator, assignment and inference failures; panics in
/// vehicle threads are converted into [`MiddlewareError::Estimator`].
pub fn run_round(
    segments: SegmentMap,
    mut fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
) -> Result<PlatformReport> {
    if fleet.is_empty() {
        return Err(MiddlewareError::InvalidConfig("empty fleet".to_string()));
    }
    let server = Arc::new(Mutex::new(CrowdServer::new(segments.clone())));
    let (to_server_tx, to_server_rx) = channel::unbounded::<(VehicleId, ToServer)>();

    // Per-vehicle channels for assignments.
    let mut vehicle_txs = std::collections::BTreeMap::new();
    let mut handles = Vec::new();
    for (vehicle, _) in fleet.iter() {
        let (tx, rx) = channel::unbounded::<ToVehicle>();
        vehicle_txs.insert(vehicle.id(), (tx, rx));
    }
    {
        let mut guard = server.lock();
        for (vehicle, _) in fleet.iter() {
            guard.register(vehicle.id());
        }
    }

    // Spawn vehicle threads: sense + upload, then answer assignments.
    for (i, (mut vehicle, readings)) in fleet.drain(..).enumerate() {
        let to_server = to_server_tx.clone();
        let rx = vehicle_txs[&vehicle.id()].1.clone();
        let segments = segments.clone();
        let seed = config.seed + i as u64 + 1;
        handles.push(std::thread::spawn(move || -> Result<()> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            vehicle.sense(&readings)?;
            to_server
                .send((vehicle.id(), ToServer::Upload(vehicle.upload())))
                .expect("server receiver alive");
            // Wait for the assignment, answer, then exit on Done.
            loop {
                match rx.recv().expect("server sender alive") {
                    ToVehicle::Assign(tasks) => {
                        let answers = tasks
                            .iter()
                            .map(|t| vehicle.answer(t, &segments, &mut rng))
                            .collect();
                        to_server
                            .send((vehicle.id(), ToServer::Answers(answers)))
                            .expect("server receiver alive");
                    }
                    ToVehicle::Done => return Ok(()),
                }
            }
        }));
    }
    drop(to_server_tx);

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n_vehicles = vehicle_txs.len();

    // Phase 1: collect all uploads.
    let mut uploads_received = 0;
    let mut pending = Vec::new();
    while uploads_received < n_vehicles {
        let (id, msg) = to_server_rx
            .recv()
            .map_err(|_| MiddlewareError::Estimator("vehicle thread died".to_string()))?;
        match msg {
            ToServer::Upload(up) => {
                server.lock().receive_upload(up)?;
                uploads_received += 1;
            }
            other => pending.push((id, other)),
        }
    }

    // Phase 2: generate patterns and assign mapping tasks.
    let assignments = {
        let mut guard = server.lock();
        guard.generate_patterns(config.bootstrap_patterns, &mut rng);
        guard.assign_tasks(config.workers_per_task.min(n_vehicles), &mut rng)?
    };
    let mut expecting_answers = 0;
    for (&id, (tx, _)) in &vehicle_txs {
        let tasks = assignments.get(&id).cloned().unwrap_or_default();
        if !tasks.is_empty() {
            expecting_answers += 1;
        }
        tx.send(ToVehicle::Assign(tasks)).expect("vehicle alive");
    }

    // Phase 3: collect answers.
    let mut answered = 0;
    for (_, msg) in pending {
        if let ToServer::Answers(ans) = msg {
            if !ans.is_empty() {
                answered += 1;
            }
            server.lock().receive_answers(ans);
        }
    }
    while answered < expecting_answers {
        let (_, msg) = to_server_rx
            .recv()
            .map_err(|_| MiddlewareError::Estimator("vehicle thread died".to_string()))?;
        if let ToServer::Answers(ans) = msg {
            if !ans.is_empty() {
                answered += 1;
            } else {
                // Vehicles with no tasks still report once.
            }
            server.lock().receive_answers(ans);
        }
    }
    for (tx, _) in vehicle_txs.values() {
        tx.send(ToVehicle::Done).expect("vehicle alive");
    }
    for h in handles {
        h.join()
            .map_err(|_| MiddlewareError::Estimator("vehicle thread panicked".to_string()))??;
    }

    // Phase 4: inference + fusion.
    let mut guard = server.lock();
    let outcome = guard.infer(&mut rng)?;
    let fused = guard
        .finalize(config.merge_radius, config.spammer_cutoff)
        .to_vec();
    Ok(PlatformReport { outcome, fused })
}

/// Runs several crowdsourcing rounds back-to-back with reliability
/// smoothing: each round re-senses (fleet drives are per-round),
/// re-labels and re-infers; the server's per-vehicle reliability is the
/// EMA across rounds, so a spammer cannot whitewash itself with one
/// lucky round.
///
/// `rounds` pairs each round with its fleet (vehicle, drive) list; all
/// rounds share one server.
///
/// # Errors
///
/// Propagates single-round failures; requires at least one round.
pub fn run_campaign(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
) -> Result<Vec<PlatformReport>> {
    if rounds.is_empty() {
        return Err(MiddlewareError::InvalidConfig("no rounds".to_string()));
    }
    // The shared server lives across rounds; each round otherwise runs
    // the standard protocol. (`run_round` owns its server, so the
    // campaign re-applies the EMA manually from round to round.)
    let mut reports: Vec<PlatformReport> = Vec::new();
    let mut long_run: std::collections::BTreeMap<VehicleId, f64> = std::collections::BTreeMap::new();
    for (i, fleet) in rounds.into_iter().enumerate() {
        let round_config = PlatformConfig {
            seed: config.seed + i as u64 * 1000,
            ..config
        };
        let mut report = run_round(segments.clone(), fleet, round_config)?;
        for (vehicle, q) in report.outcome.reliabilities.iter_mut() {
            let prev = long_run.get(vehicle).copied().unwrap_or(0.5);
            *q = smoothing * *q + (1.0 - smoothing) * prev;
            long_run.insert(*vehicle, *q);
        }
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::Behavior;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_core::{OnlineCs, OnlineCsConfig};
    use crowdwifi_geo::{Point, Rect};

    /// Fading-free staggered drive past two APs.
    fn drive(offset: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
        (0..50)
            .map(|i| {
                let p = Point::new(
                    6.0 * i as f64,
                    offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    #[test]
    fn full_round_with_spammers_converges_to_truth() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        );
        let mk_estimator = || {
            OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
        };
        let mut fleet = Vec::new();
        for v in 0..5u32 {
            let behavior = if v < 4 {
                Behavior::Honest
            } else {
                Behavior::Spammer
            };
            fleet.push((
                CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                drive(v as f64 * 0.5),
            ));
        }
        let report = run_round(
            segments,
            fleet,
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
        )
        .unwrap();
        // Both APs recovered by the fused database.
        for truth in [Point::new(60.0, 30.0), Point::new(220.0, 30.0)] {
            let d = report
                .fused
                .iter()
                .map(|f| f.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 20.0, "AP {truth} unmatched in fusion ({d:.1} m)");
        }
        // The spammer's reliability must not exceed every honest one.
        let spam = report.outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| report.outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            spam <= best_honest,
            "spammer {spam:.2} outranked honest {best_honest:.2}"
        );
    }

    #[test]
    fn campaign_reliability_is_smoothed_across_rounds() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        );
        let mk_fleet = || {
            let mk_estimator = || {
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
            };
            (0..5u32)
                .map(|v| {
                    let behavior = if v == 4 {
                        Behavior::Spammer
                    } else {
                        Behavior::Honest
                    };
                    (
                        CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                        drive(v as f64 * 0.5),
                    )
                })
                .collect::<Vec<_>>()
        };
        let reports = run_campaign(
            segments,
            vec![mk_fleet(), mk_fleet()],
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
            0.5,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        // With α = 0.5 from a 0.5 prior, round-1 reliabilities stay
        // within 0.25 of the prior; round 2 can move further.
        for (_, &q) in &reports[0].outcome.reliabilities {
            assert!((q - 0.5).abs() <= 0.25 + 1e-9, "round 1 moved too far: {q}");
        }
        // The spammer's long-run reliability never exceeds the honest max.
        let spam = reports[1].outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| reports[1].outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(spam <= best_honest + 1e-9);
    }

    #[test]
    fn empty_fleet_rejected() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap(),
            10.0,
        );
        assert!(run_round(segments, vec![], PlatformConfig::default()).is_err());
    }
}
