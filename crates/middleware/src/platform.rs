//! The threaded crowdsourcing platform: server and vehicles as
//! concurrent actors connected by channels (the in-process stand-in for
//! the web platform of §5.5).

use crate::messages::{ToServer, ToVehicle, VehicleId};
use crate::segment::SegmentMap;
use crate::server::{CrowdServer, RoundOutcome};
use crate::vehicle::CrowdVehicle;
use crate::{MiddlewareError, Result};
use crossbeam::channel;
use crowdwifi_channel::RssReading;
use crowdwifi_crowd::fusion::FusedAp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of one platform round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Bootstrap (random) patterns per active segment.
    pub bootstrap_patterns: usize,
    /// Crowd-vehicles assigned per mapping task.
    pub workers_per_task: usize,
    /// Fusion merge radius in meters.
    pub merge_radius: f64,
    /// Vehicles at or below this inferred reliability are excluded from
    /// fusion.
    pub spammer_cutoff: f64,
    /// Base RNG seed; vehicle `i` uses `seed + i + 1`.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            bootstrap_patterns: 2,
            workers_per_task: 5,
            merge_radius: 25.0,
            spammer_cutoff: 0.3,
            seed: 0,
        }
    }
}

/// Result of a full platform round.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// The crowdsourcing outcome (accepted patterns, reliabilities).
    pub outcome: RoundOutcome,
    /// The fused fine-grained AP estimates.
    pub fused: Vec<FusedAp>,
}

/// One vehicle's side of the round protocol: sense + upload, then
/// answer assignments until `Done`.
///
/// A closed channel in either direction means the server abandoned the
/// round (another vehicle failed); that is a clean exit here, not an
/// error — the server already knows why the round ended.
fn vehicle_protocol(
    vehicle: &mut CrowdVehicle,
    readings: &[RssReading],
    segments: &SegmentMap,
    to_server: &channel::Sender<(VehicleId, ToServer)>,
    rx: &channel::Receiver<ToVehicle>,
    seed: u64,
) -> Result<()> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vehicle.sense(readings)?;
    if to_server
        .send((vehicle.id(), ToServer::Upload(vehicle.upload())))
        .is_err()
    {
        return Ok(());
    }
    loop {
        match rx.recv() {
            Ok(ToVehicle::Assign(tasks)) => {
                let answers = tasks
                    .iter()
                    .map(|t| vehicle.answer(t, segments, &mut rng))
                    .collect();
                if to_server
                    .send((vehicle.id(), ToServer::Answers(answers)))
                    .is_err()
                {
                    return Ok(());
                }
            }
            Ok(ToVehicle::Done) | Err(_) => return Ok(()),
        }
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one full crowdsensing round with each vehicle on its own
/// (scoped) thread: sense → upload → assignment → labeling → inference
/// → fusion.
///
/// `fleet` pairs each vehicle with the RSS readings of its drive.
/// Vehicle threads are spawned under [`std::thread::scope`], so none
/// can outlive the round, and each wraps its protocol in
/// `catch_unwind`: a panic (or estimator error) is reported to the
/// server as [`ToServer::Failed`], which aborts the round with an error
/// instead of deadlocking the upload-collection phase waiting on a dead
/// vehicle.
///
/// # Errors
///
/// Propagates estimator, assignment and inference failures; panics in
/// vehicle threads are converted into [`MiddlewareError::Estimator`].
pub fn run_round(
    segments: SegmentMap,
    mut fleet: Vec<(CrowdVehicle, Vec<RssReading>)>,
    config: PlatformConfig,
) -> Result<PlatformReport> {
    if fleet.is_empty() {
        return Err(MiddlewareError::InvalidConfig("empty fleet".to_string()));
    }
    // The server itself is only touched by this (the protocol) thread;
    // vehicles talk to it exclusively through channels.
    let mut server = CrowdServer::new(segments.clone());
    let (to_server_tx, to_server_rx) = channel::unbounded::<(VehicleId, ToServer)>();

    // Per-vehicle channels for assignments.
    let mut vehicle_txs = std::collections::BTreeMap::new();
    for (vehicle, _) in fleet.iter() {
        let (tx, rx) = channel::unbounded::<ToVehicle>();
        vehicle_txs.insert(vehicle.id(), (tx, rx));
    }
    for (vehicle, _) in fleet.iter() {
        server.register(vehicle.id());
    }

    std::thread::scope(|scope| {
        // Spawn vehicle workers. Panics are caught and surfaced as
        // `Failed` protocol messages, so the scope join below never
        // re-raises and the server loop never blocks on a dead peer.
        for (i, (mut vehicle, readings)) in fleet.drain(..).enumerate() {
            let to_server = to_server_tx.clone();
            let rx = vehicle_txs[&vehicle.id()].1.clone();
            let segments = &segments;
            let seed = config.seed + i as u64 + 1;
            scope.spawn(move || {
                let id = vehicle.id();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    vehicle_protocol(&mut vehicle, &readings, segments, &to_server, &rx, seed)
                }));
                let failure = match outcome {
                    Ok(Ok(())) => return,
                    Ok(Err(e)) => e.to_string(),
                    Err(payload) => format!("panic: {}", panic_message(payload)),
                };
                // Best-effort: if the server is already gone the round
                // has failed for another reason.
                let _ = to_server.send((id, ToServer::Failed(failure)));
            });
        }
        drop(to_server_tx);

        let result = run_server_protocol(&mut server, &to_server_rx, &vehicle_txs, config);
        // Success or failure, release every vehicle before the scope
        // joins: dropping the assignment senders turns any blocked
        // `rx.recv()` into a clean disconnect-and-exit.
        drop(vehicle_txs);
        result
    })
}

/// The server's side of one round: the four protocol phases.
fn run_server_protocol(
    server: &mut CrowdServer,
    to_server_rx: &channel::Receiver<(VehicleId, ToServer)>,
    vehicle_txs: &std::collections::BTreeMap<
        VehicleId,
        (channel::Sender<ToVehicle>, channel::Receiver<ToVehicle>),
    >,
    config: PlatformConfig,
) -> Result<PlatformReport> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n_vehicles = vehicle_txs.len();
    let vehicle_failed = |id: VehicleId, msg: String| {
        MiddlewareError::Estimator(format!("{id} failed: {msg}"))
    };

    // Phase 1: collect all uploads.
    let mut uploads_received = 0;
    let mut pending = Vec::new();
    while uploads_received < n_vehicles {
        let (id, msg) = to_server_rx
            .recv()
            .map_err(|_| MiddlewareError::Estimator("vehicle thread died".to_string()))?;
        match msg {
            ToServer::Upload(up) => {
                server.receive_upload(up)?;
                uploads_received += 1;
            }
            ToServer::Failed(m) => return Err(vehicle_failed(id, m)),
            other => pending.push((id, other)),
        }
    }

    // Phase 2: generate patterns and assign mapping tasks.
    server.generate_patterns(config.bootstrap_patterns, &mut rng);
    let assignments = server.assign_tasks(config.workers_per_task.min(n_vehicles), &mut rng)?;
    let mut expecting_answers = 0;
    for (&id, (tx, _)) in vehicle_txs {
        let tasks = assignments.get(&id).cloned().unwrap_or_default();
        if !tasks.is_empty() {
            expecting_answers += 1;
        }
        tx.send(ToVehicle::Assign(tasks)).expect("vehicle alive");
    }

    // Phase 3: collect answers.
    let mut answered = 0;
    for (id, msg) in pending {
        match msg {
            ToServer::Answers(ans) => {
                if !ans.is_empty() {
                    answered += 1;
                }
                server.receive_answers(ans);
            }
            ToServer::Failed(m) => return Err(vehicle_failed(id, m)),
            ToServer::Upload(_) => {}
        }
    }
    while answered < expecting_answers {
        let (id, msg) = to_server_rx
            .recv()
            .map_err(|_| MiddlewareError::Estimator("vehicle thread died".to_string()))?;
        match msg {
            ToServer::Answers(ans) => {
                if !ans.is_empty() {
                    answered += 1;
                }
                // Vehicles with no tasks still report once.
                server.receive_answers(ans);
            }
            ToServer::Failed(m) => return Err(vehicle_failed(id, m)),
            ToServer::Upload(_) => {}
        }
    }
    for (tx, _) in vehicle_txs.values() {
        tx.send(ToVehicle::Done).expect("vehicle alive");
    }

    // Phase 4: inference + fusion.
    let outcome = server.infer(&mut rng)?;
    let fused = server
        .finalize(config.merge_radius, config.spammer_cutoff)
        .to_vec();
    Ok(PlatformReport { outcome, fused })
}

/// Runs several crowdsourcing rounds back-to-back with reliability
/// smoothing: each round re-senses (fleet drives are per-round),
/// re-labels and re-infers; the server's per-vehicle reliability is the
/// EMA across rounds, so a spammer cannot whitewash itself with one
/// lucky round.
///
/// `rounds` pairs each round with its fleet (vehicle, drive) list; all
/// rounds share one server.
///
/// # Errors
///
/// Propagates single-round failures; requires at least one round.
pub fn run_campaign(
    segments: SegmentMap,
    rounds: Vec<Vec<(CrowdVehicle, Vec<RssReading>)>>,
    config: PlatformConfig,
    smoothing: f64,
) -> Result<Vec<PlatformReport>> {
    if rounds.is_empty() {
        return Err(MiddlewareError::InvalidConfig("no rounds".to_string()));
    }
    // The shared server lives across rounds; each round otherwise runs
    // the standard protocol. (`run_round` owns its server, so the
    // campaign re-applies the EMA manually from round to round.)
    let mut reports: Vec<PlatformReport> = Vec::new();
    let mut long_run: std::collections::BTreeMap<VehicleId, f64> = std::collections::BTreeMap::new();
    for (i, fleet) in rounds.into_iter().enumerate() {
        let round_config = PlatformConfig {
            seed: config.seed + i as u64 * 1000,
            ..config
        };
        let mut report = run_round(segments.clone(), fleet, round_config)?;
        for (vehicle, q) in report.outcome.reliabilities.iter_mut() {
            let prev = long_run.get(vehicle).copied().unwrap_or(0.5);
            *q = smoothing * *q + (1.0 - smoothing) * prev;
            long_run.insert(*vehicle, *q);
        }
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::Behavior;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_core::{OnlineCs, OnlineCsConfig};
    use crowdwifi_geo::{Point, Rect};

    /// Fading-free staggered drive past two APs.
    fn drive(offset: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
        (0..50)
            .map(|i| {
                let p = Point::new(
                    6.0 * i as f64,
                    offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    #[test]
    fn full_round_with_spammers_converges_to_truth() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        );
        let mk_estimator = || {
            OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
        };
        let mut fleet = Vec::new();
        for v in 0..5u32 {
            let behavior = if v < 4 {
                Behavior::Honest
            } else {
                Behavior::Spammer
            };
            fleet.push((
                CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                drive(v as f64 * 0.5),
            ));
        }
        let report = run_round(
            segments,
            fleet,
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
        )
        .unwrap();
        // Both APs recovered by the fused database.
        for truth in [Point::new(60.0, 30.0), Point::new(220.0, 30.0)] {
            let d = report
                .fused
                .iter()
                .map(|f| f.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 20.0, "AP {truth} unmatched in fusion ({d:.1} m)");
        }
        // The spammer's reliability must not exceed every honest one.
        let spam = report.outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| report.outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            spam <= best_honest,
            "spammer {spam:.2} outranked honest {best_honest:.2}"
        );
    }

    #[test]
    fn campaign_reliability_is_smoothed_across_rounds() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        );
        let mk_fleet = || {
            let mk_estimator = || {
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
            };
            (0..5u32)
                .map(|v| {
                    let behavior = if v == 4 {
                        Behavior::Spammer
                    } else {
                        Behavior::Honest
                    };
                    (
                        CrowdVehicle::new(VehicleId(v), mk_estimator(), behavior),
                        drive(v as f64 * 0.5),
                    )
                })
                .collect::<Vec<_>>()
        };
        let reports = run_campaign(
            segments,
            vec![mk_fleet(), mk_fleet()],
            PlatformConfig {
                workers_per_task: 4,
                ..PlatformConfig::default()
            },
            0.5,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        // With α = 0.5 from a 0.5 prior, round-1 reliabilities stay
        // within 0.25 of the prior; round 2 can move further.
        for &q in reports[0].outcome.reliabilities.values() {
            assert!((q - 0.5).abs() <= 0.25 + 1e-9, "round 1 moved too far: {q}");
        }
        // The spammer's long-run reliability never exceeds the honest max.
        let spam = reports[1].outcome.reliabilities[&VehicleId(4)];
        let best_honest = (0..4)
            .map(|v| reports[1].outcome.reliabilities[&VehicleId(v)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(spam <= best_honest + 1e-9);
    }

    #[test]
    fn failing_vehicle_aborts_round_instead_of_deadlocking() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        );
        let mk_estimator = || {
            OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap()
        };
        let mut fleet: Vec<_> = (0..3u32)
            .map(|v| {
                (
                    CrowdVehicle::new(VehicleId(v), mk_estimator(), Behavior::Honest),
                    drive(v as f64 * 0.5),
                )
            })
            .collect();
        // Poison one vehicle's drive: NaN coordinates blow up its
        // estimator mid-sense. Before the scoped-thread rework this
        // hung phase 1 forever waiting for the missing upload; now the
        // vehicle's failure must abort the round with an error naming it.
        for r in fleet[1].1.iter_mut() {
            *r = RssReading::new(Point::new(f64::NAN, f64::NAN), r.rss_dbm, r.time);
        }
        let err = run_round(segments, fleet, PlatformConfig::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("vehicle1"), "unexpected error: {msg}");
    }

    #[test]
    fn empty_fleet_rejected() {
        let segments = SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap(),
            10.0,
        );
        assert!(run_round(segments, vec![], PlatformConfig::default()).is_err());
    }
}
