//! The pure, sans-I/O crowd-server protocol.
//!
//! [`ServerCore`] is the whole round protocol of §5.5 — uploads under
//! deadline, (ℓ,γ)-regular task assignment, answer collection with
//! retry/backoff, quorum-gated degradation, orphan reassignment,
//! Karger–Oh–Shah inference and shard-by-shard fusion — expressed as a
//! state machine with **no I/O of any kind**. It never blocks, never
//! sleeps, never reads a clock and never owns a channel or an OS
//! thread: every stimulus arrives as a timestamped [`Event`], every
//! effect leaves as an [`Action`], and "time" is whatever
//! [`VirtualInstant`]s the driver stamps onto events.
//!
//! ```text
//!                 Event                      Action
//!   transport ───────────────▶ ServerCore ───────────────▶ transport
//!   Message{now, from, msg}                 Send{to, msg}
//!   TimerFired{now, timer}                  SetTimer{timer, deadline}
//!   LinksClosed{now}                        Completed(report)
//!                                           Failed(error)
//! ```
//!
//! The drivers in [`crate::transport`] are thin: the threaded backend
//! maps real channel traffic and wall-clock deadlines onto events, the
//! simulation backend replays the same protocol under a virtual clock
//! in a single OS thread. Because all protocol decisions live here,
//! every backend gets deadlines, retries, quorum, reassignment and the
//! `platform.*` metrics for free — and same-seed rounds agree across
//! backends on everything but raw phase timings.
//!
//! Campaign state is sharded by road segment (see [`shards`]): fusion
//! runs per segment, and the cross-round [`shards::ShardedDatabase`]
//! advances each segment independently.

pub mod fates;
pub mod fleet;
pub mod quorum;
pub mod rounds;
pub mod shards;

pub use fates::{FateRecord, RoundHealth, RoundPhase, VehicleFate};
pub use fleet::{FleetCore, ShardRouter};
pub use quorum::quorum_required;
pub use rounds::{validate_config, FaultTolerance, PlatformConfig, PlatformReport};
pub use shards::{ShardState, ShardTable, ShardedDatabase};

use self::quorum::RoundLedger;
use self::rounds::{LabelingState, DEAD_RELIABILITY_FACTOR};
use crate::messages::{codec_err, push_str, push_u64, TokenReader};
use crate::messages::{MappingTask, ToServer, ToVehicle, VehicleId};
use crate::segment::SegmentMap;
use crate::server::CrowdServer;
use crate::wire::{self, WireMessage, WireReader};
use crate::{MiddlewareError, Result};
use crowdwifi_obs::{EventValue, Registry, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Add;
use std::time::Duration;

/// A point on the driver's clock, in microseconds since the round
/// started. The core never reads a clock; drivers stamp every event
/// with the current instant — wall-derived on the threaded backend,
/// purely virtual on the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct VirtualInstant(u64);

impl VirtualInstant {
    /// The start of the round.
    pub const ZERO: VirtualInstant = VirtualInstant(0);

    /// The instant `micros` microseconds after round start.
    pub fn from_micros(micros: u64) -> Self {
        VirtualInstant(micros)
    }

    /// Microseconds since round start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: VirtualInstant) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for VirtualInstant {
    type Output = VirtualInstant;

    fn add(self, rhs: Duration) -> VirtualInstant {
        VirtualInstant(self.0.saturating_add(rhs.as_micros() as u64))
    }
}

/// Identity of one armed deadline. The generation makes stale timers
/// harmless: re-arming a vehicle's deadline bumps its generation, and
/// the core ignores fired timers whose generation is not current — so
/// drivers never need to cancel anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId {
    /// The vehicle this deadline guards.
    pub vehicle: VehicleId,
    /// Arm count for this vehicle; only the newest generation is live.
    pub generation: u64,
}

/// A stimulus fed into [`ServerCore::handle`], stamped with the
/// driver's current instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message arrived from a vehicle.
    Message {
        /// Driver time at delivery.
        now: VirtualInstant,
        /// The sending vehicle.
        from: VehicleId,
        /// The message itself.
        msg: ToServer,
    },
    /// A previously requested timer's deadline passed.
    TimerFired {
        /// Driver time at expiry (at or after the timer's deadline).
        now: VirtualInstant,
        /// Which timer fired.
        timer: TimerId,
    },
    /// Every vehicle link is gone; no further messages can arrive.
    LinksClosed {
        /// Driver time at disconnect.
        now: VirtualInstant,
    },
    /// A frame from `from` arrived but failed to decode (bad CRC,
    /// truncation, unknown tag). Recorded as an event — rather than
    /// handled transport-side — so the resulting quarantine replays
    /// deterministically from the write-ahead log.
    Garbled {
        /// Driver time at delivery.
        now: VirtualInstant,
        /// The vehicle whose link produced the undecodable frame.
        from: VehicleId,
    },
}

impl Event {
    /// Encodes the event for the durability write-ahead log, using the
    /// same token codec as the protocol messages: `EM` (message, with
    /// the inner [`ToServer`] wire string nested as one string token),
    /// `ET` (timer fired) or `EL` (links closed), each stamped with the
    /// event's virtual timestamp in microseconds.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        match self {
            Event::Message { now, from, msg } => {
                out.push_str("EM");
                push_u64(&mut out, now.as_micros());
                push_u64(&mut out, u64::from(from.0));
                push_str(&mut out, &msg.to_wire());
            }
            Event::TimerFired { now, timer } => {
                out.push_str("ET");
                push_u64(&mut out, now.as_micros());
                push_u64(&mut out, u64::from(timer.vehicle.0));
                push_u64(&mut out, timer.generation);
            }
            Event::LinksClosed { now } => {
                out.push_str("EL");
                push_u64(&mut out, now.as_micros());
            }
            Event::Garbled { now, from } => {
                out.push_str("EG");
                push_u64(&mut out, now.as_micros());
                push_u64(&mut out, u64::from(from.0));
            }
        }
        out
    }

    /// Decodes an event produced by [`Event::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Codec`] on unknown tags, truncated
    /// input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        let event = match r.tag()? {
            "EM" => {
                let now = VirtualInstant::from_micros(r.u64()?);
                let from = VehicleId(r.u32()?);
                let msg = ToServer::from_wire(&r.string()?)?;
                Event::Message { now, from, msg }
            }
            "ET" => Event::TimerFired {
                now: VirtualInstant::from_micros(r.u64()?),
                timer: TimerId {
                    vehicle: VehicleId(r.u32()?),
                    generation: r.u64()?,
                },
            },
            "EL" => Event::LinksClosed {
                now: VirtualInstant::from_micros(r.u64()?),
            },
            "EG" => Event::Garbled {
                now: VirtualInstant::from_micros(r.u64()?),
                from: VehicleId(r.u32()?),
            },
            t => return Err(codec_err(format!("unknown Event tag {t:?}"))),
        };
        r.finish()?;
        Ok(event)
    }
}

impl WireMessage for Event {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            Event::Message { now, from, msg } => {
                wire::put_header(out, wire::TAG_EVENT_MESSAGE);
                wire::put_varint(out, now.as_micros());
                wire::put_varint(out, u64::from(from.0));
                // The inner message nests inline, version byte and all:
                // its own decoder consumes exactly its fields.
                msg.encode_binary(out);
            }
            Event::TimerFired { now, timer } => {
                wire::put_header(out, wire::TAG_EVENT_TIMER);
                wire::put_varint(out, now.as_micros());
                wire::put_varint(out, u64::from(timer.vehicle.0));
                wire::put_varint(out, timer.generation);
            }
            Event::LinksClosed { now } => {
                wire::put_header(out, wire::TAG_EVENT_LINKS_CLOSED);
                wire::put_varint(out, now.as_micros());
            }
            Event::Garbled { now, from } => {
                wire::put_header(out, wire::TAG_EVENT_GARBLED);
                wire::put_varint(out, now.as_micros());
                wire::put_varint(out, u64::from(from.0));
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.header()? {
            wire::TAG_EVENT_MESSAGE => {
                let now = VirtualInstant::from_micros(r.varint()?);
                let from = VehicleId(r.u32()?);
                let msg = ToServer::decode_body(r)?;
                Event::Message { now, from, msg }
            }
            wire::TAG_EVENT_TIMER => Event::TimerFired {
                now: VirtualInstant::from_micros(r.varint()?),
                timer: TimerId {
                    vehicle: VehicleId(r.u32()?),
                    generation: r.varint()?,
                },
            },
            wire::TAG_EVENT_LINKS_CLOSED => Event::LinksClosed {
                now: VirtualInstant::from_micros(r.varint()?),
            },
            wire::TAG_EVENT_GARBLED => Event::Garbled {
                now: VirtualInstant::from_micros(r.varint()?),
                from: VehicleId(r.u32()?),
            },
            t => return Err(codec_err(format!("unknown Event binary tag {t:#04x}"))),
        })
    }
}

/// An effect the driver must perform on behalf of the core.
#[derive(Debug)]
pub enum Action {
    /// Deliver `msg` to vehicle `to` (best-effort; the vehicle may
    /// already be gone).
    Send {
        /// Destination vehicle.
        to: VehicleId,
        /// The message to deliver.
        msg: ToVehicle,
    },
    /// Arrange for [`Event::TimerFired`] with this id once `deadline`
    /// passes. Timers are never cancelled; superseded generations fire
    /// and are ignored.
    SetTimer {
        /// Identity the fired event must echo back.
        timer: TimerId,
        /// When the timer is due.
        deadline: VirtualInstant,
    },
    /// The round finished. The report's `exits` and `metrics` are still
    /// empty: only the driver knows vehicle-side exits and when every
    /// fault tally is final, so it seals them in afterwards.
    Completed(Box<PlatformReport>),
    /// The round was abandoned with this error. Abort notifications to
    /// the fleet precede this action in the same batch.
    Failed(MiddlewareError),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Uploads,
    Labeling,
    Done,
}

/// The crowd-server round protocol as a pure state machine. See the
/// [module docs](self) for the event/action contract.
#[derive(Debug)]
pub struct ServerCore {
    server: CrowdServer,
    config: PlatformConfig,
    rng: ChaCha8Rng,
    registry: Registry,
    ledger: RoundLedger,
    phase: Phase,
    phase_started: VirtualInstant,
    timer_gen: BTreeMap<VehicleId, u64>,
    waiting: BTreeSet<VehicleId>,
    labeling: LabelingState,
    shards: ShardTable,
    finished: bool,
    /// When set, round close skips the in-core fusion pass and reports
    /// an empty fused map; the embedding [`FleetCore`] consolidates its
    /// segment shards instead and installs the (byte-identical) merge
    /// via [`ServerCore::install_fused`].
    deferred_fusion: bool,
}

impl ServerCore {
    /// Builds the core for one round: validates the config, registers
    /// the fleet (rejecting empty fleets and duplicate ids) and seeds
    /// the protocol RNG. Metrics land in `registry`, which the driver
    /// also uses for its own transport-side counters.
    pub fn new(
        segments: SegmentMap,
        fleet: &[VehicleId],
        config: PlatformConfig,
        registry: Registry,
    ) -> Result<Self> {
        validate_config(&config)?;
        if fleet.is_empty() {
            return Err(MiddlewareError::InvalidConfig("empty fleet".to_string()));
        }
        let mut server = CrowdServer::new(segments);
        let mut ids = BTreeSet::new();
        for &v in fleet {
            if !ids.insert(v) {
                return Err(MiddlewareError::InvalidConfig(format!(
                    "duplicate vehicle id {v}"
                )));
            }
            server.register(v);
        }
        Ok(ServerCore {
            server,
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            registry,
            ledger: RoundLedger::new(),
            phase: Phase::Uploads,
            phase_started: VirtualInstant::ZERO,
            timer_gen: BTreeMap::new(),
            waiting: BTreeSet::new(),
            labeling: LabelingState::default(),
            shards: ShardTable::default(),
            finished: false,
            deferred_fusion: false,
        })
    }

    /// Defers round-close fusion to an external consolidator (the
    /// sharded [`FleetCore`]): `maybe_finish_labeling` skips
    /// `finalize_sharded` and the `platform.shards.fused` gauge, leaving
    /// `PlatformReport::fused` empty for the consolidator to fill.
    pub(crate) fn with_deferred_fusion(mut self) -> Self {
        self.deferred_fusion = true;
        self
    }

    /// Rebuilds a crashed server from its durable round history: a
    /// fresh core is built exactly as [`ServerCore::new`] would, started
    /// at [`VirtualInstant::ZERO`], and the logged events are replayed
    /// in order. Because the protocol RNG is seeded from the config and
    /// consumed only at phase transitions, the replayed core is
    /// byte-identical (see [`ServerCore::state_digest`]) to a server
    /// that processed the same events without crashing.
    ///
    /// Returns the recovered core together with the replay's surviving
    /// actions: every `SetTimer` — with its **original** deadline, so
    /// generation-tagged timers re-arm correctly against the virtual
    /// clock (a past-due deadline simply fires at the driver's next
    /// check) — plus any terminal `Completed`/`Failed`. `Send` actions
    /// are dropped: the crash already lost them, and the deadline/retry
    /// machinery re-sends whatever still matters.
    ///
    /// # Errors
    ///
    /// As [`ServerCore::new`].
    pub fn recover(
        segments: SegmentMap,
        fleet: &[VehicleId],
        config: PlatformConfig,
        registry: Registry,
        events: &[Event],
    ) -> Result<(Self, Vec<Action>)> {
        let mut core = ServerCore::new(segments, fleet, config, registry)?;
        let mut survived = core.start(VirtualInstant::ZERO);
        for event in events {
            survived.extend(core.handle(event.clone()));
        }
        survived.retain(|a| !matches!(a, Action::Send { .. }));
        Ok((core, survived))
    }

    /// A deterministic fingerprint of the full protocol state —
    /// everything that decides future behavior (phase, ledger, labeling
    /// book, shard table, RNG stream position, crowd-server state), and
    /// nothing that does not (the metrics registry, whose timing
    /// histograms are driver-dependent). Two cores with equal digests
    /// respond identically to every future event sequence; the chaos
    /// harness uses this to verify a recovered server against the
    /// never-crashed one.
    pub fn state_digest(&self) -> String {
        format!(
            "phase={:?} started={:?} finished={} waiting={:?} gens={:?} rng={:?} \
             fates={:?} retries={:?} dead={:?} outstanding={:?} answered={:?} \
             reassigned={} lost={} shards={:?} server={:?}",
            self.phase,
            self.phase_started,
            self.finished,
            self.waiting,
            self.timer_gen,
            self.rng,
            self.ledger.fates,
            self.ledger.retries,
            self.ledger.dead,
            self.labeling.outstanding,
            self.labeling.answered,
            self.labeling.reassigned,
            self.labeling.lost,
            self.shards,
            self.server,
        )
    }

    /// A handle on the registry this core records its metrics into
    /// (clones share state).
    pub(crate) fn registry_handle(&self) -> Registry {
        self.registry.clone()
    }

    /// The stored upload for `v`, if one arrived this round.
    pub(crate) fn upload_of(&self, v: VehicleId) -> Option<&crate::messages::SensingUpload> {
        self.server.upload_of(v)
    }

    /// The segment map this round runs over.
    pub(crate) fn segment_map(&self) -> &SegmentMap {
        self.server.segments()
    }

    /// `(merge_radius, spammer_cutoff)` — the fusion parameters an
    /// external consolidator must reproduce.
    pub(crate) fn fusion_params(&self) -> (f64, f64) {
        (self.config.merge_radius, self.config.spammer_cutoff)
    }

    /// Installs an externally consolidated fused map, making the
    /// crowd-server state (and hence [`ServerCore::state_digest`])
    /// byte-identical to a core that fused in-line.
    pub(crate) fn install_fused(&mut self, fused: Vec<crowdwifi_crowd::fusion::FusedAp>) {
        self.server.set_fused(fused);
    }

    /// Whether the round has emitted [`Action::Completed`] or
    /// [`Action::Failed`]; all later events are ignored.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Opens the round at `now`: every vehicle owes an upload by
    /// `now + deadline`.
    pub fn start(&mut self, now: VirtualInstant) -> Vec<Action> {
        let mut actions = Vec::new();
        self.phase_started = now;
        let deadline = self.config.tolerance.deadline;
        for v in self.server.vehicles().to_vec() {
            self.arm(v, now + deadline, &mut actions);
        }
        actions
    }

    /// Feeds one event through the state machine.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        if self.finished {
            return Vec::new();
        }
        match event {
            Event::Message { now, from, msg } => self.on_message(now, from, msg),
            Event::TimerFired { now, timer } => self.on_timer(now, timer),
            Event::LinksClosed { now } => self.on_links_closed(now),
            Event::Garbled { now, from } => self.quarantine(now, from),
        }
    }

    /// Decodes one raw wire frame from `from` and feeds it through the
    /// state machine. A frame that fails to decode **quarantines its
    /// sender** instead of failing the round: the vehicle is declared
    /// dead with [`VehicleFate::Quarantined`], its outstanding work is
    /// reassigned, and the `platform.quarantine` counter is bumped —
    /// one malformed (or malicious) frame must never cost the other
    /// vehicles their round.
    pub fn handle_frame(
        &mut self,
        now: VirtualInstant,
        from: VehicleId,
        frame: &str,
    ) -> Vec<Action> {
        if self.finished {
            return Vec::new();
        }
        match ToServer::from_wire(frame) {
            Ok(msg) => self.on_message(now, from, msg),
            Err(_) => self.quarantine(now, from),
        }
    }

    /// [`ServerCore::handle_frame`] for the binary codec: validates and
    /// decodes one raw CRC-framed binary record from `from`. A frame
    /// that fails framing (bad CRC, bad length prefix) or decoding (bad
    /// version byte, unknown tag, truncated varint) quarantines its
    /// sender exactly as the text variant does.
    pub fn handle_frame_binary(
        &mut self,
        now: VirtualInstant,
        from: VehicleId,
        frame: &[u8],
    ) -> Vec<Action> {
        if self.finished {
            return Vec::new();
        }
        match ToServer::from_frame(frame) {
            Ok(msg) => self.on_message(now, from, msg),
            Err(_) => self.quarantine(now, from),
        }
    }

    /// Declares `from` dead with [`VehicleFate::Quarantined`] after a
    /// malformed frame, keeping the round alive for everyone else.
    fn quarantine(&mut self, now: VirtualInstant, from: VehicleId) -> Vec<Action> {
        if self.ledger.dead.contains(&from) || !self.server.is_registered(from) {
            return Vec::new();
        }
        self.registry.counter("platform.quarantine").inc();
        let mut actions = Vec::new();
        self.ledger
            .mark_dead(&mut self.server, from, VehicleFate::Quarantined);
        match self.phase {
            Phase::Uploads => {
                self.disarm(from);
                self.maybe_finish_uploads(now, &mut actions);
            }
            Phase::Labeling => {
                self.reassign(now, from, &mut actions);
                self.maybe_finish_labeling(now, &mut actions);
            }
            Phase::Done => {}
        }
        actions
    }

    /// Arms (or re-arms) `v`'s deadline; any previously armed timer for
    /// `v` becomes stale.
    fn arm(&mut self, v: VehicleId, deadline: VirtualInstant, actions: &mut Vec<Action>) {
        let generation = self.timer_gen.entry(v).or_insert(0);
        *generation += 1;
        self.waiting.insert(v);
        actions.push(Action::SetTimer {
            timer: TimerId {
                vehicle: v,
                generation: *generation,
            },
            deadline,
        });
    }

    /// Stops waiting on `v` and invalidates its armed timer.
    fn disarm(&mut self, v: VehicleId) {
        self.waiting.remove(&v);
        *self.timer_gen.entry(v).or_insert(0) += 1;
    }

    /// Closes the phase timing span `name` at `now` and reopens the
    /// span clock for the next phase.
    fn observe_phase(&mut self, name: &str, now: VirtualInstant) {
        self.registry
            .timer(name)
            .observe_duration(now.since(self.phase_started));
        self.phase_started = now;
    }

    fn on_message(&mut self, now: VirtualInstant, from: VehicleId, msg: ToServer) -> Vec<Action> {
        if self.ledger.dead.contains(&from) {
            return Vec::new(); // late message from a declared-dead vehicle
        }
        let mut actions = Vec::new();
        match self.phase {
            Phase::Uploads => match msg {
                ToServer::Upload(up) => {
                    if let Err(e) = self.server.receive_upload(up) {
                        return self.abort(e);
                    }
                    self.disarm(from);
                    self.maybe_finish_uploads(now, &mut actions);
                }
                ToServer::Failed(m) => {
                    self.ledger
                        .mark_dead(&mut self.server, from, VehicleFate::Reported(m));
                    self.disarm(from);
                    self.maybe_finish_uploads(now, &mut actions);
                }
                // Answers cannot precede an assignment; a duplicate or
                // delayed stray is simply ignored.
                ToServer::Answers(_) => {}
            },
            Phase::Labeling => match msg {
                ToServer::Answers(batch) => {
                    let Some(owed) = self.labeling.outstanding.get_mut(&from) else {
                        return actions; // task-less vehicle or duplicate batch
                    };
                    let mut fresh = Vec::with_capacity(batch.len());
                    for a in batch {
                        if a.vehicle == from && owed.remove(&a.task_id) {
                            self.labeling.answered.insert((from, a.task_id));
                            self.shards.slot_closed(a.task_id);
                            fresh.push(a);
                        }
                    }
                    self.server.receive_answers(fresh);
                    if self
                        .labeling
                        .outstanding
                        .get(&from)
                        .is_some_and(|owed| owed.is_empty())
                    {
                        self.labeling.outstanding.remove(&from);
                        self.disarm(from);
                    }
                    self.maybe_finish_labeling(now, &mut actions);
                }
                ToServer::Failed(m) => {
                    self.ledger
                        .mark_dead(&mut self.server, from, VehicleFate::Reported(m));
                    self.reassign(now, from, &mut actions);
                    self.maybe_finish_labeling(now, &mut actions);
                }
                // A delayed or re-requested upload arriving late; the
                // first copy already counted.
                ToServer::Upload(_) => {}
            },
            Phase::Done => {}
        }
        actions
    }

    fn on_timer(&mut self, now: VirtualInstant, timer: TimerId) -> Vec<Action> {
        let v = timer.vehicle;
        // Stale generation or a vehicle we stopped waiting on: the
        // timer was superseded, not cancelled. Ignore it.
        if !self.waiting.contains(&v)
            || self.timer_gen.get(&v).copied().unwrap_or(0) != timer.generation
        {
            return Vec::new();
        }
        let tolerance = self.config.tolerance;
        let mut actions = Vec::new();
        match self.phase {
            Phase::Uploads => {
                let spent = self.ledger.retries.entry(v).or_insert(0);
                if *spent < tolerance.max_retries {
                    *spent += 1;
                    let extra = tolerance.retry_backoff * *spent;
                    actions.push(Action::Send {
                        to: v,
                        msg: ToVehicle::RequestUpload,
                    });
                    self.arm(v, now + tolerance.deadline + extra, &mut actions);
                } else {
                    self.ledger.mark_dead(
                        &mut self.server,
                        v,
                        VehicleFate::TimedOut(RoundPhase::Upload),
                    );
                    self.disarm(v);
                    self.maybe_finish_uploads(now, &mut actions);
                }
            }
            Phase::Labeling => {
                let spent = self.ledger.retries.entry(v).or_insert(0);
                if *spent < tolerance.max_retries {
                    *spent += 1;
                    let extra = tolerance.retry_backoff * *spent;
                    let tasks: Vec<MappingTask> = self.labeling.outstanding[&v]
                        .iter()
                        .map(|&task_id| MappingTask {
                            task_id,
                            pattern: self.server.patterns()[task_id].clone(),
                        })
                        .collect();
                    actions.push(Action::Send {
                        to: v,
                        msg: ToVehicle::Assign(tasks),
                    });
                    self.arm(v, now + tolerance.deadline + extra, &mut actions);
                } else {
                    self.ledger.mark_dead(
                        &mut self.server,
                        v,
                        VehicleFate::TimedOut(RoundPhase::Labeling),
                    );
                    self.reassign(now, v, &mut actions);
                    self.maybe_finish_labeling(now, &mut actions);
                }
            }
            Phase::Done => {}
        }
        actions
    }

    fn on_links_closed(&mut self, now: VirtualInstant) -> Vec<Action> {
        let mut actions = Vec::new();
        match self.phase {
            Phase::Uploads => {
                for v in self.waiting.iter().copied().collect::<Vec<_>>() {
                    self.ledger.mark_dead(
                        &mut self.server,
                        v,
                        VehicleFate::Vanished(RoundPhase::Upload),
                    );
                    self.disarm(v);
                }
                self.maybe_finish_uploads(now, &mut actions);
            }
            Phase::Labeling => {
                // Reassignment can hand orphans to vehicles that were
                // not waiting, but their links are just as gone — kill
                // wave after wave until nobody is owed anything.
                while !self.waiting.is_empty() {
                    for v in self.waiting.iter().copied().collect::<Vec<_>>() {
                        self.ledger.mark_dead(
                            &mut self.server,
                            v,
                            VehicleFate::Vanished(RoundPhase::Labeling),
                        );
                        self.reassign(now, v, &mut actions);
                    }
                }
                self.maybe_finish_labeling(now, &mut actions);
            }
            Phase::Done => {}
        }
        actions
    }

    /// Declared-dead `v`'s orphans move to the least-loaded survivors;
    /// each recipient gets the batch plus a fresh deadline.
    fn reassign(&mut self, now: VirtualInstant, v: VehicleId, actions: &mut Vec<Action>) {
        let orphans: Vec<usize> = self
            .labeling
            .outstanding
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        self.disarm(v);
        let batches = self
            .labeling
            .reassign_orphans(&self.server, &self.ledger, v);
        for &task_id in &orphans {
            self.shards.slot_closed(task_id);
        }
        let deadline = self.config.tolerance.deadline;
        for (w, tasks) in batches {
            for task in &tasks {
                self.shards.slot_opened(task.task_id);
            }
            actions.push(Action::Send {
                to: w,
                msg: ToVehicle::Assign(tasks),
            });
            self.arm(w, now + deadline, actions);
        }
    }

    /// If every upload is in (or its owner is dead), closes phase 1 and
    /// runs assignment: patterns are generated, tasks fanned out to the
    /// survivors, and labeling deadlines armed.
    fn maybe_finish_uploads(&mut self, now: VirtualInstant, actions: &mut Vec<Action>) {
        if self.phase != Phase::Uploads || !self.waiting.is_empty() {
            return;
        }
        self.observe_phase("platform.phase.upload_seconds", now);
        if let Err(e) = self
            .ledger
            .check_quorum(&self.server, self.config.tolerance.quorum)
        {
            actions.extend(self.abort(e));
            return;
        }

        // Phase 2 (assignment) is synchronous in event time: it opens
        // and closes inside this call.
        self.server
            .generate_patterns(self.config.bootstrap_patterns, &mut self.rng);
        let alive = self.ledger.alive(&self.server);
        let assignments = match self
            .server
            .assign_tasks(self.config.workers_per_task.min(alive.len()), &mut self.rng)
        {
            Ok(a) => a,
            Err(e) => {
                actions.extend(self.abort(e));
                return;
            }
        };
        self.shards = ShardTable::new(self.server.patterns());
        let deadline = self.config.tolerance.deadline;
        for &v in &alive {
            let tasks = assignments.get(&v).cloned().unwrap_or_default();
            if !tasks.is_empty() {
                self.labeling
                    .outstanding
                    .insert(v, tasks.iter().map(|t| t.task_id).collect());
                for task in &tasks {
                    self.shards.slot_opened(task.task_id);
                }
            }
            actions.push(Action::Send {
                to: v,
                msg: ToVehicle::Assign(tasks),
            });
        }
        self.observe_phase("platform.phase.assign_seconds", now);
        self.phase = Phase::Labeling;
        for v in self
            .labeling
            .outstanding
            .keys()
            .copied()
            .collect::<Vec<_>>()
        {
            self.arm(v, now + deadline, actions);
        }
        // Degenerate but legal: nobody owes an answer (e.g. everyone
        // who could label is dead but quorum still holds).
        self.maybe_finish_labeling(now, actions);
    }

    /// If no answers are outstanding, closes phase 3 and runs inference
    /// plus shard-by-shard fusion, emitting the final report.
    fn maybe_finish_labeling(&mut self, now: VirtualInstant, actions: &mut Vec<Action>) {
        if self.phase != Phase::Labeling || !self.waiting.is_empty() {
            return;
        }
        self.observe_phase("platform.phase.labeling_seconds", now);
        if let Err(e) = self
            .ledger
            .check_quorum(&self.server, self.config.tolerance.quorum)
        {
            actions.extend(self.abort(e));
            return;
        }
        for v in self.ledger.alive(&self.server) {
            actions.push(Action::Send {
                to: v,
                msg: ToVehicle::Done,
            });
        }

        // Phase 4: inference + fusion. Dead vehicles are penalized in
        // the reliability prior before fusion weighs their uploads.
        let mut outcome = match self.server.infer(&mut self.rng) {
            Ok(o) => o,
            Err(e) => {
                actions.extend(self.abort(e));
                return;
            }
        };
        for &v in &self.ledger.dead {
            let q = self.server.penalize(v, DEAD_RELIABILITY_FACTOR);
            outcome.reliabilities.insert(v, q);
        }
        let fused = if self.deferred_fusion {
            Vec::new()
        } else {
            self.server
                .finalize_sharded(self.config.merge_radius, self.config.spammer_cutoff)
                .to_vec()
        };
        self.observe_phase("platform.phase.inference_seconds", now);

        let reassigned_tasks = self.labeling.reassigned;
        let lost_label_slots = self.labeling.lost;
        let total_retries: u32 = self.ledger.retries.values().sum();
        let health = if self.ledger.dead.is_empty()
            && reassigned_tasks == 0
            && lost_label_slots == 0
            && total_retries == 0
        {
            RoundHealth::Complete
        } else {
            RoundHealth::Degraded
        };
        let mut fates = std::mem::take(&mut self.ledger.fates);
        for v in self.server.vehicles() {
            fates.entry(*v).or_insert_with(|| FateRecord {
                fate: VehicleFate::Completed,
                retries: self.ledger.retries.get(v).copied().unwrap_or(0),
            });
        }

        // Round bookkeeping metrics. Fates iterate in `VehicleId`
        // order, so the `vehicle.dead` event sequence is deterministic.
        let reg = &self.registry;
        reg.counter("platform.retries")
            .add(u64::from(total_retries));
        reg.counter("platform.reassigned_tasks")
            .add(reassigned_tasks as u64);
        reg.counter("platform.lost_label_slots")
            .add(lost_label_slots as u64);
        for (v, record) in &fates {
            reg.counter(&format!(
                "platform.fates.{}",
                fates::fate_label(&record.fate)
            ))
            .inc();
            if record.fate != VehicleFate::Completed {
                reg.event(
                    "vehicle.dead",
                    &[
                        ("vehicle", EventValue::Uint(u64::from(v.0))),
                        (
                            "fate",
                            EventValue::Str(fates::fate_label(&record.fate).to_string()),
                        ),
                        ("retries", EventValue::Uint(u64::from(record.retries))),
                    ],
                );
            }
        }
        let total = self.server.vehicles().len();
        let alive = total - self.ledger.dead.len();
        reg.gauge("platform.fleet_size").set(total as i64);
        reg.gauge("platform.dead_vehicles")
            .set(self.ledger.dead.len() as i64);
        reg.gauge("platform.quorum_margin")
            .set(alive as i64 - quorum_required(total, self.config.tolerance.quorum) as i64);
        reg.gauge("platform.shards").set(self.shards.len() as i64);
        if !self.deferred_fusion {
            let fused_shards: BTreeSet<_> = fused
                .iter()
                .map(|ap| self.server.segments().segment_of(ap.position))
                .collect();
            reg.gauge("platform.shards.fused")
                .set(fused_shards.len() as i64);
        }

        self.phase = Phase::Done;
        self.finished = true;
        actions.push(Action::Completed(Box::new(PlatformReport {
            outcome,
            fused,
            health,
            fates,
            exits: BTreeMap::new(), // sealed in by the driver
            reassigned_tasks,
            lost_label_slots,
            metrics: Snapshot::default(), // likewise: fault tallies are driver-side
        })));
    }

    /// Abandons the round: every vehicle is told why, then the error is
    /// surfaced as the final action.
    fn abort(&mut self, err: MiddlewareError) -> Vec<Action> {
        self.phase = Phase::Done;
        self.finished = true;
        let reason = err.to_string();
        let mut actions: Vec<Action> = self
            .server
            .vehicles()
            .iter()
            .map(|&v| Action::Send {
                to: v,
                msg: ToVehicle::Abort(reason.clone()),
            })
            .collect();
        actions.push(Action::Failed(err));
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_geo::{Point, Rect};

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        )
    }

    fn core(fleet: &[u32]) -> ServerCore {
        let ids: Vec<VehicleId> = fleet.iter().map(|&v| VehicleId(v)).collect();
        ServerCore::new(segments(), &ids, PlatformConfig::default(), Registry::new())
            .expect("valid core")
    }

    #[test]
    fn start_arms_one_timer_per_vehicle() {
        let mut c = core(&[0, 1, 2]);
        let actions = c.start(VirtualInstant::ZERO);
        let timers: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { .. }))
            .collect();
        assert_eq!(timers.len(), 3);
        assert_eq!(actions.len(), 3, "no sends before any event");
        assert!(!c.is_finished());
    }

    #[test]
    fn stale_timer_generations_are_ignored() {
        let mut c = core(&[0, 1]);
        let actions = c.start(VirtualInstant::ZERO);
        let Action::SetTimer { timer, .. } = actions[0] else {
            panic!("expected timer");
        };
        // Vehicle 0 dies by report; its armed timer is now stale.
        let out = c.handle(Event::Message {
            now: VirtualInstant::from_micros(10),
            from: VehicleId(0),
            msg: ToServer::Failed("engine fire".to_string()),
        });
        assert!(out.is_empty());
        let out = c.handle(Event::TimerFired {
            now: VirtualInstant::from_micros(2_000_000),
            timer,
        });
        assert!(out.is_empty(), "superseded timer must be inert");
    }

    #[test]
    fn upload_timeout_retries_with_backoff() {
        let mut c = core(&[0, 1]);
        let mut actions = c.start(VirtualInstant::ZERO);
        let Action::SetTimer { timer, deadline } = actions.remove(0) else {
            panic!("expected timer");
        };
        assert_eq!(timer.vehicle, VehicleId(0));
        // First expiry: a RequestUpload retry and a pushed-back timer.
        let out = c.handle(Event::TimerFired {
            now: deadline,
            timer,
        });
        assert!(matches!(
            out[0],
            Action::Send {
                to: VehicleId(0),
                msg: ToVehicle::RequestUpload
            }
        ));
        let Action::SetTimer {
            timer: retry_timer,
            deadline: retry_deadline,
        } = out[1]
        else {
            panic!("expected re-armed timer");
        };
        assert!(retry_deadline > deadline);
        assert_eq!(retry_timer.generation, timer.generation + 1);
    }

    #[test]
    fn losing_every_link_aborts_on_quorum() {
        let mut c = core(&[0, 1, 2, 3]);
        let _ = c.start(VirtualInstant::ZERO);
        let out = c.handle(Event::LinksClosed {
            now: VirtualInstant::from_micros(5),
        });
        assert!(c.is_finished());
        let aborts = out
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: ToVehicle::Abort(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(aborts, 4, "every vehicle is told why");
        assert!(matches!(
            out.last(),
            Some(Action::Failed(MiddlewareError::QuorumLost {
                alive: 0,
                required: 2,
                total: 4
            }))
        ));
        // Post-mortem events are inert.
        assert!(c
            .handle(Event::LinksClosed {
                now: VirtualInstant::from_micros(6)
            })
            .is_empty());
    }

    #[test]
    fn rejects_empty_and_duplicate_fleets() {
        assert!(matches!(
            ServerCore::new(segments(), &[], PlatformConfig::default(), Registry::new()),
            Err(MiddlewareError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServerCore::new(
                segments(),
                &[VehicleId(7), VehicleId(7)],
                PlatformConfig::default(),
                Registry::new()
            ),
            Err(MiddlewareError::InvalidConfig(_))
        ));
    }
}
