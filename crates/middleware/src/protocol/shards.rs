//! Campaign state sharded by road segment.
//!
//! The crowd-server's unit of spatial parallelism is the road segment
//! (§5.2): patterns, mapping tasks and fused AP estimates all belong to
//! exactly one segment, and nothing in the round protocol couples two
//! segments to each other. This module makes that explicit:
//!
//! * [`ShardTable`] tracks, per segment, which mapping tasks exist and
//!   how many label slots are still open, so the core can observe
//!   independent segments finishing their labeling independently;
//! * [`fuse_sharded`] runs reliability-weighted fusion *per segment*
//!   instead of over the whole map — each shard's fusion reads only its
//!   own estimates, which is the shape a multi-shard server needs;
//! * [`ShardedDatabase`] is the cross-round campaign state: each round
//!   replaces only the shards it actually covered, so independent
//!   segments advance at their own pace across a campaign.

use crate::messages::{codec_err, push_f64, push_u64, wire_capacity, TokenReader};
use crate::messages::{Pattern, SensingUpload, VehicleId};
use crate::segment::{SegmentId, SegmentMap};
use crate::wire::{self, WireMessage, WireReader};
use crate::Result;
use crowdwifi_crowd::fusion::{fuse_submissions, FusedAp, Submission};
use crowdwifi_geo::Point;
use std::collections::{BTreeMap, BTreeSet};

/// Per-segment labeling progress of one round.
#[derive(Debug, Clone, Default)]
pub struct ShardTable {
    shards: BTreeMap<SegmentId, Shard>,
    task_segment: BTreeMap<usize, SegmentId>,
}

#[derive(Debug, Clone, Default)]
struct Shard {
    tasks: BTreeSet<usize>,
    open_slots: usize,
}

impl ShardTable {
    /// Builds the shard table from the round's pattern set: task `i`
    /// belongs to the segment of pattern `i`.
    pub fn new(patterns: &[Pattern]) -> Self {
        let mut table = ShardTable::default();
        for (task_id, pattern) in patterns.iter().enumerate() {
            table
                .shards
                .entry(pattern.segment)
                .or_default()
                .tasks
                .insert(task_id);
            table.task_segment.insert(task_id, pattern.segment);
        }
        table
    }

    /// Number of shards (segments with at least one task).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the table has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Records one label slot opening for `task_id` (initial assignment
    /// or reassignment).
    pub fn slot_opened(&mut self, task_id: usize) {
        if let Some(seg) = self.task_segment.get(&task_id) {
            if let Some(shard) = self.shards.get_mut(seg) {
                shard.open_slots += 1;
            }
        }
    }

    /// Records one label slot closing for `task_id` (answer received,
    /// or the slot was lost with its vehicle).
    pub fn slot_closed(&mut self, task_id: usize) {
        if let Some(seg) = self.task_segment.get(&task_id) {
            if let Some(shard) = self.shards.get_mut(seg) {
                shard.open_slots = shard.open_slots.saturating_sub(1);
            }
        }
    }

    /// Shards that still have open label slots.
    pub fn open_shards(&self) -> usize {
        self.shards.values().filter(|s| s.open_slots > 0).count()
    }

    /// Task count per shard, in segment-id order.
    pub fn task_counts(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.values().map(|s| s.tasks.len())
    }
}

/// Reliability-weighted fusion run shard by shard: every vehicle's
/// estimates are bucketed into their road segment, each segment fuses
/// only its own submissions, and the results are concatenated in
/// segment-id order. Clusters therefore never straddle a segment
/// boundary, and each shard's fusion is independent of every other —
/// the prerequisite for fanning shards out to separate servers.
pub fn fuse_sharded<'a, I>(
    segments: &SegmentMap,
    uploads: I,
    reliabilities: &BTreeMap<VehicleId, f64>,
    merge_radius: f64,
    spammer_cutoff: f64,
) -> Vec<FusedAp>
where
    I: IntoIterator<Item = &'a SensingUpload>,
{
    let mut per_segment: BTreeMap<SegmentId, Vec<Submission>> = BTreeMap::new();
    for up in uploads {
        let reliability = reliabilities
            .get(&up.vehicle)
            .copied()
            .unwrap_or(0.5)
            .clamp(0.0, 1.0);
        let mut buckets: BTreeMap<SegmentId, Vec<Point>> = BTreeMap::new();
        for est in &up.estimates {
            buckets
                .entry(segments.segment_of(est.position))
                .or_default()
                .push(est.position);
        }
        for (seg, positions) in buckets {
            per_segment
                .entry(seg)
                .or_default()
                .push(Submission::new(positions, reliability));
        }
    }
    per_segment
        .into_values()
        .flat_map(|subs| fuse_submissions(&subs, merge_radius, spammer_cutoff, 0.0))
        .collect()
}

/// One shard of the campaign-level AP database.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Fused APs of this segment, from the last round that covered it.
    pub fused: Vec<FusedAp>,
    /// Index of the round that last updated this shard.
    pub round: usize,
}

/// The campaign's fused AP database, sharded by road segment.
///
/// Each round only replaces the shards it actually produced estimates
/// for; segments the round never covered keep the state of whichever
/// earlier round last saw them. Independent segments therefore advance
/// across the campaign at their own pace — exactly the property a
/// horizontally sharded crowd-server relies on.
#[derive(Debug, Clone, Default)]
pub struct ShardedDatabase {
    shards: BTreeMap<SegmentId, ShardState>,
}

impl ShardedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        ShardedDatabase::default()
    }

    /// Folds one round's fused output into the database: every shard
    /// the round covered is replaced wholesale, every other shard is
    /// left untouched.
    pub fn absorb(&mut self, round: usize, segments: &SegmentMap, fused: &[FusedAp]) {
        let mut touched: BTreeMap<SegmentId, Vec<FusedAp>> = BTreeMap::new();
        for &ap in fused {
            touched
                .entry(segments.segment_of(ap.position))
                .or_default()
                .push(ap);
        }
        for (seg, aps) in touched {
            self.shards.insert(seg, ShardState { fused: aps, round });
        }
    }

    /// Number of shards with any state.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether no round has populated the database yet.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The state of one shard, if any round has covered it.
    pub fn shard(&self, segment: SegmentId) -> Option<&ShardState> {
        self.shards.get(&segment)
    }

    /// All fused APs, concatenated in segment-id order.
    pub fn all(&self) -> Vec<FusedAp> {
        self.shards
            .values()
            .flat_map(|s| s.fused.iter().copied())
            .collect()
    }

    /// Fused APs within `radius` of `position` (a user-vehicle
    /// download served from the sharded database).
    pub fn lookup(&self, position: Point, radius: f64) -> Vec<FusedAp> {
        self.shards
            .values()
            .flat_map(|s| s.fused.iter().copied())
            .filter(|ap| ap.position.distance(position) <= radius)
            .collect()
    }

    /// Encodes the database shard by shard in the protocol's token wire
    /// format (tag `D`): per segment its id, last-covering round and
    /// fused APs, floats as exact bit patterns. This is the payload of
    /// the durability layer's periodic snapshots, so the per-segment
    /// framing matters: a future multi-server deployment can snapshot
    /// and ship shards independently.
    pub fn to_wire(&self) -> String {
        let mut out = String::from("D");
        push_u64(&mut out, self.shards.len() as u64);
        for (seg, state) in &self.shards {
            push_u64(&mut out, u64::from(seg.0));
            push_u64(&mut out, state.round as u64);
            push_u64(&mut out, state.fused.len() as u64);
            for ap in &state.fused {
                push_f64(&mut out, ap.position.x);
                push_f64(&mut out, ap.position.y);
                push_f64(&mut out, ap.support);
                push_u64(&mut out, ap.contributors as u64);
            }
        }
        out
    }

    /// Decodes a database produced by [`ShardedDatabase::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::MiddlewareError::Codec`] on unknown tags,
    /// truncated input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        if r.tag()? != "D" {
            return Err(codec_err("expected ShardedDatabase tag D"));
        }
        let n = r.usize()?;
        let mut shards = BTreeMap::new();
        for _ in 0..n {
            let seg = SegmentId(r.u32()?);
            let round = r.usize()?;
            let m = r.usize()?;
            let mut fused = Vec::with_capacity(wire_capacity(m));
            for _ in 0..m {
                fused.push(FusedAp {
                    position: r.point()?,
                    support: r.f64()?,
                    contributors: r.usize()?,
                });
            }
            shards.insert(seg, ShardState { fused, round });
        }
        r.finish()?;
        Ok(ShardedDatabase { shards })
    }
}

impl WireMessage for ShardedDatabase {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        wire::put_header(out, wire::TAG_DATABASE);
        wire::put_varint(out, self.shards.len() as u64);
        for (seg, state) in &self.shards {
            wire::put_varint(out, u64::from(seg.0));
            wire::put_varint(out, state.round as u64);
            wire::put_varint(out, state.fused.len() as u64);
            for ap in &state.fused {
                wire::put_f64(out, ap.position.x);
                wire::put_f64(out, ap.position.y);
                wire::put_f64(out, ap.support);
                wire::put_varint(out, ap.contributors as u64);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        match r.header()? {
            wire::TAG_DATABASE => {}
            t => {
                return Err(codec_err(format!(
                    "unknown ShardedDatabase binary tag {t:#04x}"
                )))
            }
        }
        let n = r.usize()?;
        let mut shards = BTreeMap::new();
        for _ in 0..n {
            let seg = SegmentId(r.u32()?);
            let round = r.usize()?;
            let m = r.usize()?;
            let mut fused = Vec::with_capacity(wire_capacity(m));
            for _ in 0..m {
                fused.push(FusedAp {
                    position: r.point()?,
                    support: r.f64()?,
                    contributors: r.usize()?,
                });
            }
            shards.insert(seg, ShardState { fused, round });
        }
        Ok(ShardedDatabase { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_core::ApEstimate;
    use crowdwifi_geo::Rect;

    fn map() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 100.0)).unwrap(),
            100.0,
        )
    }

    fn upload(vehicle: u32, points: &[(f64, f64)]) -> SensingUpload {
        SensingUpload {
            vehicle: VehicleId(vehicle),
            estimates: points
                .iter()
                .map(|&(x, y)| ApEstimate {
                    position: Point::new(x, y),
                    credit: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn shard_table_tracks_open_slots_per_segment() {
        let patterns = vec![
            Pattern {
                segment: SegmentId(0),
                aps: vec![Point::new(10.0, 10.0)],
            },
            Pattern {
                segment: SegmentId(1),
                aps: vec![Point::new(150.0, 10.0)],
            },
            Pattern {
                segment: SegmentId(0),
                aps: vec![Point::new(20.0, 20.0)],
            },
        ];
        let mut t = ShardTable::new(&patterns);
        assert_eq!(t.len(), 2);
        assert_eq!(t.task_counts().collect::<Vec<_>>(), vec![2, 1]);
        t.slot_opened(0);
        t.slot_opened(1);
        assert_eq!(t.open_shards(), 2);
        t.slot_closed(0);
        assert_eq!(t.open_shards(), 1);
        t.slot_closed(1);
        assert_eq!(t.open_shards(), 0);
        // Closing an already-closed slot saturates instead of wrapping.
        t.slot_closed(1);
        assert_eq!(t.open_shards(), 0);
    }

    #[test]
    fn sharded_fusion_never_merges_across_segments() {
        let m = map();
        // Two estimates 30 m apart but in different 100 m segments;
        // a 50 m merge radius would fuse them globally.
        let ups = [upload(0, &[(85.0, 50.0)]), upload(1, &[(115.0, 50.0)])];
        let rel: BTreeMap<VehicleId, f64> = [(VehicleId(0), 0.9), (VehicleId(1), 0.9)]
            .into_iter()
            .collect();
        let fused = fuse_sharded(&m, ups.iter(), &rel, 50.0, 0.0);
        assert_eq!(fused.len(), 2, "segment boundary must split the cluster");
        let global = fuse_submissions(
            &[
                Submission::new(vec![Point::new(85.0, 50.0)], 0.9),
                Submission::new(vec![Point::new(115.0, 50.0)], 0.9),
            ],
            50.0,
            0.0,
            0.0,
        );
        assert_eq!(global.len(), 1, "sanity: global fusion would merge them");
    }

    #[test]
    fn sharded_fusion_honors_spammer_cutoff() {
        let m = map();
        let ups = [upload(0, &[(50.0, 50.0)]), upload(1, &[(52.0, 50.0)])];
        let rel: BTreeMap<VehicleId, f64> = [(VehicleId(0), 0.9), (VehicleId(1), 0.1)]
            .into_iter()
            .collect();
        let fused = fuse_sharded(&m, ups.iter(), &rel, 25.0, 0.3);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].contributors, 1, "spammer excluded from fusion");
    }

    #[test]
    fn database_replaces_only_covered_shards() {
        let m = map();
        let mut db = ShardedDatabase::new();
        let ap = |x: f64, support: f64| FusedAp {
            position: Point::new(x, 50.0),
            support,
            contributors: 1,
        };
        db.absorb(0, &m, &[ap(50.0, 1.0), ap(250.0, 1.0)]);
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.shard(m.segment_of(Point::new(50.0, 50.0)))
                .unwrap()
                .round,
            0
        );
        // Round 1 covers only the first segment.
        db.absorb(1, &m, &[ap(55.0, 2.0)]);
        let first = db.shard(m.segment_of(Point::new(50.0, 50.0))).unwrap();
        assert_eq!(first.round, 1);
        assert_eq!(first.fused[0].support, 2.0);
        let last = db.shard(m.segment_of(Point::new(250.0, 50.0))).unwrap();
        assert_eq!(last.round, 0, "uncovered shard keeps its old state");
        assert_eq!(db.all().len(), 2);
        assert_eq!(db.lookup(Point::new(250.0, 50.0), 20.0).len(), 1);
        assert!(db.lookup(Point::new(150.0, 50.0), 5.0).is_empty());
    }
}
