//! Quorum math and the round casualty ledger.

use super::fates::{FateRecord, VehicleFate};
use crate::messages::VehicleId;
use crate::server::CrowdServer;
use crate::{MiddlewareError, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Minimum vehicles that must finish for a fleet of `n` under `quorum`.
pub fn quorum_required(n: usize, quorum: f64) -> usize {
    ((quorum * n as f64).ceil() as usize).clamp(1, n)
}

/// Mutable bookkeeping of one round's casualties.
#[derive(Debug, Default)]
pub(crate) struct RoundLedger {
    pub(crate) fates: BTreeMap<VehicleId, FateRecord>,
    pub(crate) retries: BTreeMap<VehicleId, u32>,
    pub(crate) dead: BTreeSet<VehicleId>,
}

impl RoundLedger {
    pub(crate) fn new() -> Self {
        RoundLedger::default()
    }

    pub(crate) fn retries_of(&self, v: VehicleId) -> u32 {
        self.retries.get(&v).copied().unwrap_or(0)
    }

    /// Declares `v` dead: records its fate and stops assigning it work.
    pub(crate) fn mark_dead(&mut self, server: &mut CrowdServer, v: VehicleId, fate: VehicleFate) {
        self.dead.insert(v);
        server.set_participation(v, false);
        self.fates.insert(
            v,
            FateRecord {
                fate,
                retries: self.retries_of(v),
            },
        );
    }

    pub(crate) fn alive(&self, server: &CrowdServer) -> Vec<VehicleId> {
        server
            .vehicles()
            .iter()
            .copied()
            .filter(|v| !self.dead.contains(v))
            .collect()
    }

    pub(crate) fn check_quorum(&self, server: &CrowdServer, quorum: f64) -> Result<()> {
        let total = server.vehicles().len();
        let alive = total - self.dead.len();
        let required = quorum_required(total, quorum);
        if alive < required {
            return Err(MiddlewareError::QuorumLost {
                alive,
                required,
                total,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_required_covers_edges() {
        assert_eq!(quorum_required(3, 0.5), 2);
        assert_eq!(quorum_required(4, 0.5), 2);
        assert_eq!(quorum_required(5, 1.0), 5);
        assert_eq!(quorum_required(5, 0.01), 1);
        assert_eq!(quorum_required(1, 0.5), 1);
    }
}
