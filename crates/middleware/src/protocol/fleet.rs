//! Segment-sharded round core for fleet-scale rounds.
//!
//! [`FleetCore`] splits one round's server between a single **control
//! plane** and many **data shards**:
//!
//! * the control plane is a plain [`ServerCore`] — phases, deadlines,
//!   retries, quorum, fates and the protocol RNG all live there, so the
//!   protocol semantics (and the RNG stream, which is consumed at phase
//!   transitions) are exactly those of the unsharded core;
//! * the data plane is a set of `SegmentShard`s, one per
//!   segment-shard, routed by [`ShardRouter`]: every accepted upload's
//!   estimates are bucketed per road segment and mirrored into the
//!   owning shard, and at round close each shard fuses its own segments
//!   independently (optionally in parallel across a worker budget).
//!
//! Cross-shard consolidation happens once, when the control plane emits
//! [`Action::Completed`]: the per-shard fusion results are merged in
//! segment-id order — the same order the in-line
//! [`fuse_sharded`](super::shards::fuse_sharded) pass produces — the
//! merged map is installed back into the control core, and the
//! quorum/fate bookkeeping of the report is left untouched (it was
//! computed by the control plane, which saw every vehicle). The result
//! is byte-identical `state_digest` and fused maps to the unsharded
//! core on the same seed and event sequence, which is what lets the
//! fleet transport swap [`FleetCore`] in without perturbing a single
//! test vector.

use super::{Action, Event, PlatformConfig, ServerCore, VirtualInstant};
use crate::messages::{ToServer, VehicleId};
use crate::segment::{SegmentId, SegmentMap};
use crate::Result;
use crowdwifi_core::par::par_map;
use crowdwifi_crowd::fusion::{fuse_submissions, FusedAp, Submission};
use crowdwifi_geo::Point;
use crowdwifi_obs::Registry;
use std::collections::{BTreeMap, BTreeSet};

/// Maps road segments onto segment-shards. Any deterministic
/// segment-to-shard function preserves byte-equality with the in-line
/// fusion pass, because consolidation re-merges per segment id; the
/// modulo rule keeps neighbouring segments on different shards, which
/// balances load when activity is spatially clustered.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shard_count: usize,
}

impl ShardRouter {
    /// A router over `shard_count` shards (clamped to at least one).
    pub fn new(shard_count: usize) -> Self {
        ShardRouter {
            shard_count: shard_count.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `segment`.
    pub fn shard_of(&self, segment: SegmentId) -> usize {
        segment.0 as usize % self.shard_count
    }
}

/// One data shard: the per-segment upload estimates it owns. Vehicles
/// iterate in id order within each segment and positions keep their
/// estimate order, so per-segment fusion sees submissions in exactly
/// the order the unsharded pass builds them.
#[derive(Debug, Default)]
struct SegmentShard {
    uploads: BTreeMap<SegmentId, BTreeMap<VehicleId, Vec<Point>>>,
}

impl SegmentShard {
    fn insert(&mut self, segment: SegmentId, vehicle: VehicleId, positions: Vec<Point>) {
        self.uploads
            .entry(segment)
            .or_default()
            .insert(vehicle, positions);
    }

    fn remove(&mut self, segment: SegmentId, vehicle: VehicleId) {
        if let Some(per_vehicle) = self.uploads.get_mut(&segment) {
            per_vehicle.remove(&vehicle);
            if per_vehicle.is_empty() {
                self.uploads.remove(&segment);
            }
        }
    }

    /// Fuses every segment this shard owns, reproducing
    /// [`fuse_sharded`](super::shards::fuse_sharded) per segment:
    /// submissions in vehicle-id order, reliability defaulted to the
    /// 0.5 prior and clamped, same `fuse_submissions` parameters.
    fn fuse(
        &self,
        reliabilities: &BTreeMap<VehicleId, f64>,
        merge_radius: f64,
        spammer_cutoff: f64,
    ) -> BTreeMap<SegmentId, Vec<FusedAp>> {
        self.uploads
            .iter()
            .map(|(&segment, by_vehicle)| {
                let subs: Vec<Submission> = by_vehicle
                    .iter()
                    .map(|(vehicle, positions)| {
                        let reliability = reliabilities
                            .get(vehicle)
                            .copied()
                            .unwrap_or(0.5)
                            .clamp(0.0, 1.0);
                        Submission::new(positions.clone(), reliability)
                    })
                    .collect();
                (
                    segment,
                    fuse_submissions(&subs, merge_radius, spammer_cutoff, 0.0),
                )
            })
            .collect()
    }
}

/// A sharded [`ServerCore`]: one control plane plus per-segment-shard
/// data cores, consolidated at round close. See the [module
/// docs](self) for the split and the byte-equality argument.
#[derive(Debug)]
pub struct FleetCore {
    control: ServerCore,
    router: ShardRouter,
    shards: Vec<SegmentShard>,
    /// Segments each vehicle's current upload occupies, so a replacing
    /// upload evicts its predecessor from every shard it touched.
    placements: BTreeMap<VehicleId, Vec<SegmentId>>,
    workers: usize,
}

impl FleetCore {
    /// Builds the sharded core: the control plane is constructed
    /// exactly as [`ServerCore::new`] (same validation, same RNG seed)
    /// with in-core fusion deferred to consolidation. `shard_count`
    /// and `workers` are clamped to at least one; `workers` bounds the
    /// parallel fan-out of shard fusion at round close.
    ///
    /// # Errors
    ///
    /// As [`ServerCore::new`].
    pub fn new(
        segments: SegmentMap,
        fleet: &[VehicleId],
        config: PlatformConfig,
        registry: Registry,
        shard_count: usize,
        workers: usize,
    ) -> Result<Self> {
        let control = ServerCore::new(segments, fleet, config, registry)?.with_deferred_fusion();
        let router = ShardRouter::new(shard_count);
        let shards = (0..router.shard_count())
            .map(|_| SegmentShard::default())
            .collect();
        Ok(FleetCore {
            control,
            router,
            shards,
            placements: BTreeMap::new(),
            workers: workers.max(1),
        })
    }

    /// The shard layout in force.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Opens the round; see [`ServerCore::start`].
    pub fn start(&mut self, now: VirtualInstant) -> Vec<Action> {
        self.control.start(now)
    }

    /// Whether the round has completed or failed.
    pub fn is_finished(&self) -> bool {
        self.control.is_finished()
    }

    /// The control plane's state digest. After consolidation this is
    /// byte-identical to an unsharded core fed the same events.
    pub fn state_digest(&self) -> String {
        self.control.state_digest()
    }

    /// A handle on the metrics registry (clones share state).
    pub(crate) fn registry_handle(&self) -> Registry {
        self.control.registry_handle()
    }

    /// Feeds one event through the control plane, mirrors any accepted
    /// upload into the owning shards, and consolidates the data plane
    /// when the control plane closes the round.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let upload_from = match &event {
            Event::Message {
                from,
                msg: ToServer::Upload(_),
                ..
            } => Some(*from),
            _ => None,
        };
        let mut actions = self.control.handle(event);
        if let Some(vehicle) = upload_from {
            self.sync_upload(vehicle);
        }
        self.consolidate(&mut actions);
        actions
    }

    /// Mirrors `vehicle`'s stored upload (if the control plane accepted
    /// one) into the data shards, evicting whatever that vehicle had
    /// placed before — uploads replace, exactly like
    /// [`CrowdServer::receive_upload`](crate::server::CrowdServer::receive_upload).
    fn sync_upload(&mut self, vehicle: VehicleId) {
        let Some(upload) = self.control.upload_of(vehicle) else {
            return; // rejected (unknown sender) or consumed by an abort
        };
        let segments = self.control.segment_map();
        let mut buckets: BTreeMap<SegmentId, Vec<Point>> = BTreeMap::new();
        for est in &upload.estimates {
            buckets
                .entry(segments.segment_of(est.position))
                .or_default()
                .push(est.position);
        }
        if let Some(old) = self.placements.remove(&vehicle) {
            for segment in old {
                self.shards[self.router.shard_of(segment)].remove(segment, vehicle);
            }
        }
        let mut placed = Vec::with_capacity(buckets.len());
        for (segment, positions) in buckets {
            self.shards[self.router.shard_of(segment)].insert(segment, vehicle, positions);
            placed.push(segment);
        }
        self.placements.insert(vehicle, placed);
    }

    /// On [`Action::Completed`]: fuse every shard (fanning out across
    /// the worker budget), merge per segment id, install the result
    /// into both the report and the control core, and record the
    /// `platform.shards.fused` gauge the in-line path would have set.
    fn consolidate(&mut self, actions: &mut [Action]) {
        for action in actions.iter_mut() {
            let Action::Completed(report) = action else {
                continue;
            };
            let (merge_radius, spammer_cutoff) = self.control.fusion_params();
            let fused: Vec<FusedAp> = {
                // Reliabilities in the sealed outcome already carry the
                // dead-vehicle penalties and cover every registered
                // vehicle, so they equal the crowd-server's internal
                // map that in-line fusion reads.
                let reliabilities = &report.outcome.reliabilities;
                let per_shard = par_map(&self.shards, self.workers, |_, shard| {
                    shard.fuse(reliabilities, merge_radius, spammer_cutoff)
                });
                // Shards own disjoint segment sets, so folding the
                // per-shard maps re-creates the global segment-id order
                // regardless of how segments were partitioned.
                let mut merged: BTreeMap<SegmentId, Vec<FusedAp>> = BTreeMap::new();
                for shard_result in per_shard {
                    merged.extend(shard_result);
                }
                merged.into_values().flatten().collect()
            };
            let segments = self.control.segment_map();
            let fused_segments: BTreeSet<SegmentId> = fused
                .iter()
                .map(|ap| segments.segment_of(ap.position))
                .collect();
            self.registry_handle()
                .gauge("platform.shards.fused")
                .set(fused_segments.len() as i64);
            report.fused = fused.clone();
            self.control.install_fused(fused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{MappingAnswer, SensingUpload, ToVehicle};
    use crowdwifi_core::ApEstimate;
    use crowdwifi_geo::Rect;
    use std::collections::VecDeque;

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 300.0)).unwrap(),
            150.0,
        )
    }

    fn fleet() -> Vec<VehicleId> {
        (0..5).map(VehicleId).collect()
    }

    fn upload(v: u32, shift: f64) -> ToServer {
        // Each vehicle senses two APs in different segments so uploads
        // straddle shards.
        let base = 40.0 + f64::from(v) + shift;
        ToServer::Upload(SensingUpload {
            vehicle: VehicleId(v),
            estimates: vec![
                ApEstimate {
                    position: Point::new(base, 60.0),
                    credit: 2.0,
                },
                ApEstimate {
                    position: Point::new(base + 160.0, 220.0),
                    credit: 2.0,
                },
            ],
        })
    }

    /// Drives a core through a fixed script: every vehicle uploads
    /// (vehicle 0 twice, exercising upload replacement), then answers
    /// every assigned task affirmatively. Returns the Completed report.
    fn run_script<F>(mut start: Vec<Action>, mut handle: F) -> super::super::PlatformReport
    where
        F: FnMut(Event) -> Vec<Action>,
    {
        let mut queue: VecDeque<Event> = VecDeque::new();
        let mut t = 0u64;
        let next = |t: &mut u64| {
            *t += 1_000;
            VirtualInstant::from_micros(*t)
        };
        for v in 0..4 {
            queue.push_back(Event::Message {
                now: next(&mut t),
                from: VehicleId(v),
                msg: upload(v, 0.0),
            });
        }
        // Replacement upload from vehicle 0 while uploads are open.
        queue.push_back(Event::Message {
            now: next(&mut t),
            from: VehicleId(0),
            msg: upload(0, 7.0),
        });
        queue.push_back(Event::Message {
            now: next(&mut t),
            from: VehicleId(4),
            msg: upload(4, 0.0),
        });
        let mut report = None;
        let mut pending: Vec<Action> = std::mem::take(&mut start);
        loop {
            for action in pending.drain(..) {
                match action {
                    Action::Send {
                        to,
                        msg: ToVehicle::Assign(tasks),
                    } if !tasks.is_empty() => {
                        let answers: Vec<MappingAnswer> = tasks
                            .iter()
                            .map(|task| MappingAnswer {
                                vehicle: to,
                                task_id: task.task_id,
                                label: 1,
                            })
                            .collect();
                        queue.push_back(Event::Message {
                            now: next(&mut t),
                            from: to,
                            msg: ToServer::Answers(answers),
                        });
                    }
                    Action::Completed(r) => report = Some(*r),
                    Action::Failed(e) => panic!("round failed: {e}"),
                    _ => {}
                }
            }
            let Some(event) = queue.pop_front() else {
                break;
            };
            pending = handle(event);
        }
        report.expect("round must complete")
    }

    #[test]
    fn sharded_core_matches_inline_core_byte_for_byte() {
        let config = PlatformConfig {
            workers_per_task: 3,
            seed: 11,
            ..PlatformConfig::default()
        };
        let mut inline = ServerCore::new(segments(), &fleet(), config, Registry::new()).unwrap();
        let inline_report = run_script(inline.start(VirtualInstant::ZERO), |e| inline.handle(e));
        let mut sharded =
            FleetCore::new(segments(), &fleet(), config, Registry::new(), 3, 2).unwrap();
        let sharded_report = run_script(sharded.start(VirtualInstant::ZERO), |e| sharded.handle(e));

        assert!(inline.is_finished() && sharded.is_finished());
        assert_eq!(inline.state_digest(), sharded.state_digest());
        assert!(!inline_report.fused.is_empty());
        assert_eq!(
            format!("{:?}", inline_report.fused),
            format!("{:?}", sharded_report.fused)
        );
        assert_eq!(
            format!("{:?}", inline_report.outcome),
            format!("{:?}", sharded_report.outcome)
        );
        assert_eq!(inline_report.health, sharded_report.health);
    }

    #[test]
    fn shard_count_does_not_change_the_fused_map() {
        let config = PlatformConfig {
            workers_per_task: 3,
            seed: 23,
            ..PlatformConfig::default()
        };
        let mut baseline: Option<(String, String)> = None;
        for shard_count in [1usize, 2, 7] {
            let mut core = FleetCore::new(
                segments(),
                &fleet(),
                config,
                Registry::new(),
                shard_count,
                1,
            )
            .unwrap();
            let report = run_script(core.start(VirtualInstant::ZERO), |e| core.handle(e));
            let key = (core.state_digest(), format!("{:?}", report.fused));
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(*b, key, "shard_count {shard_count} diverged"),
            }
        }
    }

    #[test]
    fn router_covers_all_shards_and_clamps() {
        let router = ShardRouter::new(0);
        assert_eq!(router.shard_count(), 1);
        assert_eq!(router.shard_of(SegmentId(42)), 0);
        let router = ShardRouter::new(4);
        let hit: BTreeSet<usize> = (0..16).map(|s| router.shard_of(SegmentId(s))).collect();
        assert_eq!(hit.len(), 4, "modulo routing uses every shard");
    }
}
