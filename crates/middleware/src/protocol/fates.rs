//! Vehicle fates: the server-side classification of how each fleet
//! member's round ended, plus the round-health verdict derived from
//! them.

/// Overall health of a finished round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundHealth {
    /// Every vehicle completed on the first try; full coverage.
    Complete,
    /// The round finished, but only after recovery actions: retries,
    /// vehicle deaths, task reassignment, or lost label slots.
    Degraded,
}

/// Protocol phase in which a vehicle was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPhase {
    /// Collecting coarse sensing uploads.
    Upload,
    /// Collecting mapping-task answers.
    Labeling,
}

/// The server-side verdict on one vehicle's round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VehicleFate {
    /// Answered everything it was asked.
    Completed,
    /// Reported its own failure with this reason.
    Reported(String),
    /// Went silent and missed its deadline after all retries.
    TimedOut(RoundPhase),
    /// Its link closed (with every other outstanding vehicle) before
    /// responding.
    Vanished(RoundPhase),
    /// It sent a frame that failed to decode; the server stopped
    /// trusting it rather than fail the round.
    Quarantined,
}

/// Per-vehicle fate plus how many retries it cost the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FateRecord {
    /// How the server classified the vehicle.
    pub fate: VehicleFate,
    /// Deadline-expiry retries spent on this vehicle (both phases).
    pub retries: u32,
}

/// Short, stable label of a fate for metric names and event fields.
pub fn fate_label(fate: &VehicleFate) -> &'static str {
    match fate {
        VehicleFate::Completed => "completed",
        VehicleFate::Reported(_) => "reported",
        VehicleFate::TimedOut(_) => "timed_out",
        VehicleFate::Vanished(_) => "vanished",
        VehicleFate::Quarantined => "quarantined",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_labels_are_stable() {
        assert_eq!(fate_label(&VehicleFate::Completed), "completed");
        assert_eq!(fate_label(&VehicleFate::Reported("x".into())), "reported");
        assert_eq!(
            fate_label(&VehicleFate::TimedOut(RoundPhase::Upload)),
            "timed_out"
        );
        assert_eq!(
            fate_label(&VehicleFate::Vanished(RoundPhase::Labeling)),
            "vanished"
        );
        assert_eq!(fate_label(&VehicleFate::Quarantined), "quarantined");
    }
}
