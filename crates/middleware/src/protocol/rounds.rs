//! Round configuration, the round report, and the labeling-phase
//! bookkeeping shared by every transport backend.

use super::fates::{FateRecord, RoundHealth, VehicleFate};
use super::quorum::RoundLedger;
use crate::messages::{codec_err, push_f64, push_u64, TokenReader};
use crate::messages::{MappingTask, VehicleId};
use crate::server::{CrowdServer, RoundOutcome};
use crate::vehicle::VehicleExit;
use crate::wire::{self, WireMessage, WireReader};
use crate::{MiddlewareError, Result};
use crowdwifi_crowd::fusion::FusedAp;
use crowdwifi_obs::Snapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Reliability multiplier applied to vehicles that died mid-round.
pub(crate) const DEAD_RELIABILITY_FACTOR: f64 = 0.5;

/// Fault-tolerance knobs of the round protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTolerance {
    /// How long the server waits for a vehicle's upload or answers
    /// before retrying.
    pub deadline: Duration,
    /// Extra wait added per retry (linear backoff: retry `k` waits
    /// `deadline + k * retry_backoff`).
    pub retry_backoff: Duration,
    /// Retries per vehicle per phase before it is declared dead.
    pub max_retries: u32,
    /// Fraction of the fleet (in `(0, 1]`) that must complete the round
    /// for it to finish — degraded — instead of erroring out with
    /// [`MiddlewareError::QuorumLost`].
    pub quorum: f64,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            deadline: Duration::from_secs(2),
            retry_backoff: Duration::from_millis(250),
            max_retries: 2,
            quorum: 0.5,
        }
    }
}

/// Configuration of one platform round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Bootstrap (random) patterns per active segment.
    pub bootstrap_patterns: usize,
    /// Crowd-vehicles assigned per mapping task.
    pub workers_per_task: usize,
    /// Fusion merge radius in meters.
    pub merge_radius: f64,
    /// Vehicles at or below this inferred reliability are excluded from
    /// fusion.
    pub spammer_cutoff: f64,
    /// Base RNG seed; vehicle `i` uses `seed + i + 1`.
    pub seed: u64,
    /// Deadlines, retries and the completion quorum.
    pub tolerance: FaultTolerance,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            bootstrap_patterns: 2,
            workers_per_task: 5,
            merge_radius: 25.0,
            spammer_cutoff: 0.3,
            seed: 0,
            tolerance: FaultTolerance::default(),
        }
    }
}

impl PlatformConfig {
    /// Encodes the config in the protocol's token wire format (tag
    /// `C`); floats travel as exact bit patterns, durations as
    /// microseconds. Used by the durability layer's WAL header so a
    /// recovered server rebuilds under the *logged* config, not
    /// whatever the restarted process happens to be configured with.
    pub fn to_wire(&self) -> String {
        let mut out = String::from("C");
        push_u64(&mut out, self.bootstrap_patterns as u64);
        push_u64(&mut out, self.workers_per_task as u64);
        push_f64(&mut out, self.merge_radius);
        push_f64(&mut out, self.spammer_cutoff);
        push_u64(&mut out, self.seed);
        push_u64(&mut out, self.tolerance.deadline.as_micros() as u64);
        push_u64(&mut out, self.tolerance.retry_backoff.as_micros() as u64);
        push_u64(&mut out, u64::from(self.tolerance.max_retries));
        push_f64(&mut out, self.tolerance.quorum);
        out
    }

    /// Decodes a config produced by [`PlatformConfig::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Codec`] on unknown tags, truncated
    /// input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        if r.tag()? != "C" {
            return Err(codec_err("expected PlatformConfig tag C"));
        }
        let config = PlatformConfig {
            bootstrap_patterns: r.usize()?,
            workers_per_task: r.usize()?,
            merge_radius: r.f64()?,
            spammer_cutoff: r.f64()?,
            seed: r.u64()?,
            tolerance: FaultTolerance {
                deadline: Duration::from_micros(r.u64()?),
                retry_backoff: Duration::from_micros(r.u64()?),
                max_retries: r.u32()?,
                quorum: r.f64()?,
            },
        };
        r.finish()?;
        Ok(config)
    }
}

impl WireMessage for PlatformConfig {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        wire::put_header(out, wire::TAG_CONFIG);
        wire::put_varint(out, self.bootstrap_patterns as u64);
        wire::put_varint(out, self.workers_per_task as u64);
        wire::put_f64(out, self.merge_radius);
        wire::put_f64(out, self.spammer_cutoff);
        wire::put_varint(out, self.seed);
        wire::put_varint(out, self.tolerance.deadline.as_micros() as u64);
        wire::put_varint(out, self.tolerance.retry_backoff.as_micros() as u64);
        wire::put_varint(out, u64::from(self.tolerance.max_retries));
        wire::put_f64(out, self.tolerance.quorum);
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        match r.header()? {
            wire::TAG_CONFIG => {}
            t => {
                return Err(codec_err(format!(
                    "unknown PlatformConfig binary tag {t:#04x}"
                )))
            }
        }
        Ok(PlatformConfig {
            bootstrap_patterns: r.usize()?,
            workers_per_task: r.usize()?,
            merge_radius: r.f64()?,
            spammer_cutoff: r.f64()?,
            seed: r.varint()?,
            tolerance: FaultTolerance {
                deadline: Duration::from_micros(r.varint()?),
                retry_backoff: Duration::from_micros(r.varint()?),
                max_retries: r.u32()?,
                quorum: r.f64()?,
            },
        })
    }
}

/// Checks a [`PlatformConfig`] before any driver starts, so bad knobs
/// surface as a typed error instead of a downstream panic or silently
/// nonsensical round.
pub fn validate_config(config: &PlatformConfig) -> Result<()> {
    let reject = |why: String| Err(MiddlewareError::InvalidConfig(why));
    if config.workers_per_task == 0 {
        return reject("workers_per_task must be at least 1".to_string());
    }
    if !config.spammer_cutoff.is_finite() || !(0.0..=1.0).contains(&config.spammer_cutoff) {
        return reject(format!(
            "spammer_cutoff must lie in [0, 1], got {}",
            config.spammer_cutoff
        ));
    }
    if !config.merge_radius.is_finite() || config.merge_radius <= 0.0 {
        return reject(format!(
            "merge_radius must be positive and finite, got {}",
            config.merge_radius
        ));
    }
    let t = &config.tolerance;
    if t.deadline.is_zero() {
        return reject("tolerance.deadline must be non-zero".to_string());
    }
    if !t.quorum.is_finite() || t.quorum <= 0.0 || t.quorum > 1.0 {
        return reject(format!(
            "tolerance.quorum must lie in (0, 1], got {}",
            t.quorum
        ));
    }
    Ok(())
}

/// Result of a full platform round.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// The crowdsourcing outcome (accepted patterns, reliabilities).
    pub outcome: RoundOutcome,
    /// The fused fine-grained AP estimates, fused shard by shard
    /// (road segment by road segment) and concatenated in segment-id
    /// order.
    pub fused: Vec<FusedAp>,
    /// Whether the round needed any recovery action.
    pub health: RoundHealth,
    /// Server-side fate of every vehicle in the fleet.
    pub fates: BTreeMap<VehicleId, FateRecord>,
    /// Vehicle-side exit classification (how each driver-side vehicle
    /// ended).
    pub exits: BTreeMap<VehicleId, VehicleExit>,
    /// Mapping tasks moved from dead vehicles to healthy ones.
    pub reassigned_tasks: usize,
    /// Label slots that could not be reassigned (coverage lost against
    /// the intended (ℓ,γ)-regular assignment).
    pub lost_label_slots: usize,
    /// Round metrics: per-phase timers, retry / fate / reassignment
    /// counters, observed fault-injection totals, fleet / quorum /
    /// shard gauges, plus a `vehicle.dead` event per casualty. The
    /// [`Snapshot::deterministic`] projection (which drops the timing
    /// histograms) is byte-identical across same-seed runs of the same
    /// fleet, config and fault plan — on *any* transport backend.
    pub metrics: Snapshot,
}

impl PlatformReport {
    /// Vehicles the server declared dead this round.
    pub fn dead_vehicles(&self) -> Vec<VehicleId> {
        self.fates
            .iter()
            .filter(|(_, r)| r.fate != VehicleFate::Completed)
            .map(|(&v, _)| v)
            .collect()
    }

    /// The transport-independent projection of this report: everything
    /// except timing histograms, which measure driver-dependent clock
    /// spans (wall time on the thread backend, virtual time on the sim
    /// backend). Two same-seed rounds of the same fleet, config and
    /// fault plan produce identical projections on every backend.
    pub fn deterministic(&self) -> PlatformReport {
        PlatformReport {
            metrics: self.metrics.deterministic(),
            ..self.clone()
        }
    }
}

/// Mutable state of the answer-collection phase, grouped so the
/// reassignment path can be one method shared by every backend.
#[derive(Debug, Default)]
pub(crate) struct LabelingState {
    /// Tasks each vehicle still owes, by task id.
    pub(crate) outstanding: BTreeMap<VehicleId, BTreeSet<usize>>,
    /// (vehicle, task) pairs already answered, so reassignment never
    /// hands a task back to a vehicle whose label is already counted.
    pub(crate) answered: BTreeSet<(VehicleId, usize)>,
    pub(crate) reassigned: usize,
    pub(crate) lost: usize,
}

impl LabelingState {
    /// Moves the orphaned tasks of dead `v` to healthy candidates: for
    /// each orphan, the least-loaded survivor that has neither answered
    /// nor currently holds the task. Unplaceable orphans count as lost
    /// label slots. Returns the per-survivor task batches the caller
    /// must deliver (and arm fresh deadlines for).
    pub(crate) fn reassign_orphans(
        &mut self,
        server: &CrowdServer,
        ledger: &RoundLedger,
        v: VehicleId,
    ) -> BTreeMap<VehicleId, Vec<MappingTask>> {
        let orphans: Vec<usize> = self
            .outstanding
            .remove(&v)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let mut batches: BTreeMap<VehicleId, Vec<MappingTask>> = BTreeMap::new();
        if orphans.is_empty() {
            return batches;
        }
        let alive = ledger.alive(server);
        // Per-vehicle load = labels already given + labels still owed;
        // picking the min keeps the degraded assignment as close to
        // γ-balanced as the survivors allow. Done-counts come from one
        // pass over `answered` rather than a scan per survivor, which
        // matters when a fleet-scale round loses a vehicle late.
        let mut done_counts: BTreeMap<VehicleId, usize> = BTreeMap::new();
        for &(aw, _) in &self.answered {
            *done_counts.entry(aw).or_insert(0) += 1;
        }
        let mut load: BTreeMap<VehicleId, usize> = alive
            .iter()
            .map(|&w| {
                let done = done_counts.get(&w).copied().unwrap_or(0);
                let owed = self.outstanding.get(&w).map_or(0, |s| s.len());
                (w, done + owed)
            })
            .collect();
        for task_id in orphans {
            let candidate = alive
                .iter()
                .copied()
                .filter(|&w| {
                    !self.answered.contains(&(w, task_id))
                        && !self
                            .outstanding
                            .get(&w)
                            .is_some_and(|s| s.contains(&task_id))
                })
                .min_by_key(|&w| (load[&w], w.0));
            match candidate {
                Some(w) => {
                    self.outstanding.entry(w).or_default().insert(task_id);
                    *load.get_mut(&w).expect("alive vehicle") += 1;
                    batches.entry(w).or_default().push(MappingTask {
                        task_id,
                        pattern: server.patterns()[task_id].clone(),
                    });
                    self.reassigned += 1;
                }
                // Every survivor already labeled (or holds) this task:
                // the label slot is unrecoverable.
                None => self.lost += 1,
            }
        }
        batches
    }
}

/// Folds one round's inferred reliabilities into the campaign's
/// long-run EMA (`q ← α·round + (1−α)·previous`, 0.5 prior), updating
/// both the report and the cross-round state. Shared by every
/// transport's campaign driver so a spammer cannot whitewash itself by
/// switching backends.
pub(crate) fn smooth_reliabilities(
    report: &mut PlatformReport,
    long_run: &mut BTreeMap<VehicleId, f64>,
    smoothing: f64,
) {
    for (vehicle, q) in report.outcome.reliabilities.iter_mut() {
        let prev = long_run.get(vehicle).copied().unwrap_or(0.5);
        *q = smoothing * *q + (1.0 - smoothing) * prev;
        long_run.insert(*vehicle, *q);
    }
}
