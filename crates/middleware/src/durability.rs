//! Crash-consistent server state: write-ahead log, snapshots, and the
//! recovery path the chaos harness exercises.
//!
//! The sans-I/O [`ServerCore`] keeps all
//! round state in memory; this module makes that state survive a
//! server crash. The design is deliberately boring:
//!
//! * every [`Event`] the server applies is first appended to a
//!   **write-ahead log** of length-prefixed, CRC32-validated frames
//!   (append-then-apply, [`WalWriter`]), batched between fsyncs;
//! * the log opens with a [`WalHeader`] frame carrying everything
//!   `ServerCore::new` needs (segment map, fleet, config), so a bare
//!   log is sufficient to rebuild the server from nothing;
//! * recovery ([`read_wal`] + [`ServerCore::recover`]) tolerates a
//!   **torn tail** — the first incomplete or CRC-bad frame and
//!   everything after it is dropped, modeling the unsynced suffix a
//!   real crash loses — then replays the surviving events. Because the
//!   protocol core is a deterministic state machine, the replayed
//!   server is byte-identical ([`ServerCore::state_digest`]) to one
//!   that never crashed;
//! * at round close the campaign driver writes a [`SnapshotStore`]
//!   snapshot of the [`ShardedDatabase`] (alternating between two
//!   slots, so a torn snapshot write can never destroy the previous
//!   good one) and compacts the WAL.
//!
//! Storage is behind the pluggable [`LogSink`] trait: [`MemorySink`]
//! keeps the deterministic simulator single-threaded and allocation-
//! only, [`FileSink`] buffers onto a real file for real runs.
//!
//! Crash *injection* lives in [`crate::fault::ServerFault`]: the
//! crate-internal `DurableRound` event host (what the transports'
//! `run_round_durable` drives) consults the plan before every event,
//! and on a scheduled crash drops the live server on the floor,
//! mangles the log tail as instructed, and recovers from storage alone
//! — verifying the recovered digest against the never-crashed server
//! whenever the fault semantics make them comparable.

use crate::fault::{FaultPlan, FaultTally, ServerFault};
use crate::messages::{codec_err, push_str, push_u64, wire_capacity, TokenReader, VehicleId};
use crate::protocol::{Action, Event, PlatformConfig, ServerCore, ShardedDatabase, VirtualInstant};
use crate::segment::SegmentMap;
use crate::transport::EventHost;
use crate::wire::{self, WireMessage, WireReader};
use crate::{MiddlewareError, Result};
use crowdwifi_obs::Registry;
use std::io::Write as _;
use std::sync::Arc;

/// Events appended between fsync batches by default. Count-based (not
/// time-based) so the batching is identical on the virtual-clock and
/// wall-clock backends.
pub const DEFAULT_SYNC_EVERY: u64 = 8;

// ---------------------------------------------------------------------
// Framing (shared with the binary wire codec)
// ---------------------------------------------------------------------

pub use crate::wire::crc32;

/// Frames `payload` as `[len: u32 LE][crc32(payload): u32 LE][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Splits `bytes` into intact frame payloads, applying the torn-tail
/// rule: the first incomplete or CRC-bad frame and everything after it
/// is dropped. Returns the payloads plus how many tail bytes were
/// dropped.
fn split_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break; // incomplete header: torn tail
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            break; // incomplete payload: torn tail
        };
        if crc32(payload) != want {
            break; // corrupted: everything from here on is suspect
        }
        payloads.push(payload);
        offset += 8 + len;
    }
    (payloads, bytes.len() - offset)
}

// ---------------------------------------------------------------------
// Log sinks
// ---------------------------------------------------------------------

/// Where the write-ahead log's bytes live. The simulator uses the
/// in-memory sink (deterministic, single-threaded, no I/O); real
/// deployments use the buffered file sink. `sync` is the durability
/// barrier: bytes appended since the last `sync` are what a crash may
/// tear.
pub trait LogSink {
    /// Appends raw bytes to the log.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Durability`] on I/O failure.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Durability barrier: everything appended so far survives a crash
    /// after this returns.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Durability`] on I/O failure.
    fn sync(&mut self) -> Result<()>;

    /// The log's full current contents (what a restarted process would
    /// find on disk).
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Durability`] on I/O failure.
    fn contents(&mut self) -> Result<Vec<u8>>;

    /// Replaces the log's contents wholesale (log creation and
    /// compaction).
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Durability`] on I/O failure.
    fn reset(&mut self, bytes: &[u8]) -> Result<()>;
}

impl<T: LogSink + ?Sized> LogSink for &mut T {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn sync(&mut self) -> Result<()> {
        (**self).sync()
    }
    fn contents(&mut self) -> Result<Vec<u8>> {
        (**self).contents()
    }
    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        (**self).reset(bytes)
    }
}

/// An in-memory log: a growable byte vector. `sync` is a no-op —
/// memory is "durable" within a simulation, which is exactly what the
/// deterministic chaos harness wants (the *injected* tail truncation
/// models the unsynced suffix instead).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    bytes: Vec<u8>,
}

impl MemorySink {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl LogSink for MemorySink {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
    fn contents(&mut self) -> Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }
    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        self.bytes.clear();
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }
}

fn io_err(op: &str, e: std::io::Error) -> MiddlewareError {
    MiddlewareError::Durability(format!("log {op} failed: {e}"))
}

/// A buffered file-backed log for real runs: appends go through a
/// [`std::io::BufWriter`], `sync` flushes and fsyncs.
#[derive(Debug)]
pub struct FileSink {
    path: std::path::PathBuf,
    writer: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Creates (or truncates) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Durability`] when the file cannot be
    /// created.
    pub fn create(path: impl Into<std::path::PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = std::fs::File::create(&path).map_err(|e| io_err("create", e))?;
        Ok(FileSink {
            path,
            writer: std::io::BufWriter::new(file),
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl LogSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.writer
            .write_all(bytes)
            .map_err(|e| io_err("append", e))
    }
    fn sync(&mut self) -> Result<()> {
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        self.writer
            .get_ref()
            .sync_all()
            .map_err(|e| io_err("fsync", e))
    }
    fn contents(&mut self) -> Result<Vec<u8>> {
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        std::fs::read(&self.path).map_err(|e| io_err("read", e))
    }
    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        let file = std::fs::File::create(&self.path).map_err(|e| io_err("recreate", e))?;
        self.writer = std::io::BufWriter::new(file);
        self.append(bytes)
    }
}

// ---------------------------------------------------------------------
// WAL header + writer + reader
// ---------------------------------------------------------------------

/// The WAL's opening frame: everything needed to rebuild the server
/// from the log alone. Recovery rebuilds under the *logged* config and
/// fleet — not whatever the restarted process is configured with.
#[derive(Debug, Clone)]
pub struct WalHeader {
    /// The round's road-segment map.
    pub segments: SegmentMap,
    /// The registered fleet, in registration order.
    pub fleet: Vec<VehicleId>,
    /// The round's platform configuration.
    pub config: PlatformConfig,
}

impl WalHeader {
    /// Encodes the header (tag `H`, format version 1); the config and
    /// segment map travel as nested wire strings.
    pub fn to_wire(&self) -> String {
        let mut out = String::from("H 1");
        push_str(&mut out, &self.config.to_wire());
        push_str(&mut out, &self.segments.to_wire());
        push_u64(&mut out, self.fleet.len() as u64);
        for v in &self.fleet {
            push_u64(&mut out, u64::from(v.0));
        }
        out
    }

    /// Decodes a header produced by [`WalHeader::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Codec`] on unknown tags or versions,
    /// truncated input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        if r.tag()? != "H" {
            return Err(codec_err("expected WalHeader tag H"));
        }
        let version = r.u64()?;
        if version != 1 {
            return Err(codec_err(format!("unsupported WAL version {version}")));
        }
        let config = PlatformConfig::from_wire(&r.string()?)?;
        let segments = SegmentMap::from_wire(&r.string()?)?;
        let n = r.usize()?;
        let mut fleet = Vec::with_capacity(wire_capacity(n));
        for _ in 0..n {
            fleet.push(VehicleId(r.u32()?));
        }
        r.finish()?;
        Ok(WalHeader {
            segments,
            fleet,
            config,
        })
    }
}

impl WireMessage for WalHeader {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        wire::put_header(out, wire::TAG_WAL_HEADER);
        self.config.encode_binary(out);
        self.segments.encode_binary(out);
        wire::put_varint(out, self.fleet.len() as u64);
        for v in &self.fleet {
            wire::put_varint(out, u64::from(v.0));
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        match r.header()? {
            wire::TAG_WAL_HEADER => {}
            t => return Err(codec_err(format!("unknown WalHeader binary tag {t:#04x}"))),
        }
        let config = PlatformConfig::decode_body(r)?;
        let segments = SegmentMap::decode_body(r)?;
        let n = r.usize()?;
        let mut fleet = Vec::with_capacity(wire_capacity(n));
        for _ in 0..n {
            fleet.push(VehicleId(r.u32()?));
        }
        Ok(WalHeader {
            segments,
            fleet,
            config,
        })
    }
}

/// Appends events to a [`LogSink`] as CRC-framed records — in the
/// binary wire encoding since codec version 2 — fsyncing every
/// [`DEFAULT_SYNC_EVERY`] appends (count-based, so batching is
/// deterministic across backends). Created with the round's header as
/// the first frame; `rewrite` compacts the log in place. One scratch
/// buffer is reused across appends, so the steady-state log path
/// performs zero per-event allocations.
pub struct WalWriter<'a> {
    sink: &'a mut dyn LogSink,
    sync_every: u64,
    unsynced: u64,
    appends: u64,
    syncs: u64,
    scratch: Vec<u8>,
}

impl<'a> WalWriter<'a> {
    /// Resets `sink` to a fresh log holding only the (binary) header
    /// frame, and syncs it.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn create(sink: &'a mut dyn LogSink, header: &WalHeader, sync_every: u64) -> Result<Self> {
        sink.reset(&header.to_frame())?;
        let mut w = WalWriter {
            sink,
            sync_every: sync_every.max(1),
            unsynced: 0,
            appends: 0,
            syncs: 0,
            scratch: Vec::new(),
        };
        w.sync()?;
        Ok(w)
    }

    /// Appends one event frame; every `sync_every` appends trigger a
    /// sync.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn append_event(&mut self, event: &Event) -> Result<()> {
        self.scratch.clear();
        event.encode_frame_into(&mut self.scratch);
        self.sink.append(&self.scratch)?;
        self.appends += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces a durability barrier now.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn sync(&mut self) -> Result<()> {
        self.sink.sync()?;
        self.syncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// The log's full current contents.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn contents(&mut self) -> Result<Vec<u8>> {
        self.sink.contents()
    }

    /// Compaction: replaces the log with a clean header + `events`
    /// sequence and syncs. Used after recovery (so the next crash
    /// recovers from an intact file) and at round close.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn rewrite(&mut self, header: &WalHeader, events: &[Event]) -> Result<()> {
        let mut bytes = header.to_frame();
        for event in events {
            event.encode_frame_into(&mut bytes);
        }
        self.sink.reset(&bytes)?;
        self.sync()
    }

    /// Event frames appended so far (compaction rewrites not counted).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsync batches issued so far (creation, count-triggered, forced
    /// and compaction syncs).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// What [`read_wal`] salvages from a (possibly torn) log.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded opening header.
    pub header: WalHeader,
    /// Every intact logged event, in append order.
    pub events: Vec<Event>,
    /// Bytes dropped from the tail (0 for a cleanly closed log).
    pub dropped_tail_bytes: usize,
    /// The codec the log was written with, dispatched from the header
    /// frame's first payload byte: [`wire::WIRE_VERSION`] for binary
    /// logs, [`wire::TEXT_VERSION`] for logs written before the binary
    /// switch.
    pub codec: u8,
}

/// Parses a WAL byte image, tolerating a torn tail: the first
/// incomplete or CRC-invalid frame and everything after it is dropped
/// (that suffix was never durably synced). Frames that pass the CRC
/// but fail to decode are *not* tail damage — they mean the log was
/// written by something else entirely, and surface as errors.
///
/// The header frame carries the codec version: a first payload byte of
/// [`wire::WIRE_VERSION`] selects the binary decoders, anything else
/// (text headers start with ASCII `H`) routes the whole log through
/// the retained text decoders — so WALs written before the binary
/// switch still recover byte-identically.
///
/// # Errors
///
/// Returns [`MiddlewareError::Durability`] when no intact header frame
/// exists (nothing can be recovered), and [`MiddlewareError::Codec`]
/// when an intact frame fails to decode.
pub fn read_wal(bytes: &[u8]) -> Result<WalReplay> {
    let (payloads, dropped_tail_bytes) = split_frames(bytes);
    let Some((first, rest)) = payloads.split_first() else {
        return Err(MiddlewareError::Durability(
            "WAL unrecoverable: no intact header frame".to_string(),
        ));
    };
    let binary = first.first() == Some(&wire::WIRE_VERSION);
    fn text(p: &[u8]) -> Result<&str> {
        std::str::from_utf8(p).map_err(|_| codec_err("non-UTF-8 WAL frame"))
    }
    let header = if binary {
        WalHeader::decode_binary(first)?
    } else {
        WalHeader::from_wire(text(first)?)?
    };
    let mut events = Vec::with_capacity(rest.len());
    for payload in rest {
        events.push(if binary {
            Event::decode_binary(payload)?
        } else {
            Event::from_wire(text(payload)?)?
        });
    }
    Ok(WalReplay {
        header,
        events,
        dropped_tail_bytes,
        codec: if binary {
            wire::WIRE_VERSION
        } else {
            wire::TEXT_VERSION
        },
    })
}

/// Rebuilds a server from a log sink alone: read (tolerating a torn
/// tail), then snapshot-free replay via
/// [`ServerCore::recover`](crate::protocol::ServerCore::recover).
/// Returns the recovered core, the surviving actions the driver must
/// re-perform (timers to re-arm, possibly a terminal action), and the
/// replay itself.
///
/// # Errors
///
/// As [`read_wal`] and `ServerCore::recover`.
pub fn recover_round(
    sink: &mut dyn LogSink,
    registry: Registry,
) -> Result<(ServerCore, Vec<Action>, WalReplay)> {
    let replay = read_wal(&sink.contents()?)?;
    let (core, actions) = ServerCore::recover(
        replay.header.segments.clone(),
        &replay.header.fleet,
        replay.header.config,
        registry,
        &replay.events,
    )?;
    Ok((core, actions, replay))
}

// ---------------------------------------------------------------------
// Snapshot store
// ---------------------------------------------------------------------

/// A snapshot loaded back from the [`SnapshotStore`].
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The write sequence number the snapshot was stored under.
    pub seq: u64,
    /// The campaign round index the snapshot closed.
    pub round: usize,
    /// The campaign database at that point.
    pub database: ShardedDatabase,
}

/// Periodic [`ShardedDatabase`] snapshots, written alternately into
/// two slots so a torn write can only ever destroy the snapshot being
/// written — the previous good one survives and `load` falls back to
/// it. Each snapshot is one CRC-framed record carrying the write
/// sequence, the round index and the database's per-segment wire
/// encoding.
pub struct SnapshotStore {
    slots: [Box<dyn LogSink>; 2],
    writes: u64,
    torn_writes: u64,
}

impl SnapshotStore {
    /// A store over two caller-provided slots (file sinks for real
    /// runs).
    pub fn new(a: Box<dyn LogSink>, b: Box<dyn LogSink>) -> Self {
        SnapshotStore {
            slots: [a, b],
            writes: 0,
            torn_writes: 0,
        }
    }

    /// A deterministic in-memory store for tests and the simulator.
    pub fn in_memory() -> Self {
        SnapshotStore::new(Box::new(MemorySink::new()), Box::new(MemorySink::new()))
    }

    /// Writes the next snapshot (alternating slots). When `torn` is
    /// set, the write is cut off mid-frame — the injected
    /// `snapshot-torn-write` fault — leaving that slot invalid.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn write(&mut self, round: usize, database: &ShardedDatabase, torn: bool) -> Result<()> {
        let seq = self.writes;
        let mut frame = Vec::new();
        wire::frame_into(&mut frame, |out| {
            wire::put_header(out, wire::TAG_SNAPSHOT);
            wire::put_varint(out, seq);
            wire::put_varint(out, round as u64);
            database.encode_binary(out);
        });
        if torn {
            frame.truncate(frame.len() * 2 / 5);
            self.torn_writes += 1;
        }
        let slot = &mut self.slots[(seq % 2) as usize];
        slot.reset(&frame)?;
        slot.sync()?;
        self.writes += 1;
        Ok(())
    }

    /// Loads the newest intact snapshot, if any slot holds one. A slot
    /// whose frame is torn or whose payload fails to decode is skipped
    /// — that is the whole point of alternating slots.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures (invalid *contents* are skipped,
    /// not errors).
    pub fn load(&mut self) -> Result<Option<LoadedSnapshot>> {
        let mut best: Option<LoadedSnapshot> = None;
        for slot in &mut self.slots {
            let bytes = slot.contents()?;
            let (payloads, _) = split_frames(&bytes);
            let Some(payload) = payloads.first() else {
                continue;
            };
            let Some(snapshot) = decode_snapshot(payload) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| snapshot.seq > b.seq) {
                best = Some(snapshot);
            }
        }
        Ok(best)
    }

    /// Snapshot writes so far (torn ones included).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Snapshot writes that were injected as torn.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes
    }
}

fn decode_snapshot(payload: &[u8]) -> Option<LoadedSnapshot> {
    // Codec dispatch mirrors read_wal: a leading version byte selects
    // the binary decoder; text-era snapshots start with ASCII `P`.
    if payload.first() == Some(&wire::WIRE_VERSION) {
        let mut r = WireReader::new(payload);
        if r.header().ok()? != wire::TAG_SNAPSHOT {
            return None;
        }
        let seq = r.varint().ok()?;
        let round = r.usize().ok()?;
        let database = ShardedDatabase::decode_body(&mut r).ok()?;
        r.finish().ok()?;
        return Some(LoadedSnapshot {
            seq,
            round,
            database,
        });
    }
    let s = std::str::from_utf8(payload).ok()?;
    let mut r = TokenReader::new(s);
    if r.tag().ok()? != "P" {
        return None;
    }
    let seq = r.u64().ok()?;
    let round = r.usize().ok()?;
    let database = ShardedDatabase::from_wire(&r.string().ok()?).ok()?;
    r.finish().ok()?;
    Some(LoadedSnapshot {
        seq,
        round,
        database,
    })
}

// ---------------------------------------------------------------------
// Durable event host (crash injection + recovery)
// ---------------------------------------------------------------------

/// How an injected crash mangles the log before recovery reads it.
enum TailDamage {
    Truncate(usize),
    FlipLastByte,
}

/// The crash-consistent server host both transports can drive: every
/// event is appended to the WAL before it is applied
/// (append-then-apply), and the fault plan's [`ServerFault`] schedule
/// is consulted per event. On a scheduled crash the live core is
/// dropped, the log tail is damaged as the fault dictates, and the
/// server is rebuilt from storage alone — with the recovered state
/// digest checked against the never-crashed server whenever the fault
/// semantics define what "identical" means (the tail-damage faults
/// lose a suffix of events by design, so there the protocol's
/// retry/deadline machinery is what restores equivalence, not replay).
pub(crate) struct DurableRound<'a> {
    core: ServerCore,
    wal: WalWriter<'a>,
    header: WalHeader,
    plan: FaultPlan,
    tally: Arc<FaultTally>,
    /// Monotone count of events offered to the host — the crash
    /// schedule's key. Independent of the append count so a
    /// crash-before-append consumes its schedule slot.
    seen: u64,
    recoveries: u64,
    truncated_tails: u64,
}

impl<'a> DurableRound<'a> {
    pub(crate) fn new(
        segments: SegmentMap,
        fleet: &[VehicleId],
        config: PlatformConfig,
        plan: &FaultPlan,
        wal: &'a mut dyn LogSink,
        tally: Arc<FaultTally>,
    ) -> Result<Self> {
        let core = ServerCore::new(segments.clone(), fleet, config, Registry::new())?;
        let header = WalHeader {
            segments,
            fleet: fleet.to_vec(),
            config,
        };
        let wal = WalWriter::create(wal, &header, DEFAULT_SYNC_EVERY)?;
        Ok(DurableRound {
            core,
            wal,
            header,
            plan: plan.clone(),
            tally,
            seen: 0,
            recoveries: 0,
            truncated_tails: 0,
        })
    }

    /// Kills the live server and rebuilds it from the (possibly
    /// damaged) log. The recovered state replaces `self.core`; the
    /// replay's surviving actions are handed back for the driver to
    /// re-perform. With `expected_digest` set, recovery is verified
    /// byte-identical to the never-crashed server.
    fn crash_and_recover(
        &mut self,
        damage: Option<TailDamage>,
        expected_digest: Option<String>,
    ) -> Result<Vec<Action>> {
        self.recoveries += 1;
        let mut bytes = self.wal.contents()?;
        match damage {
            Some(TailDamage::Truncate(n)) => {
                let keep = bytes.len().saturating_sub(n);
                bytes.truncate(keep);
            }
            Some(TailDamage::FlipLastByte) => {
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0xff;
                }
            }
            None => {}
        }
        let replay = read_wal(&bytes)?;
        if replay.dropped_tail_bytes > 0 {
            self.truncated_tails += 1;
        }
        // Compact the salvaged prefix back into a clean log, so a
        // second crash recovers from an intact file.
        self.wal.rewrite(&self.header, &replay.events)?;
        // A restarted process starts with a fresh metrics registry:
        // replay re-records the protocol counters from scratch, so
        // keeping the old registry would double-count them.
        let (core, actions) = ServerCore::recover(
            self.header.segments.clone(),
            &self.header.fleet,
            self.header.config,
            Registry::new(),
            &replay.events,
        )?;
        if let Some(expected) = expected_digest {
            if core.state_digest() != expected {
                return Err(MiddlewareError::Durability(
                    "recovered server state diverged from the never-crashed server".to_string(),
                ));
            }
        }
        self.core = core;
        Ok(actions)
    }
}

impl EventHost for DurableRound<'_> {
    fn begin(&mut self) -> Result<Vec<Action>> {
        Ok(self.core.start(VirtualInstant::ZERO))
    }

    fn handle(&mut self, event: Event) -> Result<Vec<Action>> {
        let idx = self.seen;
        self.seen += 1;
        match self.plan.server_fault(idx) {
            None => {
                self.wal.append_event(&event)?;
                Ok(self.core.handle(event))
            }
            Some(ServerFault::CrashBeforeAppend) => {
                // The in-flight event dies with the process: the live
                // server never saw it either, so live and recovered
                // must agree exactly.
                self.tally.count_server_crash();
                let expected = self.core.state_digest();
                self.crash_and_recover(None, Some(expected))
            }
            Some(ServerFault::CrashAfterAppend) => {
                // Logged but un-acked: the event's *state* survives via
                // replay, its output actions die with the crash. Apply
                // it to the live core (discarding the doomed actions)
                // purely to compute the expected digest.
                self.wal.append_event(&event)?;
                let _ = self.core.handle(event);
                self.tally.count_server_crash();
                let expected = self.core.state_digest();
                self.crash_and_recover(None, Some(expected))
            }
            Some(ServerFault::CrashTruncateTail(n)) => {
                self.wal.append_event(&event)?;
                self.tally.count_server_crash();
                self.tally.count_torn_wal_tail();
                self.crash_and_recover(Some(TailDamage::Truncate(n)), None)
            }
            Some(ServerFault::CrashCorruptTail) => {
                self.wal.append_event(&event)?;
                self.tally.count_server_crash();
                self.tally.count_torn_wal_tail();
                self.crash_and_recover(Some(TailDamage::FlipLastByte), None)
            }
        }
    }

    fn finish(&mut self) -> Result<()> {
        self.wal.sync()?;
        let reg = self.core.registry_handle();
        reg.counter("durability.appends").add(self.wal.appends());
        reg.counter("durability.fsync_batches")
            .add(self.wal.syncs());
        reg.counter("durability.recoveries").add(self.recoveries);
        reg.counter("durability.truncated_tail")
            .add(self.truncated_tails);
        Ok(())
    }

    fn registry(&self) -> Registry {
        self.core.registry_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_geo::{Point, Rect};

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
            150.0,
        )
    }

    fn header() -> WalHeader {
        WalHeader {
            segments: segments(),
            fleet: vec![VehicleId(0), VehicleId(3), VehicleId(7)],
            config: PlatformConfig {
                seed: 42,
                ..PlatformConfig::default()
            },
        }
    }

    #[test]
    fn crc32_known_answer() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_tolerate_torn_tails() {
        let mut log = encode_frame(b"alpha");
        log.extend_from_slice(&encode_frame(b"beta"));
        log.extend_from_slice(&encode_frame(b"gamma"));
        let (payloads, dropped) = split_frames(&log);
        assert_eq!(payloads, vec![&b"alpha"[..], b"beta", b"gamma"]);
        assert_eq!(dropped, 0);

        // Truncate into the last frame: it and only it is dropped.
        let torn = &log[..log.len() - 3];
        let (payloads, dropped) = split_frames(torn);
        assert_eq!(payloads, vec![&b"alpha"[..], b"beta"]);
        assert_eq!(dropped, 8 + 5 - 3);

        // Corrupt a middle frame: it *and everything after it* goes.
        let mut corrupt = log.clone();
        corrupt[8 + 5 + 8] ^= 0xff; // first payload byte of "beta"
        let (payloads, dropped) = split_frames(&corrupt);
        assert_eq!(payloads, vec![&b"alpha"[..]]);
        assert_eq!(dropped, corrupt.len() - (8 + 5));
    }

    #[test]
    fn wal_header_round_trips() {
        let h = header();
        let decoded = WalHeader::from_wire(&h.to_wire()).unwrap();
        assert_eq!(decoded.fleet, h.fleet);
        assert_eq!(decoded.config, h.config);
        assert_eq!(decoded.segments.to_wire(), h.segments.to_wire());
        assert!(
            WalHeader::from_wire("H 2 s: s: 0").is_err(),
            "future version"
        );
        assert!(WalHeader::from_wire("Z 1").is_err(), "wrong tag");
    }

    #[test]
    fn wal_writer_logs_header_then_events_and_batches_syncs() {
        let mut sink = MemorySink::new();
        let h = header();
        let mut w = WalWriter::create(&mut sink, &h, 2).unwrap();
        assert_eq!(w.syncs(), 1, "creation syncs the header");
        let events = [
            Event::LinksClosed {
                now: VirtualInstant::from_micros(5),
            },
            Event::TimerFired {
                now: VirtualInstant::from_micros(9),
                timer: crate::protocol::TimerId {
                    vehicle: VehicleId(3),
                    generation: 2,
                },
            },
            Event::Message {
                now: VirtualInstant::from_micros(11),
                from: VehicleId(7),
                msg: crate::messages::ToServer::Failed("engine fire".to_string()),
            },
        ];
        for e in &events {
            w.append_event(e).unwrap();
        }
        assert_eq!(w.appends(), 3);
        assert_eq!(w.syncs(), 2, "one count-triggered sync after two appends");
        let replay = read_wal(&w.contents().unwrap()).unwrap();
        assert_eq!(replay.events, events);
        assert_eq!(replay.dropped_tail_bytes, 0);
        assert_eq!(replay.header.fleet, h.fleet);

        // Compaction keeps only what it is told to keep.
        w.rewrite(&h, &events[..1]).unwrap();
        let replay = read_wal(&w.contents().unwrap()).unwrap();
        assert_eq!(replay.events, events[..1]);
    }

    #[test]
    fn read_wal_drops_torn_tail_but_rejects_headerless_logs() {
        let mut sink = MemorySink::new();
        let h = header();
        let mut w = WalWriter::create(&mut sink, &h, 64).unwrap();
        let e = Event::LinksClosed {
            now: VirtualInstant::from_micros(1),
        };
        w.append_event(&e).unwrap();
        w.append_event(&e).unwrap();
        let full = w.contents().unwrap();
        let torn = &full[..full.len() - 2];
        let replay = read_wal(torn).unwrap();
        assert_eq!(replay.events.len(), 1, "torn last event dropped");
        assert_eq!(replay.dropped_tail_bytes, replay_len(&full) - 2);

        assert!(matches!(
            read_wal(&full[..4]),
            Err(MiddlewareError::Durability(_))
        ));
        assert!(matches!(read_wal(b""), Err(MiddlewareError::Durability(_))));
    }

    /// Length of `full` minus its final frame.
    fn replay_len(full: &[u8]) -> usize {
        let (payloads, _) = split_frames(full);
        let last = payloads.last().unwrap();
        8 + last.len()
    }

    #[test]
    fn file_sink_round_trips_through_disk() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/durability-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal-{}.log", std::process::id()));
        let mut sink = FileSink::create(&path).unwrap();
        sink.append(&encode_frame(b"on disk")).unwrap();
        sink.sync().unwrap();
        let bytes = sink.contents().unwrap();
        let (payloads, dropped) = split_frames(&bytes);
        assert_eq!(payloads, vec![&b"on disk"[..]]);
        assert_eq!(dropped, 0);
        sink.reset(&encode_frame(b"compacted")).unwrap();
        let bytes = sink.contents().unwrap();
        let (payloads, _) = split_frames(&bytes);
        assert_eq!(payloads, vec![&b"compacted"[..]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_store_alternates_slots_and_survives_torn_writes() {
        let mut store = SnapshotStore::in_memory();
        assert!(store.load().unwrap().is_none(), "empty store");

        let mut db = ShardedDatabase::new();
        db.absorb(
            0,
            &segments(),
            &[crowdwifi_crowd::fusion::FusedAp {
                position: Point::new(50.0, 30.0),
                support: 1.5,
                contributors: 2,
            }],
        );
        store.write(0, &db, false).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.seq, 0);
        assert_eq!(loaded.round, 0);
        assert_eq!(loaded.database.to_wire(), db.to_wire());

        // A torn second write must not destroy the first snapshot.
        let mut db2 = db.clone();
        db2.absorb(
            1,
            &segments(),
            &[crowdwifi_crowd::fusion::FusedAp {
                position: Point::new(250.0, 30.0),
                support: 2.0,
                contributors: 3,
            }],
        );
        store.write(1, &db2, true).unwrap();
        assert_eq!(store.torn_writes(), 1);
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.seq, 0, "fell back to the previous good slot");
        assert_eq!(loaded.database.to_wire(), db.to_wire());

        // The next good write overwrites the torn slot and wins.
        store.write(2, &db2, false).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.database.to_wire(), db2.to_wire());
    }
}
