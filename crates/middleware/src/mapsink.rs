//! The bridge from campaign round closes into the geo-sharded AP map.
//!
//! [`GeoMapSink`] implements [`RoundSink`]: each round's fused AP
//! estimates (support standing in as consolidation credit, exactly as
//! the sharded campaign database treats them) are absorbed into a
//! [`GeoMap`], stamped with a virtual clock derived from the round
//! index. Optionally the sink runs the map's TTL/transient eviction
//! every `k` rounds, so a long campaign keeps the map pruned without
//! any wall-clock dependency — the round index *is* the clock, which
//! keeps map contents a deterministic function of the campaign.

use crate::protocol::PlatformReport;
use crate::transport::RoundSink;
use crowdwifi_core::ApEstimate;
use crowdwifi_geomap::{EvictStats, GeoMap, IngestStats};
use std::sync::Arc;
use std::time::Duration;

/// Feeds each closed round's fused estimates into a shared [`GeoMap`].
#[derive(Debug, Clone)]
pub struct GeoMapSink {
    map: Arc<GeoMap>,
    round_period_micros: u64,
    evict_every: usize,
    rounds_closed: usize,
    ingested: IngestStats,
    last_evict: Option<EvictStats>,
}

impl GeoMapSink {
    /// A sink writing into `map`, advancing the map clock by
    /// `round_period` per closed round (round `i` closes at
    /// `(i + 1) × round_period`). No periodic eviction.
    pub fn new(map: Arc<GeoMap>, round_period: Duration) -> Self {
        GeoMapSink {
            map,
            round_period_micros: round_period.as_micros().min(u128::from(u64::MAX)) as u64,
            evict_every: 0,
            rounds_closed: 0,
            ingested: IngestStats::default(),
            last_evict: None,
        }
    }

    /// Also sweeps the map's eviction pass after every `rounds` closed
    /// rounds (0 disables).
    pub fn with_eviction_every(mut self, rounds: usize) -> Self {
        self.evict_every = rounds;
        self
    }

    /// The map clock value (microseconds) at which round `round`
    /// closes.
    pub fn close_instant_micros(&self, round: usize) -> u64 {
        (round as u64 + 1).saturating_mul(self.round_period_micros)
    }

    /// The map this sink writes into.
    pub fn map(&self) -> &Arc<GeoMap> {
        &self.map
    }

    /// Rounds observed so far.
    pub fn rounds_closed(&self) -> usize {
        self.rounds_closed
    }

    /// Accumulated ingest counters across all observed rounds.
    pub fn ingested(&self) -> IngestStats {
        self.ingested
    }

    /// Counters of the most recent periodic eviction sweep, if any ran.
    pub fn last_evict(&self) -> Option<EvictStats> {
        self.last_evict
    }
}

impl RoundSink for GeoMapSink {
    fn round_closed(&mut self, round: usize, report: &PlatformReport) {
        let now = self.close_instant_micros(round);
        let estimates: Vec<ApEstimate> = report
            .fused
            .iter()
            .map(|f| ApEstimate {
                position: f.position,
                credit: f.support,
            })
            .collect();
        let stats = self.map.absorb_estimates(now, &estimates);
        self.ingested.merged += stats.merged;
        self.ingested.opened += stats.opened;
        self.ingested.rejected += stats.rejected;
        self.rounds_closed += 1;
        if self.evict_every > 0 && self.rounds_closed.is_multiple_of(self.evict_every) {
            self.last_evict = Some(self.map.evict(now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RoundHealth;
    use crate::server::RoundOutcome;
    use crowdwifi_crowd::fusion::FusedAp;
    use crowdwifi_geo::{Point, Rect};
    use crowdwifi_geomap::MapConfig;
    use std::collections::BTreeMap;

    fn report(fused: Vec<FusedAp>) -> PlatformReport {
        PlatformReport {
            outcome: RoundOutcome {
                accepted_patterns: Vec::new(),
                reliabilities: BTreeMap::new(),
                converged: true,
            },
            fused,
            health: RoundHealth::Complete,
            fates: BTreeMap::new(),
            exits: BTreeMap::new(),
            reassigned_tasks: 0,
            lost_label_slots: 0,
            metrics: Default::default(),
        }
    }

    fn fused(x: f64, y: f64, support: f64) -> FusedAp {
        FusedAp {
            position: Point::new(x, y),
            support,
            contributors: 1,
        }
    }

    #[test]
    fn sink_absorbs_fused_estimates_with_round_clock() {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        let map = Arc::new(GeoMap::new(MapConfig::new(world)).unwrap());
        let mut sink = GeoMapSink::new(Arc::clone(&map), Duration::from_secs(60));
        sink.round_closed(0, &report(vec![fused(100.0, 100.0, 2.0)]));
        sink.round_closed(1, &report(vec![fused(100.0, 100.0, 2.0)]));
        assert_eq!(sink.rounds_closed(), 2);
        assert_eq!(sink.ingested().opened, 1);
        assert_eq!(sink.ingested().merged, 1);
        let hits = map.query_radius(Point::new(100.0, 100.0), 10.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].credit, 4.0);
        assert_eq!(hits[0].first_seen_micros, 60_000_000);
        assert_eq!(hits[0].last_seen_micros, 120_000_000);
    }

    #[test]
    fn periodic_eviction_runs_on_the_round_clock() {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        let mut cfg = MapConfig::new(world);
        cfg.ttl_micros = 90_000_000; // 1.5 rounds
        let map = Arc::new(GeoMap::new(cfg).unwrap());
        let mut sink =
            GeoMapSink::new(Arc::clone(&map), Duration::from_secs(60)).with_eviction_every(2);
        sink.round_closed(0, &report(vec![fused(100.0, 100.0, 2.0)]));
        assert!(sink.last_evict().is_none());
        // Round 1 closes at 120 s; the round-0 entry (last seen 60 s)
        // is only 60 s old — kept.
        sink.round_closed(1, &report(vec![fused(500.0, 500.0, 2.0)]));
        assert_eq!(sink.last_evict().unwrap().remaining, 2);
        // Round 3 closes at 240 s; both entries are now stale.
        sink.round_closed(2, &report(Vec::new()));
        sink.round_closed(3, &report(Vec::new()));
        let sweep = sink.last_evict().unwrap();
        assert_eq!(sweep.expired, 2);
        assert_eq!(sweep.remaining, 0);
        assert!(map.is_empty());
    }
}
