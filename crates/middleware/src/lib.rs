//! The CrowdWiFi middleware: crowd-server, crowd-vehicles and
//! user-vehicles wired together (§3 and §5.5 of the paper).
//!
//! Three parties cooperate:
//!
//! * **crowd-vehicles** run the online CS estimator over their own RSS
//!   streams, upload coarse per-segment AP estimates, and answer the
//!   server's pattern-mapping tasks with ±1 labels ([`vehicle`]);
//! * the **crowd-server** partitions the map into road segments,
//!   generates candidate AP distribution patterns, assigns mapping
//!   tasks on a bipartite graph, infers vehicle reliabilities with
//!   iterative message passing, and fuses uploads into fine-grained AP
//!   estimates ([`server`]);
//! * **user-vehicles** download the fused AP list for their route
//!   ([`server::CrowdServer::download`]).
//!
//! The round/campaign machinery is layered sans-I/O style:
//!
//! * [`protocol`] holds the pure server-side state machine
//!   ([`protocol::ServerCore`]): timestamped events in, actions out, no
//!   threads, no channels, no wall clock. Campaign AP state is sharded
//!   by road segment ([`protocol::ShardedDatabase`]).
//! * [`transport`] supplies the I/O: the original threaded runtime
//!   ([`transport::ThreadTransport`]) and a single-threaded
//!   deterministic simulator with a virtual clock
//!   ([`transport::SimTransport`]). Same seed + fault plan → the same
//!   deterministic round report on either backend.
//! * [`platform`] keeps the original façade API, delegating to the
//!   threaded transport.
//!
//! Rounds are fault-tolerant: per-vehicle deadlines with bounded
//! retries, reassignment of tasks orphaned by dead vehicles, and
//! quorum-based degraded completion. [`fault`] injects deterministic,
//! seeded message and vehicle faults for replayable chaos testing.
//!
//! # Example
//!
//! See `examples/crowd_platform.rs` at the workspace root for the full
//! three-party round trip.

#![deny(missing_docs)]

pub mod durability;
pub mod fault;
pub mod mapsink;
pub mod messages;
pub mod platform;
pub mod protocol;
pub mod segment;
pub mod server;
pub mod store;
pub mod transport;
pub mod user;
pub mod vehicle;
pub mod wire;

pub use server::CrowdServer;
pub use user::UserVehicle;
pub use vehicle::CrowdVehicle;

/// Errors produced by the middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareError {
    /// The referenced vehicle is not registered.
    UnknownVehicle(u32),
    /// Configuration problem.
    InvalidConfig(String),
    /// The underlying estimator failed.
    Estimator(String),
    /// Crowdsourcing failure.
    Crowd(String),
    /// A wire-encoded message or segment map failed to decode.
    Codec(String),
    /// The durability layer failed: write-ahead-log or snapshot I/O
    /// broke, or a recovered server diverged from the logged history.
    Durability(String),
    /// Too few vehicles survived the round to meet the completion
    /// quorum: `alive` out of `total` finished, `required` were needed.
    QuorumLost {
        /// Vehicles that completed the round.
        alive: usize,
        /// Minimum completions the quorum demanded.
        required: usize,
        /// Fleet size at round start.
        total: usize,
    },
}

impl std::fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiddlewareError::UnknownVehicle(id) => write!(f, "unknown vehicle {id}"),
            MiddlewareError::InvalidConfig(why) => write!(f, "invalid config: {why}"),
            MiddlewareError::Estimator(e) => write!(f, "estimator failure: {e}"),
            MiddlewareError::Crowd(e) => write!(f, "crowdsourcing failure: {e}"),
            MiddlewareError::Codec(e) => write!(f, "codec failure: {e}"),
            MiddlewareError::Durability(e) => write!(f, "durability failure: {e}"),
            MiddlewareError::QuorumLost {
                alive,
                required,
                total,
            } => write!(
                f,
                "round quorum lost: {alive}/{total} vehicles completed, {required} required"
            ),
        }
    }
}

impl std::error::Error for MiddlewareError {}

impl From<crowdwifi_core::CoreError> for MiddlewareError {
    fn from(e: crowdwifi_core::CoreError) -> Self {
        MiddlewareError::Estimator(e.to_string())
    }
}

impl From<crowdwifi_crowd::CrowdError> for MiddlewareError {
    fn from(e: crowdwifi_crowd::CrowdError) -> Self {
        MiddlewareError::Crowd(e.to_string())
    }
}

/// Convenience alias for middleware results.
pub type Result<T> = std::result::Result<T, MiddlewareError>;
