//! A columnar store for decoded AP observations: the ingest-side
//! substrate for crowd-scale monitoring queries.
//!
//! Production crowd-monitoring systems (Determe et al., "Monitoring
//! Large Crowds With WiFi") live on two numbers: how wide the ingest
//! path is and how fast aggregate queries answer over months of stored
//! observations. This module keeps decoded observations the way such
//! systems do — **columnar**, bucketed by time:
//!
//! * observations land in per-time-bucket **structure-of-arrays
//!   columns**: `u32` timestamp offsets from the bucket start, interned
//!   `u32` AP ids, and RSSI as `i16` **centibels** (dB × 10 — 0.1 dB
//!   resolution in 2 bytes instead of an 8-byte float), 10 bytes per
//!   observation instead of a ~50-byte row struct;
//! * every ingest also folds the observation into a per-bucket per-AP
//!   **aggregate** (count, sum, sum-of-squares, min, max), so the
//!   analytical queries — per-minute RSSI series, mean RSSI over a
//!   range, RSSI-variance static-AP detection, presence heatmaps —
//!   scan tiny aggregate tables and never touch the raw columns;
//! * AP identifiers are **interned** once; the columns store 4-byte
//!   ids, never strings.
//!
//! The raw columns stay resident for queries that genuinely need rows
//! (none ship yet — they are the substrate for the mobility-trace
//! workload), which is why the `wire_store` bench reports aggregate-
//! query latency at 10M+ *stored* observations: the point is that
//! query time is independent of the raw row count.

use crate::messages::SensingUpload;
use crate::protocol::VirtualInstant;
use crowdwifi_geomap::{grid_key, shared_interner, SharedInterner};
use std::collections::BTreeMap;
use std::time::Duration;

/// Grid resolution (meters) of the synthetic AP keys
/// [`ObsStore::absorb_upload`] files estimates under.
pub const KEY_RESOLUTION_M: f64 = 10.0;

/// Interned identifier of one observed AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ApId(pub u32);

/// RSSI in centibels (dB × 10), the store's native unit.
pub fn to_centibels(rssi_db: f64) -> i16 {
    let cb = (rssi_db * 10.0).round();
    cb.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
}

/// Per-bucket per-AP aggregate, maintained incrementally on ingest.
/// All analytical queries read these; none scan the raw columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApAggregate {
    /// Observations folded in.
    pub count: u64,
    /// Sum of centibel RSSI values.
    pub sum_cb: i64,
    /// Sum of squared centibel RSSI values (fits `i64` comfortably:
    /// even 10M maximal `i16` squares stay below 2^63).
    pub sum_sq_cb: i64,
    /// Weakest observed RSSI, centibels.
    pub min_cb: i16,
    /// Strongest observed RSSI, centibels.
    pub max_cb: i16,
}

impl ApAggregate {
    fn absorb(&mut self, cb: i16) {
        self.count += 1;
        self.sum_cb += i64::from(cb);
        self.sum_sq_cb += i64::from(cb) * i64::from(cb);
        self.min_cb = self.min_cb.min(cb);
        self.max_cb = self.max_cb.max(cb);
    }

    fn seed(cb: i16) -> Self {
        ApAggregate {
            count: 1,
            sum_cb: i64::from(cb),
            sum_sq_cb: i64::from(cb) * i64::from(cb),
            min_cb: cb,
            max_cb: cb,
        }
    }

    /// Mean RSSI in dB.
    pub fn mean_db(&self) -> f64 {
        self.sum_cb as f64 / self.count as f64 / 10.0
    }

    /// Population variance of the RSSI in dB².
    pub fn variance_db2(&self) -> f64 {
        let n = self.count as f64;
        let mean_cb = self.sum_cb as f64 / n;
        let var_cb2 = (self.sum_sq_cb as f64 / n - mean_cb * mean_cb).max(0.0);
        var_cb2 / 100.0
    }
}

/// One time bucket: raw SoA columns plus the per-AP aggregate table.
#[derive(Debug, Default)]
struct Bucket {
    /// Microsecond offsets from the bucket start (u32 spans > 1 h).
    ts_offset: Vec<u32>,
    /// Interned AP id per observation.
    ap: Vec<u32>,
    /// RSSI per observation, centibels.
    rssi_cb: Vec<i16>,
    /// Per-AP aggregates for this bucket.
    aggregates: BTreeMap<u32, ApAggregate>,
}

/// One cell of a presence heatmap: crowd density proxy for one time
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresenceCell {
    /// Bucket start, microseconds since the epoch of the feed.
    pub bucket_start_micros: u64,
    /// Distinct APs observed in the bucket.
    pub distinct_aps: usize,
    /// Total observations in the bucket.
    pub observations: u64,
}

/// The time-bucketed columnar observation store. See the
/// [module docs](self) for the layout.
#[derive(Debug)]
pub struct ObsStore {
    bucket_micros: u64,
    interner: SharedInterner,
    buckets: BTreeMap<u64, Bucket>,
    total: u64,
}

impl ObsStore {
    /// A store with per-minute buckets (the aggregate granularity the
    /// monitoring queries report at).
    pub fn new() -> Self {
        ObsStore::with_bucket(Duration::from_secs(60))
    }

    /// A store with a custom bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or wider than a `u32` of microseconds
    /// (≈ 71 min) — the timestamp column stores 4-byte offsets.
    pub fn with_bucket(bucket: Duration) -> Self {
        ObsStore::with_bucket_and_interner(bucket, shared_interner())
    }

    /// A per-minute-bucket store interning AP identifiers into a shared
    /// table — hand the same handle to a `crowdwifi_geomap::GeoMap` and
    /// the two sides can never disagree on ids.
    pub fn with_shared_interner(interner: SharedInterner) -> Self {
        ObsStore::with_bucket_and_interner(Duration::from_secs(60), interner)
    }

    /// A store with a custom bucket width and intern table.
    ///
    /// # Panics
    ///
    /// As [`ObsStore::with_bucket`].
    pub fn with_bucket_and_interner(bucket: Duration, interner: SharedInterner) -> Self {
        let micros = bucket.as_micros();
        assert!(
            micros > 0 && micros <= u128::from(u32::MAX),
            "bucket width must be in (0, ~71 min]"
        );
        ObsStore {
            bucket_micros: micros as u64,
            interner,
            buckets: BTreeMap::new(),
            total: 0,
        }
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> ApId {
        ApId(
            self.interner
                .lock()
                .expect("interner poisoned")
                .intern(name),
        )
    }

    /// The interned name of `ap`, if the id is known to the backing
    /// table.
    pub fn ap_name(&self, ap: ApId) -> Option<String> {
        self.interner
            .lock()
            .expect("interner poisoned")
            .name(ap.0)
            .map(str::to_string)
    }

    /// A handle to the intern table, for sharing with other consumers
    /// (the geo-sharded AP map in particular).
    pub fn interner_handle(&self) -> SharedInterner {
        std::sync::Arc::clone(&self.interner)
    }

    /// Ingests one observation of `ap` at absolute time `t_micros` with
    /// the given RSSI in dB. Appends 10 bytes to the bucket's columns
    /// and folds the value into the bucket's per-AP aggregate.
    pub fn ingest(&mut self, ap: ApId, t_micros: u64, rssi_db: f64) {
        let cb = to_centibels(rssi_db);
        let start = t_micros - t_micros % self.bucket_micros;
        let bucket = self.buckets.entry(start).or_default();
        bucket.ts_offset.push((t_micros - start) as u32);
        bucket.ap.push(ap.0);
        bucket.rssi_cb.push(cb);
        bucket
            .aggregates
            .entry(ap.0)
            .and_modify(|a| a.absorb(cb))
            .or_insert_with(|| ApAggregate::seed(cb));
        self.total += 1;
    }

    /// Folds one decoded [`SensingUpload`] into the store: each
    /// estimate becomes an observation of a grid-quantized synthetic AP
    /// key (`ap(ix,iy)` at 10 m resolution), stamped `now`, with the
    /// estimate's credit standing in for signal strength. A stand-in
    /// mapping until uploads carry real BSSIDs and RSSI — the columnar
    /// path underneath is the real one.
    pub fn absorb_upload(&mut self, now: VirtualInstant, upload: &SensingUpload) {
        let estimates: Vec<(String, f64)> = upload
            .estimates
            .iter()
            .map(|e| (grid_key(e.position, KEY_RESOLUTION_M), e.credit))
            .collect();
        for (key, credit) in estimates {
            let ap = self.intern(&key);
            self.ingest(ap, now.as_micros(), credit);
        }
    }

    /// Total observations stored.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of time buckets with any data.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of distinct identifiers in the backing intern table
    /// (shared tables count every producer's names).
    pub fn ap_count(&self) -> usize {
        self.interner.lock().expect("interner poisoned").len()
    }

    /// The bucket width in microseconds.
    pub fn bucket_micros(&self) -> u64 {
        self.bucket_micros
    }

    /// Per-bucket aggregate series for one AP over `[t0, t1)`, in time
    /// order: `(bucket_start_micros, aggregate)` per bucket the AP was
    /// observed in. Reads only aggregate tables.
    pub fn series(&self, ap: ApId, t0: u64, t1: u64) -> Vec<(u64, ApAggregate)> {
        self.buckets
            .range(bucket_range(self.bucket_micros, t0, t1))
            .filter_map(|(&start, b)| Some((start, *b.aggregates.get(&ap.0)?)))
            .collect()
    }

    /// Mean RSSI in dB of `ap` over `[t0, t1)`, or `None` if it was
    /// never observed there. One pass over the per-bucket aggregates —
    /// the benched "aggregate query".
    pub fn mean_rssi(&self, ap: ApId, t0: u64, t1: u64) -> Option<f64> {
        let mut count = 0u64;
        let mut sum_cb = 0i64;
        for (_, b) in self.buckets.range(bucket_range(self.bucket_micros, t0, t1)) {
            if let Some(a) = b.aggregates.get(&ap.0) {
                count += a.count;
                sum_cb += a.sum_cb;
            }
        }
        (count > 0).then(|| sum_cb as f64 / count as f64 / 10.0)
    }

    /// APs whose RSSI is *stable*: observed in at least `min_buckets`
    /// buckets with a pooled standard deviation at or below
    /// `max_std_db`. A roadside AP seen from a fixed spot has a tight
    /// RSSI distribution; a mobile hotspot's RSSI wanders. Computed
    /// from aggregates alone (pooled variance via sums and
    /// sums-of-squares), in AP-id order.
    pub fn static_aps(&self, min_buckets: usize, max_std_db: f64) -> Vec<ApId> {
        let mut pooled: BTreeMap<u32, ApAggregate> = BTreeMap::new();
        let mut bucket_hits: BTreeMap<u32, usize> = BTreeMap::new();
        for b in self.buckets.values() {
            for (&ap, a) in &b.aggregates {
                *bucket_hits.entry(ap).or_insert(0) += 1;
                pooled
                    .entry(ap)
                    .and_modify(|p| {
                        p.count += a.count;
                        p.sum_cb += a.sum_cb;
                        p.sum_sq_cb += a.sum_sq_cb;
                        p.min_cb = p.min_cb.min(a.min_cb);
                        p.max_cb = p.max_cb.max(a.max_cb);
                    })
                    .or_insert(*a);
            }
        }
        pooled
            .into_iter()
            .filter(|(ap, agg)| {
                bucket_hits[ap] >= min_buckets && agg.variance_db2().sqrt() <= max_std_db
            })
            .map(|(ap, _)| ApId(ap))
            .collect()
    }

    /// Presence heatmap over `[t0, t1)`: one cell per time bucket with
    /// its distinct-AP and observation counts — the crowd-density proxy
    /// of WiFi monitoring. Aggregate-table sizes only; no column scan.
    pub fn presence(&self, t0: u64, t1: u64) -> Vec<PresenceCell> {
        self.buckets
            .range(bucket_range(self.bucket_micros, t0, t1))
            .map(|(&start, b)| PresenceCell {
                bucket_start_micros: start,
                distinct_aps: b.aggregates.len(),
                observations: b.aggregates.values().map(|a| a.count).sum(),
            })
            .collect()
    }

    /// Resident bytes of the raw columns (10 per observation), for
    /// capacity reporting.
    pub fn column_bytes(&self) -> u64 {
        self.total * 10
    }
}

impl Default for ObsStore {
    fn default() -> Self {
        ObsStore::new()
    }
}

/// The bucket-start range covering `[t0, t1)`.
fn bucket_range(bucket_micros: u64, t0: u64, t1: u64) -> std::ops::Range<u64> {
    let lo = t0 - t0 % bucket_micros;
    lo..t1.max(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::VehicleId;
    use crowdwifi_core::ApEstimate;
    use crowdwifi_geo::Point;

    const MIN: u64 = 60_000_000; // one minute in µs

    #[test]
    fn centibel_conversion_rounds_and_clamps() {
        assert_eq!(to_centibels(-72.34), -723);
        assert_eq!(to_centibels(0.0), 0);
        assert_eq!(to_centibels(1e9), i16::MAX);
        assert_eq!(to_centibels(-1e9), i16::MIN);
    }

    #[test]
    fn ingest_buckets_by_minute_and_aggregates_per_ap() {
        let mut s = ObsStore::new();
        let a = s.intern("ap-a");
        let b = s.intern("ap-b");
        assert_eq!(s.intern("ap-a"), a, "interning is idempotent");
        assert_eq!(s.ap_name(a).as_deref(), Some("ap-a"));

        s.ingest(a, 10, -70.0);
        s.ingest(a, MIN - 1, -72.0);
        s.ingest(b, 20, -55.0);
        s.ingest(a, MIN + 5, -71.0); // next bucket
        assert_eq!(s.len(), 4);
        assert_eq!(s.bucket_count(), 2);
        assert_eq!(s.ap_count(), 2);

        let series = s.series(a, 0, 2 * MIN);
        assert_eq!(series.len(), 2);
        let (start0, agg0) = series[0];
        assert_eq!(start0, 0);
        assert_eq!(agg0.count, 2);
        assert!((agg0.mean_db() - -71.0).abs() < 1e-9);
        assert_eq!(agg0.min_cb, -720);
        assert_eq!(agg0.max_cb, -700);

        // Range queries respect [t0, t1).
        assert_eq!(s.series(a, 0, MIN).len(), 1);
        assert!(s.series(b, MIN, 2 * MIN).is_empty());
        let mean = s.mean_rssi(a, 0, 2 * MIN).unwrap();
        assert!((mean - (-70.0 - 72.0 - 71.0) / 3.0).abs() < 1e-9);
        assert!(s.mean_rssi(b, MIN, 2 * MIN).is_none());
    }

    #[test]
    fn static_ap_detection_splits_stable_from_wandering() {
        let mut s = ObsStore::new();
        let stable = s.intern("roadside");
        let mobile = s.intern("hotspot");
        for minute in 0..5u64 {
            for i in 0..10u64 {
                let t = minute * MIN + i * 1000;
                // Stable: ±0.2 dB around −60. Mobile: sweeps 30 dB.
                s.ingest(stable, t, -60.0 + 0.2 * ((i % 2) as f64));
                s.ingest(mobile, t, -80.0 + 3.0 * (minute * 10 + i) as f64 / 5.0);
            }
        }
        let found = s.static_aps(3, 1.0);
        assert_eq!(found, vec![stable]);
        // A tighter bucket-count floor than the data has finds nothing.
        assert!(s.static_aps(6, 1.0).is_empty());
    }

    #[test]
    fn presence_heatmap_counts_distinct_aps_per_bucket() {
        let mut s = ObsStore::new();
        let a = s.intern("a");
        let b = s.intern("b");
        s.ingest(a, 0, -60.0);
        s.ingest(b, 1, -61.0);
        s.ingest(a, 2, -62.0);
        s.ingest(a, MIN + 1, -63.0);
        let cells = s.presence(0, 2 * MIN);
        assert_eq!(
            cells,
            vec![
                PresenceCell {
                    bucket_start_micros: 0,
                    distinct_aps: 2,
                    observations: 3
                },
                PresenceCell {
                    bucket_start_micros: MIN,
                    distinct_aps: 1,
                    observations: 1
                },
            ]
        );
        assert_eq!(s.column_bytes(), 40);
    }

    #[test]
    fn absorb_upload_quantizes_positions_into_ap_keys() {
        let mut s = ObsStore::new();
        let up = SensingUpload {
            vehicle: VehicleId(3),
            estimates: vec![
                ApEstimate {
                    position: Point::new(75.0, 25.0),
                    credit: 2.5,
                },
                ApEstimate {
                    position: Point::new(74.0, 25.0), // same 10 m cell
                    credit: 3.0,
                },
                ApEstimate {
                    position: Point::new(225.0, 25.0),
                    credit: 1.0,
                },
            ],
        };
        s.absorb_upload(VirtualInstant::from_micros(5), &up);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ap_count(), 2, "two distinct grid cells");
        let cell = s.intern("ap(7,2)");
        assert_eq!(s.series(cell, 0, MIN)[0].1.count, 2);
    }
}
