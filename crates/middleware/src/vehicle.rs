//! The crowd-vehicle client.

use crate::fault::{FaultPoint, FaultySender, Misbehavior};
use crate::messages::{MappingAnswer, MappingTask, SensingUpload, ToServer, ToVehicle, VehicleId};
use crate::segment::SegmentMap;
use crate::wire::WireMessage;
use crate::Result;
use crossbeam::channel;
use crowdwifi_channel::RssReading;
use crowdwifi_core::{ApEstimate, OnlineCs};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the vehicle answers mapping tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Good-faith answers derived from the vehicle's own sensing.
    Honest,
    /// Random ±1 answers (the spammer of §5.1).
    Spammer,
}

/// A crowd-vehicle: runs online CS over its own readings, uploads the
/// result, and labels the server's pattern-mapping tasks.
#[derive(Debug)]
pub struct CrowdVehicle {
    id: VehicleId,
    estimator: OnlineCs,
    behavior: Behavior,
    estimates: Vec<ApEstimate>,
    /// A pattern AP "matches" one of the vehicle's own estimates within
    /// this distance (meters).
    match_tolerance: f64,
}

impl CrowdVehicle {
    /// Creates a vehicle with the given estimator and behavior.
    pub fn new(id: VehicleId, estimator: OnlineCs, behavior: Behavior) -> Self {
        CrowdVehicle {
            id,
            estimator,
            behavior,
            estimates: Vec::new(),
            match_tolerance: 25.0,
        }
    }

    /// Sets the pattern-match tolerance in meters (default 25 m).
    pub fn with_match_tolerance(mut self, tolerance: f64) -> Self {
        self.match_tolerance = tolerance.max(0.0);
        self
    }

    /// The vehicle's identifier.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// The declared behavior.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Runs the online CS estimator over a recorded drive, replacing any
    /// previous sensing result.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures.
    pub fn sense(&mut self, readings: &[RssReading]) -> Result<()> {
        self.estimates = self.estimator.run(readings)?;
        Ok(())
    }

    /// The current coarse estimates (empty before [`CrowdVehicle::sense`]).
    pub fn estimates(&self) -> &[ApEstimate] {
        &self.estimates
    }

    /// Builds the sensing upload for the crowd-server.
    pub fn upload(&self) -> SensingUpload {
        SensingUpload {
            vehicle: self.id,
            estimates: self.estimates.clone(),
        }
    }

    /// Answers one mapping task. Honest vehicles check the pattern
    /// against their own estimates; spammers flip a coin.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        task: &MappingTask,
        segments: &SegmentMap,
        rng: &mut R,
    ) -> MappingAnswer {
        let label = match self.behavior {
            Behavior::Spammer => {
                if rng.random_range(0.0..1.0) < 0.5 {
                    1
                } else {
                    -1
                }
            }
            Behavior::Honest => self.honest_label(task, segments),
        };
        MappingAnswer {
            vehicle: self.id,
            task_id: task.task_id,
            label,
        }
    }

    /// A pattern "exists" for an honest vehicle when every pattern AP is
    /// matched by one of its own estimates within the tolerance **and**
    /// the vehicle saw no extra APs inside the pattern's segment.
    fn honest_label(&self, task: &MappingTask, segments: &SegmentMap) -> i8 {
        let seg_bounds = segments.bounds(task.pattern.segment);
        let own_in_segment: Vec<_> = self
            .estimates
            .iter()
            .filter(|e| seg_bounds.contains(e.position))
            .collect();
        if own_in_segment.len() != task.pattern.aps.len() {
            return -1;
        }
        // Greedy matching within tolerance.
        let mut used = vec![false; own_in_segment.len()];
        for pattern_ap in &task.pattern.aps {
            let found = own_in_segment.iter().enumerate().find(|(i, e)| {
                !used[*i] && e.position.distance(*pattern_ap) <= self.match_tolerance
            });
            match found {
                Some((i, _)) => used[i] = true,
                None => return -1,
            }
        }
        1
    }
}

/// How one vehicle's round ended, from the vehicle's own perspective.
/// Complements the server-side fate in degraded-round postmortems: the
/// server knows *that* a vehicle went quiet, the exit records *why* the
/// thread stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VehicleExit {
    /// Received `Done`: a full, clean round.
    Completed,
    /// The server sent `Abort(reason)`: it deliberately abandoned the
    /// round and said why.
    Aborted(String),
    /// The channel closed with no `Done` and no `Abort`: the server
    /// hung up unexpectedly (crashed, or dropped this vehicle after its
    /// deadline while messages were still in flight).
    Disconnected,
    /// An injected silent crash ([`Misbehavior::Crash`]).
    Crashed,
    /// An injected stall ([`Misbehavior::Stall`]); the vehicle drained
    /// its inbox without responding until the server hung up.
    Stalled,
    /// The vehicle's own protocol failed: estimator error or panic.
    Failed(String),
}

/// One step of the sans-I/O vehicle state machine: either messages to
/// put on the uplink (possibly none) or a terminal exit.
#[derive(Debug)]
pub(crate) enum VehicleStep {
    /// Keep going; deliver these uplink messages (may be empty).
    Continue(Vec<ToServer>),
    /// The vehicle is done; stop delivering messages to it.
    Exit(VehicleExit),
}

/// The vehicle's side of the round protocol as a pure state machine:
/// no channels, no blocking, no clock. Transports feed it the drive
/// (via [`VehicleCore::start`]) and each downlink message (via
/// [`VehicleCore::on_message`]), and put whatever it returns on the
/// uplink. Scheduled misbehavior ([`Misbehavior`]) is folded in here so
/// every transport injects crashes and stalls identically.
#[derive(Debug)]
pub(crate) struct VehicleCore {
    vehicle: CrowdVehicle,
    rng: ChaCha8Rng,
    script: Option<Misbehavior>,
    stalled: bool,
}

impl VehicleCore {
    pub(crate) fn new(vehicle: CrowdVehicle, seed: u64, script: Option<Misbehavior>) -> Self {
        VehicleCore {
            vehicle,
            rng: ChaCha8Rng::seed_from_u64(seed),
            script,
            stalled: false,
        }
    }

    pub(crate) fn id(&self) -> VehicleId {
        self.vehicle.id()
    }

    /// Fires a scheduled misbehavior if `point` matches the script. A
    /// stall leaves the vehicle "running" — it keeps absorbing downlink
    /// messages without ever responding — so the server only learns of
    /// it through deadlines.
    fn misbehave(&mut self, point: FaultPoint) -> Option<VehicleStep> {
        match self.script {
            Some(Misbehavior::Crash(p)) if p == point => {
                Some(VehicleStep::Exit(VehicleExit::Crashed))
            }
            Some(Misbehavior::Stall(p)) if p == point => {
                self.stalled = true;
                Some(VehicleStep::Continue(Vec::new()))
            }
            _ => None,
        }
    }

    /// Runs the drive: sense, then produce the coarse upload.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures; the transport reports them to the
    /// server as [`ToServer::Failed`].
    pub(crate) fn start(&mut self, readings: &[RssReading]) -> Result<VehicleStep> {
        if let Some(step) = self.misbehave(FaultPoint::Sense) {
            return Ok(step);
        }
        self.vehicle.sense(readings)?;
        if let Some(step) = self.misbehave(FaultPoint::Upload) {
            return Ok(step);
        }
        Ok(VehicleStep::Continue(vec![ToServer::Upload(
            self.vehicle.upload(),
        )]))
    }

    /// Reacts to one downlink message.
    pub(crate) fn on_message(&mut self, msg: ToVehicle, segments: &SegmentMap) -> VehicleStep {
        if self.stalled {
            return VehicleStep::Continue(Vec::new());
        }
        match msg {
            ToVehicle::Assign(tasks) => {
                if let Some(step) = self.misbehave(FaultPoint::Answer) {
                    return step;
                }
                let answers = tasks
                    .iter()
                    .map(|t| self.vehicle.answer(t, segments, &mut self.rng))
                    .collect();
                VehicleStep::Continue(vec![ToServer::Answers(answers)])
            }
            ToVehicle::RequestUpload => {
                VehicleStep::Continue(vec![ToServer::Upload(self.vehicle.upload())])
            }
            ToVehicle::Done => VehicleStep::Exit(VehicleExit::Completed),
            ToVehicle::Abort(reason) => VehicleStep::Exit(VehicleExit::Aborted(reason)),
        }
    }

    /// How a still-running vehicle classifies the link closing under it.
    pub(crate) fn on_disconnect(&self) -> VehicleExit {
        if self.stalled {
            VehicleExit::Stalled
        } else {
            VehicleExit::Disconnected
        }
    }
}

/// Drives a [`VehicleCore`] over real channels: one vehicle's side of
/// the threaded round. Sense + upload, then serve assignment and
/// upload-retry requests until `Done` or `Abort`.
///
/// Every exit path is classified (see [`VehicleExit`]); a closed
/// channel is [`VehicleExit::Disconnected`], *not* an error — the
/// server already knows why it hung up, and the platform reports the
/// vehicle-side view alongside the server-side fate.
///
/// The channels carry binary frames, so the uplink bytes the fault
/// layer perturbs are the same bytes every backend would put on a real
/// socket; a garbled downlink frame fails the vehicle with the decode
/// error (the caller reports it as [`ToServer::Failed`]).
///
/// # Errors
///
/// Propagates estimator failures from sensing and downlink decode
/// failures; the caller reports them to the server as
/// [`ToServer::Failed`].
pub(crate) fn run_protocol(
    core: &mut VehicleCore,
    readings: &[RssReading],
    segments: &SegmentMap,
    to_server: &mut FaultySender<(VehicleId, Vec<u8>)>,
    rx: &channel::Receiver<Vec<u8>>,
) -> Result<VehicleExit> {
    let id = core.id();
    let dispatch =
        |msgs: Vec<ToServer>, to_server: &mut FaultySender<(VehicleId, Vec<u8>)>| -> bool {
            msgs.into_iter()
                .all(|m| to_server.send((id, m.to_frame())).is_ok())
        };
    match core.start(readings)? {
        VehicleStep::Exit(exit) => return Ok(exit),
        VehicleStep::Continue(msgs) => {
            if !dispatch(msgs, to_server) {
                return Ok(VehicleExit::Disconnected);
            }
        }
    }
    loop {
        match rx.recv() {
            Ok(bytes) => {
                let msg = ToVehicle::from_frame(&bytes)?;
                match core.on_message(msg, segments) {
                    VehicleStep::Exit(exit) => return Ok(exit),
                    VehicleStep::Continue(msgs) => {
                        if !dispatch(msgs, to_server) {
                            return Ok(VehicleExit::Disconnected);
                        }
                    }
                }
            }
            Err(_) => return Ok(core.on_disconnect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Pattern;
    use crate::segment::SegmentMap;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_core::OnlineCsConfig;
    use crowdwifi_geo::{Point, Rect};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn vehicle(behavior: Behavior) -> CrowdVehicle {
        let estimator =
            OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
        CrowdVehicle::new(VehicleId(1), estimator, behavior)
    }

    fn segments() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 180.0)).unwrap(),
            150.0,
        )
    }

    fn seeded_vehicle_with_estimates(points: &[Point]) -> CrowdVehicle {
        let mut v = vehicle(Behavior::Honest);
        v.estimates = points
            .iter()
            .map(|&position| ApEstimate {
                position,
                credit: 3.0,
            })
            .collect();
        v
    }

    #[test]
    fn honest_vehicle_confirms_matching_pattern() {
        let segs = segments();
        let v = seeded_vehicle_with_estimates(&[Point::new(50.0, 50.0)]);
        let task = MappingTask {
            task_id: 0,
            pattern: Pattern {
                segment: segs.segment_of(Point::new(50.0, 50.0)),
                aps: vec![Point::new(55.0, 52.0)],
            },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(v.answer(&task, &segs, &mut rng).label, 1);
    }

    #[test]
    fn honest_vehicle_denies_wrong_count_or_position() {
        let segs = segments();
        let v = seeded_vehicle_with_estimates(&[Point::new(50.0, 50.0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Wrong position.
        let far = MappingTask {
            task_id: 0,
            pattern: Pattern {
                segment: segs.segment_of(Point::new(50.0, 50.0)),
                aps: vec![Point::new(140.0, 140.0)],
            },
        };
        assert_eq!(v.answer(&far, &segs, &mut rng).label, -1);
        // Wrong count (pattern claims two APs).
        let two = MappingTask {
            task_id: 1,
            pattern: Pattern {
                segment: segs.segment_of(Point::new(50.0, 50.0)),
                aps: vec![Point::new(55.0, 52.0), Point::new(80.0, 60.0)],
            },
        };
        assert_eq!(v.answer(&two, &segs, &mut rng).label, -1);
    }

    #[test]
    fn spammer_answers_are_random() {
        let segs = segments();
        let v = vehicle(Behavior::Spammer);
        let task = MappingTask {
            task_id: 0,
            pattern: Pattern {
                segment: crate::segment::SegmentId(0),
                aps: vec![],
            },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let labels: Vec<i8> = (0..100)
            .map(|_| v.answer(&task, &segs, &mut rng).label)
            .collect();
        let ones = labels.iter().filter(|&&l| l == 1).count();
        assert!(ones > 30 && ones < 70, "spammer bias: {ones}/100 ones");
    }

    #[test]
    fn upload_carries_estimates() {
        let v = seeded_vehicle_with_estimates(&[Point::new(10.0, 10.0)]);
        let up = v.upload();
        assert_eq!(up.vehicle, VehicleId(1));
        assert_eq!(up.estimates.len(), 1);
    }
}
