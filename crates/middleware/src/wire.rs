//! The binary wire codec: length-prefixed, CRC32-validated frames over
//! a compact little-endian payload encoding.
//!
//! This replaces the PR 4 text/hex-float codec on every hot byte path
//! (transport links, WAL frames, snapshots) while keeping the text
//! codec alive as a *decoder* for logs written before the switch. The
//! design follows the embedded-sensing playbook: no serialization
//! crate, no per-message allocation on the encode path, and every
//! frame is independently checksummed so a flipped bit quarantines one
//! sender instead of poisoning a round.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload...]
//! payload = [version: u8][tag: u8][fields...]
//! ```
//!
//! The frame header is byte-identical to the durability layer's WAL
//! framing, so one `split_frames` walks both. The payload's leading
//! version byte is the codec dispatcher: [`WIRE_VERSION`] (2) selects
//! this binary encoding; text-era payloads start with an ASCII tag
//! letter (`H`, `E`, `U`, ... — all ≥ 0x41), which is how old WALs and
//! snapshots are recognized and routed to the retained text decoders.
//!
//! # Field encodings
//!
//! * unsigned integers (ids, counts, lengths, microsecond timestamps)
//!   travel as LEB128 varints;
//! * `i8` labels as one sign-extended byte, `i16` as two LE bytes;
//! * `f64` as the LEB128 varint of its **byte-swapped** IEEE-754 bit
//!   pattern. Real-world coordinates (lattice nodes, credits, segment
//!   sizes) have mostly-zero low mantissa bytes, so byte-swapping puts
//!   the zeros in front and the varint collapses them: `60.0` costs 3
//!   bytes instead of 8 (or 17 in the text codec). Arbitrary bit
//!   patterns — NaN payloads included — still round-trip exactly, at a
//!   worst case of 10 bytes;
//! * strings as a varint byte length followed by raw UTF-8.
//!
//! Encoders append into a caller-supplied `Vec<u8>` ([`WireMessage::
//! encode_binary`] / [`frame_into`]), so a steady-state sender (the
//! WAL writer, the bench loops) reuses one buffer and performs zero
//! per-message allocations. Decoders are zero-copy: [`WireReader`]
//! walks the borrowed payload without intermediate buffers.

use crate::messages::codec_err;
use crate::Result;
use crowdwifi_geo::Point;

/// Version byte opening every binary payload. Version 1 is the text
/// codec (implied; text payloads carry no version byte and are
/// recognized by their ASCII tag), version 2 is this binary encoding.
pub const WIRE_VERSION: u8 = 2;

/// The codec version number recorded for text-era payloads when a
/// reader reports which decoder it used.
pub const TEXT_VERSION: u8 = 1;

// ---------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[j]` advances a byte j positions further, so eight
/// bytes fold in one step. Checksumming every frame on the transport
/// hot path is what pays for the extra 7 KiB.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xff) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// IEEE CRC32 (the zlib/PNG polynomial), table-driven. Self-contained
/// because the offline build bakes in no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Streaming CRC32: folds `bytes` into a running checksum, so a digest
/// over a whole frame sequence needs no concatenated copy. Eight bytes
/// per table step (slice-by-8), byte-at-a-time on the tail.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = crc ^ 0xffff_ffff;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Writer primitives (append-only, caller-supplied buffer)
// ---------------------------------------------------------------------

/// Appends a LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Appends an `i8` as one byte.
pub fn put_i8(out: &mut Vec<u8>, v: i8) {
    out.push(v as u8);
}

/// Appends an `i16` as two little-endian bytes.
pub fn put_i16(out: &mut Vec<u8>, v: i16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as the varint of its byte-swapped bit pattern (see
/// the [module docs](self) for why this compresses real coordinates).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_varint(out, v.to_bits().swap_bytes());
}

/// Appends a string as a varint byte length plus raw UTF-8.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends the binary payload preamble: version byte plus message tag.
pub fn put_header(out: &mut Vec<u8>, tag: u8) {
    out.push(WIRE_VERSION);
    out.push(tag);
}

/// Appends one complete frame — `[len][crc][payload]` — where the
/// payload is whatever `encode` appends. The length and checksum are
/// back-filled after encoding, so the payload is written exactly once
/// into the caller's buffer: no scratch allocation per message.
pub fn frame_into(out: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]);
    encode(out);
    let payload_len = out.len() - start - 8;
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Validates `bytes` as exactly one frame and returns its payload.
///
/// # Errors
///
/// Returns [`crate::MiddlewareError::Codec`] on a short header, a
/// length prefix that disagrees with the byte count (oversized or
/// truncated), or a CRC mismatch.
pub fn unframe(bytes: &[u8]) -> Result<&[u8]> {
    if bytes.len() < 8 {
        return Err(codec_err("frame shorter than its header"));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let payload = &bytes[8..];
    if payload.len() != len {
        return Err(codec_err(format!(
            "frame length prefix {len} disagrees with {} payload bytes",
            payload.len()
        )));
    }
    if crc32(payload) != want {
        return Err(codec_err("frame CRC mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Reader (zero-copy)
// ---------------------------------------------------------------------

/// Zero-copy pull parser over one binary payload. Every accessor
/// returns [`crate::MiddlewareError::Codec`] on truncated or malformed
/// input; [`WireReader::finish`] rejects trailing bytes.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `payload` (frame header already stripped).
    pub fn new(payload: &'a [u8]) -> Self {
        WireReader {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn byte(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| codec_err("truncated binary payload"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads and checks the payload preamble, returning the message
    /// tag.
    pub fn header(&mut self) -> Result<u8> {
        let version = self.byte()?;
        if version != WIRE_VERSION {
            return Err(codec_err(format!(
                "unsupported wire version {version} (expected {WIRE_VERSION})"
            )));
        }
        self.byte()
    }

    /// Reads a LEB128 varint. When at least eight payload bytes remain,
    /// varints up to four bytes long — one-byte tags and counts plus the
    /// 2–4 byte byte-swapped coordinate floats that dominate real
    /// traffic — resolve from a single little-endian `u64` load; the
    /// loop handles longer values and buffer tails.
    #[inline]
    pub fn varint(&mut self) -> Result<u64> {
        let buf = &self.buf[self.pos..];
        if buf.len() >= 8 {
            let word = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            if word & 0x80 == 0 {
                self.pos += 1;
                return Ok(word & 0x7f);
            }
            if word & 0x8000 == 0 {
                self.pos += 2;
                return Ok((word & 0x7f) | ((word >> 1) & 0x3f80));
            }
            if word & 0x0080_0000 == 0 {
                self.pos += 3;
                return Ok((word & 0x7f) | ((word >> 1) & 0x3f80) | ((word >> 2) & 0x001f_c000));
            }
            if word & 0x8000_0000 == 0 {
                self.pos += 4;
                return Ok((word & 0x7f)
                    | ((word >> 1) & 0x3f80)
                    | ((word >> 2) & 0x001f_c000)
                    | ((word >> 3) & 0x0fe0_0000));
            }
        }
        match buf.first() {
            Some(&first) if first < 0x80 => {
                self.pos += 1;
                return Ok(u64::from(first));
            }
            None => return Err(codec_err("truncated varint")),
            _ => {}
        }
        let mut v = 0u64;
        for (i, &byte) in buf.iter().enumerate().take(10) {
            if i == 9 && byte > 0x01 {
                return Err(codec_err("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << (i * 7);
            if byte & 0x80 == 0 {
                self.pos += i + 1;
                return Ok(v);
            }
        }
        if buf.len() < 10 {
            return Err(codec_err("truncated varint"));
        }
        Err(codec_err("varint longer than 10 bytes"))
    }

    /// Reads a varint and narrows it to `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        u32::try_from(self.varint()?).map_err(|_| codec_err("varint overflows u32"))
    }

    /// Reads a varint and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.varint()?).map_err(|_| codec_err("varint overflows usize"))
    }

    /// Reads one sign-extended byte.
    pub fn i8(&mut self) -> Result<i8> {
        Ok(self.byte()? as i8)
    }

    /// Reads a two-byte little-endian `i16`.
    pub fn i16(&mut self) -> Result<i16> {
        let lo = self.byte()?;
        let hi = self.byte()?;
        Ok(i16::from_le_bytes([lo, hi]))
    }

    /// Reads an `f64` written by [`put_f64`] (bit-exact, NaN payloads
    /// included).
    #[inline]
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.varint()?.swap_bytes()))
    }

    /// Reads a 2-D point (two [`WireReader::f64`]s).
    pub fn point(&mut self) -> Result<Point> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    /// Reads a string written by [`put_str`]. The declared length is
    /// checked against the remaining bytes *before* anything is
    /// allocated, so an oversized length prefix fails cheaply.
    pub fn string(&mut self) -> Result<String> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(codec_err(format!(
                "string length {len} exceeds {} remaining payload bytes",
                self.remaining()
            )));
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| codec_err("non-UTF-8 string bytes"))
    }

    /// Consumes the reader, rejecting trailing bytes.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(codec_err(format!(
                "{} trailing bytes after binary payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The message trait
// ---------------------------------------------------------------------

/// A protocol type with a binary wire encoding. Implementors provide
/// the payload body (version byte + tag + fields); framing, strict
/// whole-buffer decoding and the convenience allocating forms are
/// derived here.
pub trait WireMessage: Sized {
    /// Appends this message's binary payload (version byte, tag,
    /// fields) to `out`. Never fails and never allocates beyond `out`'s
    /// growth.
    fn encode_binary(&self, out: &mut Vec<u8>);

    /// Decodes the payload body from `r`, leaving any trailing bytes
    /// unread (so messages nest).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MiddlewareError::Codec`] on truncated input,
    /// unknown tags or unsupported versions.
    fn decode_body(r: &mut WireReader<'_>) -> Result<Self>;

    /// Decodes one complete payload, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`WireMessage::decode_body`], plus trailing garbage.
    fn decode_binary(payload: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(payload);
        let v = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Appends this message as one complete CRC-framed record.
    fn encode_frame_into(&self, out: &mut Vec<u8>) {
        frame_into(out, |b| self.encode_binary(b));
    }

    /// This message as a freshly allocated frame (convenience; hot
    /// paths reuse a buffer via [`WireMessage::encode_frame_into`]).
    fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_frame_into(&mut out);
        out
    }

    /// Decodes one complete frame (header + CRC validated).
    ///
    /// # Errors
    ///
    /// As [`unframe`] and [`WireMessage::decode_binary`].
    fn from_frame(bytes: &[u8]) -> Result<Self> {
        Self::decode_binary(unframe(bytes)?)
    }
}

// Message tags. One namespace across all frame kinds, so a frame
// misrouted between layers can never decode as the wrong type.
/// [`crate::messages::ToServer::Upload`].
pub const TAG_UPLOAD: u8 = 0x01;
/// [`crate::messages::ToServer::Answers`].
pub const TAG_ANSWERS: u8 = 0x02;
/// [`crate::messages::ToServer::Failed`].
pub const TAG_FAILED: u8 = 0x03;
/// [`crate::messages::ToVehicle::Assign`].
pub const TAG_ASSIGN: u8 = 0x10;
/// [`crate::messages::ToVehicle::RequestUpload`].
pub const TAG_REQUEST_UPLOAD: u8 = 0x11;
/// [`crate::messages::ToVehicle::Done`].
pub const TAG_DONE: u8 = 0x12;
/// [`crate::messages::ToVehicle::Abort`].
pub const TAG_ABORT: u8 = 0x13;
/// [`crate::protocol::Event::Message`].
pub const TAG_EVENT_MESSAGE: u8 = 0x20;
/// [`crate::protocol::Event::TimerFired`].
pub const TAG_EVENT_TIMER: u8 = 0x21;
/// [`crate::protocol::Event::LinksClosed`].
pub const TAG_EVENT_LINKS_CLOSED: u8 = 0x22;
/// [`crate::protocol::Event::Garbled`].
pub const TAG_EVENT_GARBLED: u8 = 0x23;
/// [`crate::segment::SegmentMap`].
pub const TAG_SEGMENT_MAP: u8 = 0x30;
/// [`crate::protocol::PlatformConfig`].
pub const TAG_CONFIG: u8 = 0x31;
/// [`crate::protocol::ShardedDatabase`].
pub const TAG_DATABASE: u8 = 0x32;
/// [`crate::durability::WalHeader`].
pub const TAG_WAL_HEADER: u8 = 0x33;
/// A [`crate::durability::SnapshotStore`] record.
pub const TAG_SNAPSHOT: u8 = 0x34;

// ---------------------------------------------------------------------
// Wire digest
// ---------------------------------------------------------------------

/// A running fingerprint of a frame sequence: frame count, byte count
/// and a chained CRC32 over the raw frame bytes in arrival order. The
/// deterministic backends (sim, fleet) fold every uplink frame the
/// server consumes into one of these, and the equivalence tests compare
/// the rendered digest byte-for-byte — proving not just that both
/// backends reached the same state, but that the *bytes on the wire*
/// were identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireDigest {
    crc: u32,
    frames: u64,
    bytes: u64,
}

impl WireDigest {
    /// An empty digest.
    pub fn new() -> Self {
        WireDigest::default()
    }

    /// Folds one raw frame into the digest.
    pub fn absorb(&mut self, frame: &[u8]) {
        self.crc = crc32_update(self.crc, frame);
        self.frames += 1;
        self.bytes += frame.len() as u64;
    }

    /// Frames absorbed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The digest as a comparable string.
    pub fn render(&self) -> String {
        format!(
            "frames={} bytes={} crc=0x{:08x}",
            self.frames, self.bytes, self.crc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer_and_streaming_equivalence() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        let split = crc32_update(crc32_update(0, b"1234"), b"56789");
        assert_eq!(split, crc32(b"123456789"));
    }

    #[test]
    fn varints_round_trip_boundaries() {
        let mut out = Vec::new();
        let cases = [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &cases {
            out.clear();
            put_varint(&mut out, v);
            let mut r = WireReader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
        // u64::MAX takes the full 10 bytes.
        out.clear();
        put_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // 11 continuation bytes: longer than any u64 varint.
        let bad = [0x80u8; 11];
        assert!(WireReader::new(&bad).varint().is_err());
        // 10 bytes but the last one carries bits past bit 63.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert!(WireReader::new(&overflow).varint().is_err());
        // Truncated mid-varint.
        assert!(WireReader::new(&[0x80u8]).varint().is_err());
    }

    #[test]
    fn byte_swapped_floats_compress_lattice_coordinates() {
        let mut out = Vec::new();
        put_f64(&mut out, 60.0);
        assert!(out.len() <= 3, "60.0 took {} bytes", out.len());
        let mut r = WireReader::new(&out);
        assert_eq!(r.f64().unwrap().to_bits(), 60.0f64.to_bits());

        // Arbitrary bit patterns still round-trip, at worst 10 bytes.
        for bits in [u64::MAX, 0x7ff8_0000_dead_beef, 1, 0x8000_0000_0000_0000] {
            out.clear();
            put_f64(&mut out, f64::from_bits(bits));
            assert!(out.len() <= 10);
            let mut r = WireReader::new(&out);
            assert_eq!(r.f64().unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn frames_validate_length_and_crc() {
        let mut frame = Vec::new();
        frame_into(&mut frame, |out| out.extend_from_slice(b"payload"));
        assert_eq!(unframe(&frame).unwrap(), b"payload");

        let mut bad_crc = frame.clone();
        *bad_crc.last_mut().unwrap() ^= 0x01;
        assert!(unframe(&bad_crc).is_err());

        let mut oversized = frame.clone();
        oversized[0] = 0xff; // length prefix disagrees with byte count
        assert!(unframe(&oversized).is_err());

        assert!(unframe(&frame[..frame.len() - 1]).is_err(), "truncated");
        assert!(unframe(&frame[..4]).is_err(), "short header");
    }

    #[test]
    fn string_length_is_checked_before_allocation() {
        let mut out = Vec::new();
        put_varint(&mut out, u64::MAX); // absurd declared length
        out.extend_from_slice(b"short");
        assert!(WireReader::new(&out).string().is_err());
    }

    #[test]
    fn wire_digest_is_order_sensitive() {
        let mut a = WireDigest::new();
        a.absorb(b"one");
        a.absorb(b"two");
        let mut b = WireDigest::new();
        b.absorb(b"two");
        b.absorb(b"one");
        assert_ne!(a.render(), b.render());
        assert_eq!(a.frames(), 2);
    }
}
