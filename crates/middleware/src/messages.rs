//! Client–server protocol messages, with a self-contained wire codec.
//!
//! Two codecs coexist. The live one is the compact binary encoding of
//! [`crate::wire`] (every type here implements
//! [`crate::wire::WireMessage`]); the original text codec — a
//! whitespace-separated token format where floats travel as the
//! 16-hex-digit bit pattern of their IEEE-754 representation (so
//! `-0.0`, subnormals, `f64::MAX` and even NaN payloads survive) and
//! strings are percent-escaped — is retained in full so logs written
//! before the binary switch still decode. Both round-trip every value
//! bit-exactly without pulling a serialization crate into the offline
//! build.

use crate::segment::SegmentId;
use crate::wire::{self, WireMessage, WireReader};
use crate::{MiddlewareError, Result};
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Identifier of a crowd-vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vehicle{}", self.0)
    }
}

/// A candidate AP distribution pattern for one road segment — the unit
/// of a mapping task (§5.2, Fig. 4(a)): crowd-vehicles answer whether
/// this pattern exists (+1) or not (−1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// The road segment the pattern describes.
    pub segment: SegmentId,
    /// Hypothesized AP positions within the segment.
    pub aps: Vec<Point>,
}

/// A coarse sensing upload from one crowd-vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingUpload {
    /// The reporting vehicle.
    pub vehicle: VehicleId,
    /// Consolidated estimates from the vehicle's online CS run.
    pub estimates: Vec<ApEstimate>,
}

/// A mapping task handed to a crowd-vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingTask {
    /// Server-side task index (stable across the round).
    pub task_id: usize,
    /// The pattern to confirm or deny.
    pub pattern: Pattern,
}

/// A crowd-vehicle's answer to one mapping task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingAnswer {
    /// The answering vehicle.
    pub vehicle: VehicleId,
    /// The task being answered.
    pub task_id: usize,
    /// +1 = the pattern exists, −1 = it does not.
    pub label: i8,
}

/// Messages from vehicles to the server (used by the threaded
/// [`crate::platform`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ToServer {
    /// Upload of coarse sensing results.
    Upload(SensingUpload),
    /// Answers to assigned mapping tasks.
    Answers(Vec<MappingAnswer>),
    /// The vehicle's thread failed (estimator error or caught panic).
    /// Lets the server abort the round immediately instead of waiting
    /// forever for an upload or answer that will never arrive.
    Failed(String),
}

/// Messages from the server to a vehicle.
#[derive(Debug, Clone, PartialEq)]
pub enum ToVehicle {
    /// Mapping tasks to label. Sent once per assignment wave: the
    /// initial assignment, deadline-expiry retries (same tasks again),
    /// and reassignment of tasks orphaned by a dead vehicle all arrive
    /// as further `Assign` batches.
    Assign(Vec<MappingTask>),
    /// The server never saw the vehicle's upload (lost or late): please
    /// resend it.
    RequestUpload,
    /// End of the crowdsourcing round.
    Done,
    /// The server abandoned the round for the given reason (quorum
    /// lost, inference failure). Distinguishes a deliberate abort from
    /// the server just vanishing.
    Abort(String),
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// Builds a [`MiddlewareError::Codec`].
pub(crate) fn codec_err(why: impl Into<String>) -> MiddlewareError {
    MiddlewareError::Codec(why.into())
}

/// Appends a float as its 16-hex-digit IEEE-754 bit pattern — the only
/// text encoding that round-trips every `f64` bit-exactly.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    let _ = write!(out, " {:016x}", v.to_bits());
}

/// Appends an unsigned integer in decimal.
pub(crate) fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, " {v}");
}

/// Appends a percent-escaped string token (prefix `s:`, so the empty
/// string still occupies one token).
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push_str(" s:");
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' => out.push(b as char),
            b'-' | b'_' | b'.' | b'~' | b':' | b'/' | b'(' | b')' | b',' => out.push(b as char),
            _ => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
}

/// Pull parser over the codec's whitespace-separated tokens. Every
/// accessor returns [`MiddlewareError::Codec`] on truncated or
/// malformed input; [`TokenReader::finish`] rejects trailing garbage.
pub(crate) struct TokenReader<'a> {
    tokens: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> TokenReader<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        TokenReader {
            tokens: s.split_ascii_whitespace(),
        }
    }

    fn next(&mut self) -> Result<&'a str> {
        self.tokens
            .next()
            .ok_or_else(|| codec_err("truncated message"))
    }

    /// The next raw token (used for message tags).
    pub(crate) fn tag(&mut self) -> Result<&'a str> {
        self.next()
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| codec_err(format!("bad u32 token {t:?}")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| codec_err(format!("bad u64 token {t:?}")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| codec_err(format!("bad usize token {t:?}")))
    }

    pub(crate) fn i8(&mut self) -> Result<i8> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| codec_err(format!("bad i8 token {t:?}")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        let t = self.next()?;
        if t.len() != 16 {
            return Err(codec_err(format!("bad f64 bit-pattern token {t:?}")));
        }
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| codec_err(format!("bad f64 bit-pattern token {t:?}")))
    }

    pub(crate) fn point(&mut self) -> Result<Point> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let t = self.next()?;
        let escaped = t
            .strip_prefix("s:")
            .ok_or_else(|| codec_err(format!("bad string token {t:?}")))?;
        let mut bytes = Vec::with_capacity(escaped.len());
        let mut rest = escaped.bytes();
        while let Some(b) = rest.next() {
            if b != b'%' {
                bytes.push(b);
                continue;
            }
            let (hi, lo) = (rest.next(), rest.next());
            let pair: String = [hi, lo].into_iter().flatten().map(|b| b as char).collect();
            if pair.len() != 2 {
                return Err(codec_err(format!("bad escape in string token {t:?}")));
            }
            let byte = u8::from_str_radix(&pair, 16)
                .map_err(|_| codec_err(format!("bad escape in string token {t:?}")))?;
            bytes.push(byte);
        }
        String::from_utf8(bytes).map_err(|_| codec_err(format!("non-UTF-8 string token {t:?}")))
    }

    /// Consumes the reader, rejecting any trailing tokens.
    pub(crate) fn finish(mut self) -> Result<()> {
        match self.tokens.next() {
            Some(t) => Err(codec_err(format!("trailing token {t:?}"))),
            None => Ok(()),
        }
    }
}

/// Caps a length prefix read from the wire so a malformed message
/// cannot force a huge allocation before the (inevitable) truncation
/// error surfaces.
pub(crate) fn wire_capacity(n: usize) -> usize {
    n.min(1024)
}

impl ToServer {
    /// Encodes the message in the wire format described in the module
    /// docs.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        match self {
            ToServer::Upload(u) => {
                out.push('U');
                push_u64(&mut out, u64::from(u.vehicle.0));
                push_u64(&mut out, u.estimates.len() as u64);
                for e in &u.estimates {
                    push_f64(&mut out, e.position.x);
                    push_f64(&mut out, e.position.y);
                    push_f64(&mut out, e.credit);
                }
            }
            ToServer::Answers(answers) => {
                out.push('A');
                push_u64(&mut out, answers.len() as u64);
                for a in answers {
                    push_u64(&mut out, u64::from(a.vehicle.0));
                    push_u64(&mut out, a.task_id as u64);
                    let _ = write!(out, " {}", a.label);
                }
            }
            ToServer::Failed(reason) => {
                out.push('F');
                push_str(&mut out, reason);
            }
        }
        out
    }

    /// Decodes a message produced by [`ToServer::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Codec`] on unknown tags, truncated
    /// input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        let msg = match r.tag()? {
            "U" => {
                let vehicle = VehicleId(r.u32()?);
                let n = r.usize()?;
                let mut estimates = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    estimates.push(ApEstimate {
                        position: r.point()?,
                        credit: r.f64()?,
                    });
                }
                ToServer::Upload(SensingUpload { vehicle, estimates })
            }
            "A" => {
                let n = r.usize()?;
                let mut answers = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    answers.push(MappingAnswer {
                        vehicle: VehicleId(r.u32()?),
                        task_id: r.usize()?,
                        label: r.i8()?,
                    });
                }
                ToServer::Answers(answers)
            }
            "F" => ToServer::Failed(r.string()?),
            t => return Err(codec_err(format!("unknown ToServer tag {t:?}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl ToVehicle {
    /// Encodes the message in the wire format described in the module
    /// docs.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        match self {
            ToVehicle::Assign(tasks) => {
                out.push('T');
                push_u64(&mut out, tasks.len() as u64);
                for t in tasks {
                    push_u64(&mut out, t.task_id as u64);
                    push_u64(&mut out, u64::from(t.pattern.segment.0));
                    push_u64(&mut out, t.pattern.aps.len() as u64);
                    for ap in &t.pattern.aps {
                        push_f64(&mut out, ap.x);
                        push_f64(&mut out, ap.y);
                    }
                }
            }
            ToVehicle::RequestUpload => out.push('R'),
            ToVehicle::Done => out.push('D'),
            ToVehicle::Abort(reason) => {
                out.push('X');
                push_str(&mut out, reason);
            }
        }
        out
    }

    /// Decodes a message produced by [`ToVehicle::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Codec`] on unknown tags, truncated
    /// input, malformed tokens, or trailing garbage.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        let msg = match r.tag()? {
            "T" => {
                let n = r.usize()?;
                let mut tasks = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    let task_id = r.usize()?;
                    let segment = SegmentId(r.u32()?);
                    let m = r.usize()?;
                    let mut aps = Vec::with_capacity(wire_capacity(m));
                    for _ in 0..m {
                        aps.push(r.point()?);
                    }
                    tasks.push(MappingTask {
                        task_id,
                        pattern: Pattern { segment, aps },
                    });
                }
                ToVehicle::Assign(tasks)
            }
            "R" => ToVehicle::RequestUpload,
            "D" => ToVehicle::Done,
            "X" => ToVehicle::Abort(r.string()?),
            t => return Err(codec_err(format!("unknown ToVehicle tag {t:?}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl WireMessage for ToServer {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            ToServer::Upload(u) => {
                wire::put_header(out, wire::TAG_UPLOAD);
                wire::put_varint(out, u64::from(u.vehicle.0));
                wire::put_varint(out, u.estimates.len() as u64);
                for e in &u.estimates {
                    wire::put_f64(out, e.position.x);
                    wire::put_f64(out, e.position.y);
                    wire::put_f64(out, e.credit);
                }
            }
            ToServer::Answers(answers) => {
                wire::put_header(out, wire::TAG_ANSWERS);
                wire::put_varint(out, answers.len() as u64);
                for a in answers {
                    wire::put_varint(out, u64::from(a.vehicle.0));
                    wire::put_varint(out, a.task_id as u64);
                    wire::put_i8(out, a.label);
                }
            }
            ToServer::Failed(reason) => {
                wire::put_header(out, wire::TAG_FAILED);
                wire::put_str(out, reason);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.header()? {
            wire::TAG_UPLOAD => {
                let vehicle = VehicleId(r.u32()?);
                let n = r.usize()?;
                let mut estimates = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    estimates.push(ApEstimate {
                        position: r.point()?,
                        credit: r.f64()?,
                    });
                }
                ToServer::Upload(SensingUpload { vehicle, estimates })
            }
            wire::TAG_ANSWERS => {
                let n = r.usize()?;
                let mut answers = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    answers.push(MappingAnswer {
                        vehicle: VehicleId(r.u32()?),
                        task_id: r.usize()?,
                        label: r.i8()?,
                    });
                }
                ToServer::Answers(answers)
            }
            wire::TAG_FAILED => ToServer::Failed(r.string()?),
            t => return Err(codec_err(format!("unknown ToServer binary tag {t:#04x}"))),
        })
    }
}

impl WireMessage for ToVehicle {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            ToVehicle::Assign(tasks) => {
                wire::put_header(out, wire::TAG_ASSIGN);
                wire::put_varint(out, tasks.len() as u64);
                for t in tasks {
                    wire::put_varint(out, t.task_id as u64);
                    wire::put_varint(out, u64::from(t.pattern.segment.0));
                    wire::put_varint(out, t.pattern.aps.len() as u64);
                    for ap in &t.pattern.aps {
                        wire::put_f64(out, ap.x);
                        wire::put_f64(out, ap.y);
                    }
                }
            }
            ToVehicle::RequestUpload => wire::put_header(out, wire::TAG_REQUEST_UPLOAD),
            ToVehicle::Done => wire::put_header(out, wire::TAG_DONE),
            ToVehicle::Abort(reason) => {
                wire::put_header(out, wire::TAG_ABORT);
                wire::put_str(out, reason);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.header()? {
            wire::TAG_ASSIGN => {
                let n = r.usize()?;
                let mut tasks = Vec::with_capacity(wire_capacity(n));
                for _ in 0..n {
                    let task_id = r.usize()?;
                    let segment = SegmentId(r.u32()?);
                    let m = r.usize()?;
                    let mut aps = Vec::with_capacity(wire_capacity(m));
                    for _ in 0..m {
                        aps.push(r.point()?);
                    }
                    tasks.push(MappingTask {
                        task_id,
                        pattern: Pattern { segment, aps },
                    });
                }
                ToVehicle::Assign(tasks)
            }
            wire::TAG_REQUEST_UPLOAD => ToVehicle::RequestUpload,
            wire::TAG_DONE => ToVehicle::Done,
            wire::TAG_ABORT => ToVehicle::Abort(r.string()?),
            t => return Err(codec_err(format!("unknown ToVehicle binary tag {t:#04x}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(VehicleId(3).to_string(), "vehicle3");
    }

    #[test]
    fn answer_labels_are_plain_data() {
        let a = MappingAnswer {
            vehicle: VehicleId(1),
            task_id: 7,
            label: -1,
        };
        assert_eq!(a.label, -1);
        let b = a;
        assert_eq!(a, b);
    }
}
