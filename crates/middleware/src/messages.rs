//! Client–server protocol messages.

use crate::segment::SegmentId;
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a crowd-vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vehicle{}", self.0)
    }
}

/// A candidate AP distribution pattern for one road segment — the unit
/// of a mapping task (§5.2, Fig. 4(a)): crowd-vehicles answer whether
/// this pattern exists (+1) or not (−1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// The road segment the pattern describes.
    pub segment: SegmentId,
    /// Hypothesized AP positions within the segment.
    pub aps: Vec<Point>,
}

/// A coarse sensing upload from one crowd-vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingUpload {
    /// The reporting vehicle.
    pub vehicle: VehicleId,
    /// Consolidated estimates from the vehicle's online CS run.
    pub estimates: Vec<ApEstimate>,
}

/// A mapping task handed to a crowd-vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingTask {
    /// Server-side task index (stable across the round).
    pub task_id: usize,
    /// The pattern to confirm or deny.
    pub pattern: Pattern,
}

/// A crowd-vehicle's answer to one mapping task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingAnswer {
    /// The answering vehicle.
    pub vehicle: VehicleId,
    /// The task being answered.
    pub task_id: usize,
    /// +1 = the pattern exists, −1 = it does not.
    pub label: i8,
}

/// Messages from vehicles to the server (used by the threaded
/// [`crate::platform`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ToServer {
    /// Upload of coarse sensing results.
    Upload(SensingUpload),
    /// Answers to assigned mapping tasks.
    Answers(Vec<MappingAnswer>),
    /// The vehicle's thread failed (estimator error or caught panic).
    /// Lets the server abort the round immediately instead of waiting
    /// forever for an upload or answer that will never arrive.
    Failed(String),
}

/// Messages from the server to a vehicle.
#[derive(Debug, Clone, PartialEq)]
pub enum ToVehicle {
    /// Mapping tasks to label. Sent once per assignment wave: the
    /// initial assignment, deadline-expiry retries (same tasks again),
    /// and reassignment of tasks orphaned by a dead vehicle all arrive
    /// as further `Assign` batches.
    Assign(Vec<MappingTask>),
    /// The server never saw the vehicle's upload (lost or late): please
    /// resend it.
    RequestUpload,
    /// End of the crowdsourcing round.
    Done,
    /// The server abandoned the round for the given reason (quorum
    /// lost, inference failure). Distinguishes a deliberate abort from
    /// the server just vanishing.
    Abort(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(VehicleId(3).to_string(), "vehicle3");
    }

    #[test]
    fn answer_labels_are_plain_data() {
        let a = MappingAnswer {
            vehicle: VehicleId(1),
            task_id: 7,
            label: -1,
        };
        assert_eq!(a.label, -1);
        let b = a;
        assert_eq!(a, b);
    }
}
