//! Deterministic fault injection for any platform transport.
//!
//! Crowdsensing lives or dies on its tolerance of unreliable
//! participants (§5.3–§5.5): vehicles crash mid-drive, cellular links
//! drop and reorder packets, and stragglers hold a round hostage. This
//! module wraps a transport's links in a seeded fault layer so all of
//! those failures can be *injected on schedule and replayed
//! byte-for-byte*:
//!
//! * [`FaultPlan`] describes link-level noise (drop / duplicate / delay
//!   probabilities) and per-vehicle misbehavior (silent crash or
//!   permanent stall at a chosen protocol point);
//! * [`FaultySender`] wraps any [`MessageSink`] — a crossbeam channel
//!   sender on the threaded backend, an in-memory queue on the
//!   simulation backend — and applies the plan's noise with a per-link
//!   [`ChaCha8Rng`], keyed by the plan seed, the vehicle id and the
//!   link direction. Two runs with the same plan therefore produce the
//!   same message-level fault sequence regardless of scheduling *and*
//!   regardless of which transport carries the messages.
//!
//! A default ([`FaultPlan::none`]) plan is perfectly transparent: no
//! extra RNG draws, no reordering, zero overhead on the healthy path.

use crate::messages::VehicleId;
use crate::{MiddlewareError, Result};
use crossbeam::channel::{SendError, Sender};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a [`FaultySender`] puts the messages that survive the fault
/// layer. Implemented by crossbeam senders (threaded transport) and by
/// the simulation driver's in-memory queues, so one fault layer serves
/// every backend.
pub trait MessageSink<T> {
    /// Delivers `msg`, handing it back as `Err(msg)` when the other end
    /// is gone.
    fn deliver(&mut self, msg: T) -> std::result::Result<(), T>;
}

impl<T> MessageSink<T> for Sender<T> {
    fn deliver(&mut self, msg: T) -> std::result::Result<(), T> {
        self.send(msg).map_err(|SendError(m)| m)
    }
}

/// Shared count of faults a set of [`FaultySender`]s actually injected.
///
/// The plan's probabilities say what *may* happen; the tally says what
/// *did*. One tally is typically shared (via [`Arc`]) by every link of a
/// platform round, so the server can report observed fault totals next
/// to its other round metrics. Counts are exact: each is bumped with a
/// relaxed atomic add at the injection site, and the per-link RNG
/// streams make the totals replayable along with the message sequence.
#[derive(Debug, Default)]
pub struct FaultTally {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    server_crashes: AtomicU64,
    torn_wal_tails: AtomicU64,
}

impl FaultTally {
    /// A fresh all-zero tally.
    pub fn new() -> Self {
        FaultTally::default()
    }

    /// Messages silently dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Messages held back past later sends (reordered).
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Injected server crashes (any [`ServerFault`] variant).
    pub fn server_crashes(&self) -> u64 {
        self.server_crashes.load(Ordering::Relaxed)
    }

    /// Injected crashes that also mangled the WAL tail (truncation or
    /// corruption).
    pub fn torn_wal_tails(&self) -> u64 {
        self.torn_wal_tails.load(Ordering::Relaxed)
    }

    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped()
            + self.duplicated()
            + self.delayed()
            + self.server_crashes()
            + self.torn_wal_tails()
    }

    /// Records one injected server crash.
    pub(crate) fn count_server_crash(&self) {
        self.server_crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injected torn WAL tail.
    pub(crate) fn count_torn_wal_tail(&self) {
        self.torn_wal_tails.fetch_add(1, Ordering::Relaxed);
    }
}

/// Protocol points at which a scheduled vehicle fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultPoint {
    /// Before the vehicle runs its estimator.
    Sense,
    /// After sensing, before the coarse upload is sent.
    Upload,
    /// Upon receiving the first task assignment, before answering.
    Answer,
}

/// Scheduled misbehavior of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misbehavior {
    /// The vehicle thread exits silently — no `Failed` report, no
    /// upload, nothing. The server only notices via its deadline.
    Crash(FaultPoint),
    /// The vehicle stops responding but keeps draining its inbox until
    /// the server hangs up (a straggler past every deadline).
    Stall(FaultPoint),
}

impl Misbehavior {
    /// The protocol point at which this misbehavior fires.
    pub fn point(&self) -> FaultPoint {
        match self {
            Misbehavior::Crash(p) | Misbehavior::Stall(p) => *p,
        }
    }
}

/// A scheduled crash of the *server* process, keyed to the index of
/// the event being handled when it fires. The crash model is
/// append-then-apply against the durability write-ahead log: what a
/// restart recovers depends on where in that sequence the process
/// died and what state the log was left in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// The process dies before the in-flight event reaches the log:
    /// that event is lost outright, exactly like a message the network
    /// never delivered.
    CrashBeforeAppend,
    /// The process dies after the event is logged but before any of
    /// its effects (sends, acks) leave the building: recovery replays
    /// the event, its outputs are re-derived or retried.
    CrashAfterAppend,
    /// The process dies after appending, and the unsynced log suffix
    /// loses its last `n` bytes (a torn write at the tail).
    CrashTruncateTail(usize),
    /// The process dies after appending, and the last byte of the log
    /// is corrupted — recovery must detect the bad CRC and drop the
    /// torn tail.
    CrashCorruptTail,
}

/// Direction of a platform link, used to key per-link RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// Vehicle → server uplink.
    ToServer,
    /// Server → vehicle downlink.
    ToVehicle,
}

/// A replayable fault schedule for one platform round.
///
/// All probabilities are per-message; `drop + duplicate + delay` must
/// not exceed 1. Vehicle misbehaviors fire once, at their scheduled
/// [`FaultPoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault layer's own RNG streams (independent of the
    /// platform seed, so the same drive can be replayed under different
    /// weather).
    pub seed: u64,
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a message is held back and delivered after up
    /// to [`FaultPlan::max_delay`] later messages on the same link
    /// (reordering).
    pub delay_prob: f64,
    /// Maximum number of later messages a delayed message lets pass.
    pub max_delay: usize,
    vehicle_faults: BTreeMap<VehicleId, Misbehavior>,
    /// Server crash schedule, keyed by the 0-based index of the event
    /// the server is handling when the crash fires. Each entry fires
    /// at most once.
    server_faults: BTreeMap<u64, ServerFault>,
    /// Campaign snapshot writes (by 0-based write sequence) that are
    /// torn mid-write.
    torn_snapshots: BTreeSet<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: fully transparent links, no misbehavior.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 2,
            vehicle_faults: BTreeMap::new(),
            server_faults: BTreeMap::new(),
            torn_snapshots: BTreeSet::new(),
        }
    }

    /// A plan with message-level noise only, seeded for replay.
    pub fn noisy(seed: u64, drop_prob: f64, duplicate_prob: f64, delay_prob: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob,
            duplicate_prob,
            delay_prob,
            ..FaultPlan::none()
        }
    }

    /// Schedules a silent crash for `vehicle` at `point`.
    pub fn crash(mut self, vehicle: VehicleId, point: FaultPoint) -> Self {
        self.vehicle_faults
            .insert(vehicle, Misbehavior::Crash(point));
        self
    }

    /// Schedules a permanent stall for `vehicle` at `point`.
    pub fn stall(mut self, vehicle: VehicleId, point: FaultPoint) -> Self {
        self.vehicle_faults
            .insert(vehicle, Misbehavior::Stall(point));
        self
    }

    /// The misbehavior scheduled for `vehicle`, if any.
    pub fn misbehavior(&self, vehicle: VehicleId) -> Option<Misbehavior> {
        self.vehicle_faults.get(&vehicle).copied()
    }

    /// Schedules a server crash at the event with 0-based sequence
    /// index `event_index`. The decision is a pure function of the
    /// index, so the same plan over the same event stream always
    /// crashes at the same place — the chaos harness's replayability
    /// contract.
    pub fn server_crash(mut self, event_index: u64, fault: ServerFault) -> Self {
        self.server_faults.insert(event_index, fault);
        self
    }

    /// Schedules the campaign snapshot with write sequence `seq` to be
    /// torn mid-write.
    pub fn torn_snapshot(mut self, seq: u64) -> Self {
        self.torn_snapshots.insert(seq);
        self
    }

    /// The server crash scheduled for the event at `event_index`, if
    /// any.
    pub fn server_fault(&self, event_index: u64) -> Option<ServerFault> {
        self.server_faults.get(&event_index).copied()
    }

    /// Whether any server-side crash is scheduled.
    pub fn has_server_faults(&self) -> bool {
        !self.server_faults.is_empty()
    }

    /// Whether the snapshot write with sequence `seq` is scheduled to
    /// be torn.
    pub fn snapshot_torn(&self, seq: u64) -> bool {
        self.torn_snapshots.contains(&seq)
    }

    /// Whether the plan perturbs messages at all.
    pub fn is_noisy(&self) -> bool {
        self.drop_prob > 0.0 || self.duplicate_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Checks the plan's probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidConfig`] when any probability
    /// is outside `[0, 1]`, non-finite, or their sum exceeds 1.
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("delay_prob", self.delay_prob),
        ];
        for (name, p) in probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(MiddlewareError::InvalidConfig(format!(
                    "fault plan {name} must lie in [0, 1], got {p}"
                )));
            }
        }
        let total = self.drop_prob + self.duplicate_prob + self.delay_prob;
        if total > 1.0 {
            return Err(MiddlewareError::InvalidConfig(format!(
                "fault plan probabilities sum to {total} > 1"
            )));
        }
        if self.delay_prob > 0.0 && self.max_delay == 0 {
            return Err(MiddlewareError::InvalidConfig(
                "delay_prob > 0 requires max_delay >= 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Wraps a sender in this plan's noise for one link. Noiseless
    /// plans produce a zero-overhead pass-through.
    pub fn sender<T: Clone>(
        &self,
        tx: Sender<T>,
        vehicle: VehicleId,
        direction: LinkDirection,
    ) -> FaultySender<T> {
        self.sender_tallied(tx, vehicle, direction, None)
    }

    /// [`FaultPlan::sender`] with injected faults counted into `tally`
    /// (shared across links, so one tally can cover a whole round).
    pub fn sender_tallied<T: Clone, S: MessageSink<T>>(
        &self,
        tx: S,
        vehicle: VehicleId,
        direction: LinkDirection,
        tally: Option<Arc<FaultTally>>,
    ) -> FaultySender<T, S> {
        let noise = if self.is_noisy() {
            Some(LinkNoise {
                rng: ChaCha8Rng::seed_from_u64(link_seed(self.seed, vehicle, direction)),
                drop_prob: self.drop_prob,
                duplicate_prob: self.duplicate_prob,
                delay_prob: self.delay_prob,
                max_delay: self.max_delay.max(1),
                held: Vec::new(),
            })
        } else {
            None
        };
        FaultySender { tx, noise, tally }
    }
}

/// Derives a per-link seed from the plan seed, vehicle and direction
/// (splitmix64 finalizer — avalanches even adjacent vehicle ids).
fn link_seed(seed: u64, vehicle: VehicleId, direction: LinkDirection) -> u64 {
    let dir = match direction {
        LinkDirection::ToServer => 0u64,
        LinkDirection::ToVehicle => 1u64,
    };
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(vehicle.0) * 2 + dir + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct LinkNoise<T> {
    rng: ChaCha8Rng,
    drop_prob: f64,
    duplicate_prob: f64,
    delay_prob: f64,
    max_delay: usize,
    /// Delayed messages: `(sends still to let pass, message)`.
    held: Vec<(usize, T)>,
}

/// A link sender that applies a seeded fault schedule: messages may be
/// dropped, duplicated, or held back past later sends. With no noise
/// configured it is a plain pass-through. Held messages are flushed in
/// order when their countdown expires and, last-resort, when the sender
/// is dropped (in-flight packets still land after the sender hangs up).
///
/// Generic over the underlying [`MessageSink`]; the default is a
/// crossbeam channel sender, which keeps the threaded transport's
/// `FaultySender<T>` spelling unchanged.
pub struct FaultySender<T, S = Sender<T>>
where
    S: MessageSink<T>,
{
    tx: S,
    noise: Option<LinkNoise<T>>,
    tally: Option<Arc<FaultTally>>,
}

impl<T: Clone, S: MessageSink<T>> FaultySender<T, S> {
    /// Sends `msg` through the fault layer. Returns `Err` only when the
    /// underlying link is disconnected; injected drops report `Ok`
    /// (the sender cannot tell its packet was lost — that is the
    /// point).
    pub fn send(&mut self, msg: T) -> std::result::Result<(), SendError<T>> {
        let Some(noise) = self.noise.as_mut() else {
            return self.tx.deliver(msg).map_err(SendError);
        };
        // Age held messages; flush, in hold order, those whose countdown
        // of later sends has expired.
        let mut still_held = Vec::with_capacity(noise.held.len());
        for (left, held_msg) in noise.held.drain(..) {
            if left <= 1 {
                self.tx.deliver(held_msg).map_err(SendError)?;
            } else {
                still_held.push((left - 1, held_msg));
            }
        }
        noise.held = still_held;

        let u: f64 = noise.rng.random_range(0.0..1.0);
        if u < noise.drop_prob {
            if let Some(t) = &self.tally {
                t.dropped.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(());
        }
        if u < noise.drop_prob + noise.duplicate_prob {
            if let Some(t) = &self.tally {
                t.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            self.tx.deliver(msg.clone()).map_err(SendError)?;
            return self.tx.deliver(msg).map_err(SendError);
        }
        if u < noise.drop_prob + noise.duplicate_prob + noise.delay_prob {
            if let Some(t) = &self.tally {
                t.delayed.fetch_add(1, Ordering::Relaxed);
            }
            let k = noise.rng.random_range(1..=noise.max_delay);
            noise.held.push((k, msg));
            return Ok(());
        }
        self.tx.deliver(msg).map_err(SendError)
    }
}

impl<T, S: MessageSink<T>> Drop for FaultySender<T, S> {
    fn drop(&mut self) {
        if let Some(noise) = self.noise.as_mut() {
            for (_, msg) in noise.held.drain(..) {
                let _ = self.tx.deliver(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;

    fn drain(rx: &channel::Receiver<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(v) = rx.try_recv() {
            out.push(v);
        }
        out
    }

    #[test]
    fn transparent_plan_passes_everything_through_in_order() {
        let (tx, rx) = channel::unbounded();
        let mut s = FaultPlan::none().sender(tx, VehicleId(0), LinkDirection::ToServer);
        for i in 0..10 {
            s.send(i).unwrap();
        }
        assert_eq!(drain(&rx), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_probability_one_loses_everything() {
        let (tx, rx) = channel::unbounded();
        let mut s =
            FaultPlan::noisy(1, 1.0, 0.0, 0.0).sender(tx, VehicleId(0), LinkDirection::ToServer);
        for i in 0..10 {
            s.send(i).unwrap();
        }
        drop(s);
        assert!(drain(&rx).is_empty());
    }

    #[test]
    fn duplicate_probability_one_doubles_everything() {
        let (tx, rx) = channel::unbounded();
        let mut s =
            FaultPlan::noisy(1, 0.0, 1.0, 0.0).sender(tx, VehicleId(0), LinkDirection::ToServer);
        for i in 0..5 {
            s.send(i).unwrap();
        }
        assert_eq!(drain(&rx), vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn delayed_messages_reorder_but_are_never_lost() {
        let (tx, rx) = channel::unbounded();
        let mut plan = FaultPlan::noisy(7, 0.0, 0.0, 0.5);
        plan.max_delay = 2;
        let mut s = plan.sender(tx, VehicleId(3), LinkDirection::ToVehicle);
        for i in 0..50 {
            s.send(i).unwrap();
        }
        drop(s); // flush any still-held tail
        let mut got = drain(&rx);
        assert_eq!(
            got.len(),
            50,
            "no message may vanish under delay-only noise"
        );
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_plan_same_link_is_replayable() {
        let run = || {
            let (tx, rx) = channel::unbounded();
            let mut s = FaultPlan::noisy(42, 0.2, 0.1, 0.2).sender(
                tx,
                VehicleId(1),
                LinkDirection::ToServer,
            );
            for i in 0..100 {
                s.send(i).unwrap();
            }
            drop(s);
            drain(&rx)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn links_get_independent_streams() {
        assert_ne!(
            link_seed(0, VehicleId(0), LinkDirection::ToServer),
            link_seed(0, VehicleId(0), LinkDirection::ToVehicle)
        );
        assert_ne!(
            link_seed(0, VehicleId(0), LinkDirection::ToServer),
            link_seed(0, VehicleId(1), LinkDirection::ToServer)
        );
    }

    #[test]
    fn plan_validation_rejects_nonsense() {
        assert!(FaultPlan::noisy(0, 1.1, 0.0, 0.0).validate().is_err());
        assert!(FaultPlan::noisy(0, 0.6, 0.6, 0.0).validate().is_err());
        assert!(FaultPlan::noisy(0, -0.1, 0.0, 0.0).validate().is_err());
        let mut bad_delay = FaultPlan::noisy(0, 0.0, 0.0, 0.5);
        bad_delay.max_delay = 0;
        assert!(bad_delay.validate().is_err());
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::noisy(0, 0.3, 0.3, 0.3).validate().is_ok());
    }

    #[test]
    fn tally_counts_injected_faults_exactly() {
        let tally = Arc::new(FaultTally::new());
        let (tx, rx) = channel::unbounded();
        let mut s = FaultPlan::noisy(9, 0.3, 0.3, 0.3).sender_tallied(
            tx,
            VehicleId(0),
            LinkDirection::ToServer,
            Some(Arc::clone(&tally)),
        );
        for i in 0..200u32 {
            s.send(i).unwrap();
        }
        drop(s);
        let delivered = drain(&rx).len() as u64;
        // Conservation: every message is delivered once, plus one extra
        // per duplicate, minus one per drop (delays only reorder).
        assert_eq!(delivered, 200 - tally.dropped() + tally.duplicated());
        assert!(tally.dropped() > 0 && tally.duplicated() > 0 && tally.delayed() > 0);
        assert_eq!(
            tally.total(),
            tally.dropped() + tally.duplicated() + tally.delayed()
        );
    }

    #[test]
    fn server_crash_schedule_is_a_pure_function_of_the_index() {
        let plan = FaultPlan::none()
            .server_crash(3, ServerFault::CrashBeforeAppend)
            .server_crash(9, ServerFault::CrashTruncateTail(5))
            .torn_snapshot(1);
        assert_eq!(plan.server_fault(3), Some(ServerFault::CrashBeforeAppend));
        assert_eq!(
            plan.server_fault(9),
            Some(ServerFault::CrashTruncateTail(5))
        );
        assert_eq!(plan.server_fault(4), None);
        assert!(plan.has_server_faults());
        assert!(!FaultPlan::none().has_server_faults());
        assert!(plan.snapshot_torn(1));
        assert!(!plan.snapshot_torn(0));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn misbehavior_schedule_round_trips() {
        let plan = FaultPlan::none()
            .crash(VehicleId(1), FaultPoint::Upload)
            .stall(VehicleId(2), FaultPoint::Answer);
        assert_eq!(
            plan.misbehavior(VehicleId(1)),
            Some(Misbehavior::Crash(FaultPoint::Upload))
        );
        assert_eq!(
            plan.misbehavior(VehicleId(2)),
            Some(Misbehavior::Stall(FaultPoint::Answer))
        );
        assert_eq!(plan.misbehavior(VehicleId(0)), None);
        assert_eq!(
            Misbehavior::Stall(FaultPoint::Answer).point(),
            FaultPoint::Answer
        );
    }
}
