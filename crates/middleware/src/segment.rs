//! Road segments: the spatial unit of task assignment.
//!
//! The crowd-server partitions the service area into square segments;
//! sensing uploads and mapping tasks are keyed by segment.

use crate::messages::{codec_err, push_f64, TokenReader};
use crate::wire::{self, WireMessage, WireReader};
use crate::Result;
use crowdwifi_geo::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of one road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A square partition of the service area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentMap {
    area: Rect,
    segment_size: f64,
    nx: u32,
    ny: u32,
}

impl SegmentMap {
    /// Partitions `area` into `segment_size`-meter squares.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is not positive and finite.
    pub fn new(area: Rect, segment_size: f64) -> Self {
        assert!(
            segment_size > 0.0 && segment_size.is_finite(),
            "segment_size must be positive and finite"
        );
        let nx = ((area.width() / segment_size).ceil() as u32).max(1);
        let ny = ((area.height() / segment_size).ceil() as u32).max(1);
        SegmentMap {
            area,
            segment_size,
            nx,
            ny,
        }
    }

    /// The covered area.
    pub fn area(&self) -> Rect {
        self.area
    }

    /// Total number of segments.
    pub fn len(&self) -> usize {
        (self.nx * self.ny) as usize
    }

    /// Whether the map has no segments (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment containing `p` (outside points clamp to the border).
    pub fn segment_of(&self, p: Point) -> SegmentId {
        let clamped = self.area.clamp(p);
        let i = (((clamped.x - self.area.min().x) / self.segment_size) as u32).min(self.nx - 1);
        let j = (((clamped.y - self.area.min().y) / self.segment_size) as u32).min(self.ny - 1);
        SegmentId(j * self.nx + i)
    }

    /// The bounding rectangle of a segment.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn bounds(&self, id: SegmentId) -> Rect {
        assert!((id.0 as usize) < self.len(), "segment id out of range");
        let i = id.0 % self.nx;
        let j = id.0 / self.nx;
        let min = Point::new(
            self.area.min().x + i as f64 * self.segment_size,
            self.area.min().y + j as f64 * self.segment_size,
        );
        let max = Point::new(
            (min.x + self.segment_size).min(self.area.max().x.max(min.x)),
            (min.y + self.segment_size).min(self.area.max().y.max(min.y)),
        );
        Rect::new(min, max).expect("segment bounds are ordered")
    }

    /// Segments within `radius` of `p` (coarse: by segment-center
    /// distance plus half a diagonal).
    pub fn segments_near(&self, p: Point, radius: f64) -> Vec<SegmentId> {
        let slack = self.segment_size * std::f64::consts::SQRT_2 / 2.0;
        (0..self.len() as u32)
            .map(SegmentId)
            .filter(|&id| self.bounds(id).center().distance(p) <= radius + slack)
            .collect()
    }

    /// Encodes the map in the wire format of [`crate::messages`]: area
    /// corners and segment size as bit-exact floats. The grid shape is
    /// derived from those on decode, so a round trip reproduces the
    /// partition exactly.
    pub fn to_wire(&self) -> String {
        let mut out = String::from("S");
        push_f64(&mut out, self.area.min().x);
        push_f64(&mut out, self.area.min().y);
        push_f64(&mut out, self.area.max().x);
        push_f64(&mut out, self.area.max().y);
        push_f64(&mut out, self.segment_size);
        out
    }

    /// Decodes a map produced by [`SegmentMap::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::MiddlewareError::Codec`] on malformed input,
    /// including geometry that [`SegmentMap::new`] would reject.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut r = TokenReader::new(s);
        match r.tag()? {
            "S" => {}
            t => return Err(codec_err(format!("unknown SegmentMap tag {t:?}"))),
        }
        let min = r.point()?;
        let max = r.point()?;
        let segment_size = r.f64()?;
        r.finish()?;
        let area = Rect::new(min, max).map_err(|e| codec_err(format!("bad segment area: {e}")))?;
        if !(segment_size > 0.0 && segment_size.is_finite()) {
            return Err(codec_err(format!("bad segment size {segment_size}")));
        }
        Ok(SegmentMap::new(area, segment_size))
    }
}

impl WireMessage for SegmentMap {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        wire::put_header(out, wire::TAG_SEGMENT_MAP);
        wire::put_f64(out, self.area.min().x);
        wire::put_f64(out, self.area.min().y);
        wire::put_f64(out, self.area.max().x);
        wire::put_f64(out, self.area.max().y);
        wire::put_f64(out, self.segment_size);
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self> {
        match r.header()? {
            wire::TAG_SEGMENT_MAP => {}
            t => return Err(codec_err(format!("unknown SegmentMap binary tag {t:#04x}"))),
        }
        let min = r.point()?;
        let max = r.point()?;
        let segment_size = r.f64()?;
        let area = Rect::new(min, max).map_err(|e| codec_err(format!("bad segment area: {e}")))?;
        if !(segment_size > 0.0 && segment_size.is_finite()) {
            return Err(codec_err(format!("bad segment size {segment_size}")));
        }
        Ok(SegmentMap::new(area, segment_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SegmentMap {
        SegmentMap::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 180.0)).unwrap(),
            100.0,
        )
    }

    #[test]
    fn partition_counts() {
        let m = map();
        assert_eq!(m.len(), 6); // 3 × 2
    }

    #[test]
    fn segment_lookup_and_bounds_roundtrip() {
        let m = map();
        let p = Point::new(250.0, 150.0);
        let id = m.segment_of(p);
        assert!(m.bounds(id).contains(p));
    }

    #[test]
    fn outside_points_clamp() {
        let m = map();
        let id = m.segment_of(Point::new(-50.0, -50.0));
        assert_eq!(id, SegmentId(0));
        let id2 = m.segment_of(Point::new(900.0, 900.0));
        assert_eq!(id2, SegmentId(5));
    }

    #[test]
    fn segments_near_returns_neighborhood() {
        let m = map();
        let near = m.segments_near(Point::new(150.0, 90.0), 120.0);
        assert!(near.len() >= 2);
        assert!(near.len() <= m.len());
        let far = m.segments_near(Point::new(-500.0, -500.0), 10.0);
        assert!(far.is_empty());
    }
}
