//! Round-trip property tests for the middleware wire codec: any message
//! the protocol can produce must decode back bit-exactly, including the
//! awkward corners — empty task batches, `f64::MAX` credits, negative
//! zero, infinities, NaN bit patterns, and strings full of unsafe
//! characters.

use crowdwifi_core::ApEstimate;
use crowdwifi_geo::{Point, Rect};
use crowdwifi_middleware::messages::{
    MappingAnswer, MappingTask, Pattern, SensingUpload, ToServer, ToVehicle, VehicleId,
};
use crowdwifi_middleware::protocol::{
    Action, Event, PlatformConfig, ServerCore, TimerId, VehicleFate, VirtualInstant,
};
use crowdwifi_middleware::segment::{SegmentId, SegmentMap};
use crowdwifi_middleware::wire::{self, WireMessage};
use crowdwifi_middleware::MiddlewareError;
use crowdwifi_obs::Registry;
use proptest::collection::vec;
use proptest::prelude::*;

/// Bit-pattern-exact equality via the canonical encoding: two messages
/// are "the same on the wire" iff they re-encode identically. This is
/// the right comparison for floats, where `==` lies about NaN and
/// `-0.0`. Both codecs are checked on the same value, plus the
/// cross-codec trip: binary-decode then text-encode must match the
/// direct text encoding.
fn assert_to_server_roundtrips(msg: &ToServer) {
    let wire = msg.to_wire();
    let decoded = ToServer::from_wire(&wire).expect("text decode");
    assert_eq!(wire, decoded.to_wire(), "text re-encode diverged: {msg:?}");
    let frame = msg.to_frame();
    let decoded = ToServer::from_frame(&frame).expect("binary decode");
    assert_eq!(frame, decoded.to_frame(), "binary re-encode: {msg:?}");
    assert_eq!(wire, decoded.to_wire(), "cross-codec diverged: {msg:?}");
}

fn assert_to_vehicle_roundtrips(msg: &ToVehicle) {
    let wire = msg.to_wire();
    let decoded = ToVehicle::from_wire(&wire).expect("text decode");
    assert_eq!(wire, decoded.to_wire(), "text re-encode diverged: {msg:?}");
    let frame = msg.to_frame();
    let decoded = ToVehicle::from_frame(&frame).expect("binary decode");
    assert_eq!(frame, decoded.to_frame(), "binary re-encode: {msg:?}");
    assert_eq!(wire, decoded.to_wire(), "cross-codec diverged: {msg:?}");
}

/// An arbitrary f64 bit pattern (covers NaNs, infinities, subnormals).
fn f64_from_bits(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Maps a code point to a char, folding surrogates onto '�'.
fn char_from(cp: u32) -> char {
    char::from_u32(cp % 0x11_0000).unwrap_or('\u{fffd}')
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uploads_roundtrip(
        vehicle in 0u32..u32::MAX,
        estimates in vec((0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..8),
    ) {
        let msg = ToServer::Upload(SensingUpload {
            vehicle: VehicleId(vehicle),
            estimates: estimates
                .into_iter()
                .map(|(x, y, credit)| ApEstimate {
                    position: Point::new(f64_from_bits(x), f64_from_bits(y)),
                    credit: f64_from_bits(credit),
                })
                .collect(),
        });
        assert_to_server_roundtrips(&msg);
    }

    #[test]
    fn answers_roundtrip(
        answers in vec((0u32..u32::MAX, 0usize..1_000_000, 0u8..2), 0..16),
    ) {
        let msg = ToServer::Answers(
            answers
                .into_iter()
                .map(|(vehicle, task_id, flip)| MappingAnswer {
                    vehicle: VehicleId(vehicle),
                    task_id,
                    label: if flip == 0 { -1 } else { 1 },
                })
                .collect(),
        );
        assert_to_server_roundtrips(&msg);
    }

    #[test]
    fn assignments_roundtrip(
        tasks in vec(
            (0usize..1_000_000, 0u32..4096, vec((0u64..u64::MAX, 0u64..u64::MAX), 0..4)),
            0..6,
        ),
    ) {
        let msg = ToVehicle::Assign(
            tasks
                .into_iter()
                .map(|(task_id, segment, aps)| MappingTask {
                    task_id,
                    pattern: Pattern {
                        segment: SegmentId(segment),
                        aps: aps
                            .into_iter()
                            .map(|(x, y)| Point::new(f64_from_bits(x), f64_from_bits(y)))
                            .collect(),
                    },
                })
                .collect(),
        );
        assert_to_vehicle_roundtrips(&msg);
    }

    #[test]
    fn reason_strings_roundtrip(codepoints in vec(0u32..0x11_0000, 0..32)) {
        let reason: String = codepoints.into_iter().map(char_from).collect();
        let failed = ToServer::Failed(reason.clone());
        let wire = failed.to_wire();
        match ToServer::from_wire(&wire).expect("decode") {
            ToServer::Failed(decoded) => prop_assert_eq!(decoded, reason.clone()),
            other => prop_assert!(false, "decoded to {:?}", other),
        }
        let abort = ToVehicle::Abort(reason.clone());
        match ToVehicle::from_wire(&abort.to_wire()).expect("decode") {
            ToVehicle::Abort(decoded) => prop_assert_eq!(decoded, reason),
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    #[test]
    fn events_roundtrip(
        now in 0u64..u64::MAX,
        vehicle in 0u32..u32::MAX,
        generation in 0u64..u64::MAX,
        codepoints in vec(0u32..0x11_0000, 0..16),
        estimates in vec((0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..4),
    ) {
        // The durability WAL stores every server-side event in the same
        // wire format the messages use; its nested-message encoding must
        // survive the trip bit-exactly too.
        let reason: String = codepoints.into_iter().map(char_from).collect();
        let events = [
            Event::LinksClosed { now: VirtualInstant::from_micros(now) },
            Event::TimerFired {
                now: VirtualInstant::from_micros(now),
                timer: TimerId { vehicle: VehicleId(vehicle), generation },
            },
            Event::Message {
                now: VirtualInstant::from_micros(now),
                from: VehicleId(vehicle),
                msg: ToServer::Failed(reason),
            },
            Event::Message {
                now: VirtualInstant::from_micros(now),
                from: VehicleId(vehicle),
                msg: ToServer::Upload(SensingUpload {
                    vehicle: VehicleId(vehicle),
                    estimates: estimates
                        .into_iter()
                        .map(|(x, y, credit)| ApEstimate {
                            position: Point::new(f64_from_bits(x), f64_from_bits(y)),
                            credit: f64_from_bits(credit),
                        })
                        .collect(),
                }),
            },
        ];
        for event in &events {
            let wire = event.to_wire();
            let decoded = Event::from_wire(&wire).expect("decode");
            prop_assert_eq!(&wire, &decoded.to_wire(), "re-encode diverged for {:?}", event);
            let frame = event.to_frame();
            let decoded = Event::from_frame(&frame).expect("binary decode");
            prop_assert_eq!(&frame, &decoded.to_frame(), "binary re-encode diverged for {:?}", event);
            prop_assert_eq!(&wire, &decoded.to_wire(), "cross-codec diverged for {:?}", event);
        }
    }

    #[test]
    fn segment_maps_roundtrip(
        x0 in -1e4f64..1e4,
        y0 in -1e4f64..1e4,
        w in 1.0f64..2e4,
        h in 1.0f64..2e4,
        size in 0.5f64..5e3,
    ) {
        let area = Rect::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h)).unwrap();
        let map = SegmentMap::new(area, size);
        let decoded = SegmentMap::from_wire(&map.to_wire()).expect("decode");
        prop_assert_eq!(map.to_wire(), decoded.to_wire());
        prop_assert_eq!(map.len(), decoded.len());
        let binary = SegmentMap::from_frame(&map.to_frame()).expect("binary decode");
        prop_assert_eq!(map.to_frame(), binary.to_frame());
        prop_assert_eq!(map.len(), binary.len());
        // Same partition: probe a few points.
        for (fx, fy) in [(0.1, 0.2), (0.5, 0.5), (0.9, 0.7)] {
            let p = Point::new(x0 + fx * w, y0 + fy * h);
            prop_assert_eq!(map.segment_of(p), decoded.segment_of(p));
            prop_assert_eq!(map.segment_of(p), binary.segment_of(p));
        }
    }
}

#[test]
fn empty_task_assignment_roundtrips() {
    // The protocol really sends these: a vehicle alive during labeling
    // with nothing assigned still gets an (empty) Assign.
    assert_to_vehicle_roundtrips(&ToVehicle::Assign(Vec::new()));
    assert_to_server_roundtrips(&ToServer::Answers(Vec::new()));
    assert_to_server_roundtrips(&ToServer::Upload(SensingUpload {
        vehicle: VehicleId(0),
        estimates: Vec::new(),
    }));
}

#[test]
fn extreme_floats_roundtrip_bit_exactly() {
    for credit in [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::EPSILON,
    ] {
        let msg = ToServer::Upload(SensingUpload {
            vehicle: VehicleId(7),
            estimates: vec![ApEstimate {
                position: Point::new(credit, -credit),
                credit,
            }],
        });
        let wire = msg.to_wire();
        let decoded = ToServer::from_wire(&wire).expect("decode");
        let ToServer::Upload(upload) = &decoded else {
            panic!("decoded to {decoded:?}");
        };
        assert_eq!(upload.estimates[0].credit.to_bits(), credit.to_bits());
        assert_eq!(wire, decoded.to_wire());
        // Binary codec: the varint float packing must preserve the
        // exact bit pattern, NaN payload bits included.
        let frame = msg.to_frame();
        let decoded = ToServer::from_frame(&frame).expect("binary decode");
        let ToServer::Upload(upload) = &decoded else {
            panic!("binary decoded to {decoded:?}");
        };
        assert_eq!(upload.estimates[0].credit.to_bits(), credit.to_bits());
        assert_eq!(upload.estimates[0].position.x.to_bits(), credit.to_bits());
        assert_eq!(frame, decoded.to_frame());
    }
}

#[test]
fn simple_tags_roundtrip() {
    assert_to_vehicle_roundtrips(&ToVehicle::RequestUpload);
    assert_to_vehicle_roundtrips(&ToVehicle::Done);
    assert_to_vehicle_roundtrips(&ToVehicle::Abort(String::new()));
    assert_to_server_roundtrips(&ToServer::Failed("panic: index out of bounds".to_string()));
}

#[test]
fn malformed_wire_input_is_rejected() {
    let cases = [
        "",                       // no tag
        "Z",                      // unknown tag
        "U 1",                    // truncated upload
        "U 1 2 0000000000000000", // truncated estimate list
        "A 1 3 0 2",              // label out of i8 grammar is fine, but...
        "T 1 5",                  // truncated task
        "F plain",                // string without the s: prefix
        "F s:ab%2",               // truncated escape
        "F s:ab%zz",              // non-hex escape
        "D extra",                // trailing garbage
        "U 0 0 ffff",             // trailing garbage after valid prefix
    ];
    for case in cases {
        let to_server = ToServer::from_wire(case);
        let to_vehicle = ToVehicle::from_wire(case);
        assert!(
            matches!(to_server, Err(MiddlewareError::Codec(_)))
                || matches!(to_vehicle, Err(MiddlewareError::Codec(_))),
            "{case:?} decoded as {to_server:?} / {to_vehicle:?}"
        );
    }
    assert!(matches!(
        SegmentMap::from_wire("S 0000000000000000"),
        Err(MiddlewareError::Codec(_))
    ));
    // A well-formed map with inverted corners must fail cleanly, not
    // panic inside the constructor.
    let mut bad = String::from("S");
    for v in [10.0f64, 10.0, 0.0, 0.0, 5.0] {
        bad.push(' ');
        bad.push_str(&format!("{:016x}", v.to_bits()));
    }
    assert!(matches!(
        SegmentMap::from_wire(&bad),
        Err(MiddlewareError::Codec(_))
    ));
}

/// A corrupted frame from a fleet member must quarantine that vehicle
/// — not surface a codec error and fail the round. The sender is
/// treated as dead (its work is retried elsewhere), the event is
/// counted, and the round runs to completion without it.
#[test]
fn corrupted_frames_quarantine_the_sender_instead_of_failing_the_round() {
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    );
    let fleet = [VehicleId(0), VehicleId(1), VehicleId(2)];
    let registry = Registry::new();
    let mut core = ServerCore::new(
        segments,
        &fleet,
        PlatformConfig::default(),
        registry.clone(),
    )
    .expect("valid core");
    let _ = core.start(VirtualInstant::ZERO);

    // A corpus of corrupted frames, all "from" vehicle 2: truncated
    // messages, unknown tags, mangled escapes, raw binary.
    let corpus = [
        "",
        "Z",
        "U 2",
        "U 2 1 0000000000000000",
        "A 2 xyz",
        "F plain-unprefixed",
        "F s:ab%2",
        "F s:ab%zz",
        "\u{0}\u{1}\u{2}binary\u{ff}",
        "U 0 0 trailing garbage",
    ];
    let now = VirtualInstant::from_micros(10);
    for (i, frame) in corpus.iter().enumerate() {
        let actions = core.handle_frame(now, VehicleId(2), frame);
        assert!(
            !core.is_finished(),
            "round must survive corrupted frame {i}: {frame:?}"
        );
        if i > 0 {
            // Only the first frame changes anything: the sender is
            // already quarantined, later garbage from it is inert.
            assert!(actions.is_empty(), "frame {i} was not inert: {actions:?}");
        }
    }
    // Garbage "from" a vehicle that is not in the fleet at all is
    // ignored outright.
    assert!(core
        .handle_frame(now, VehicleId(99), "not even close")
        .is_empty());
    assert_eq!(
        registry.snapshot().counters.get("platform.quarantine"),
        Some(&1),
        "one quarantine despite ten bad frames"
    );

    // The two honest vehicles carry the round to completion: upload,
    // then answer whatever mapping tasks come back assigned.
    let mut last = Vec::new();
    for v in [VehicleId(0), VehicleId(1)] {
        let upload = ToServer::Upload(SensingUpload {
            vehicle: v,
            estimates: vec![ApEstimate {
                position: Point::new(60.0 + f64::from(v.0), 30.0),
                credit: 1.0,
            }],
        });
        last = core.handle_frame(now, v, &upload.to_wire());
    }
    let assignments: Vec<(VehicleId, Vec<MappingTask>)> = last
        .iter()
        .filter_map(|a| match a {
            Action::Send {
                to,
                msg: ToVehicle::Assign(tasks),
            } => Some((*to, tasks.clone())),
            _ => None,
        })
        .collect();
    let find_completed = |actions: &[Action]| {
        actions.iter().find_map(|a| match a {
            Action::Completed(report) => Some((**report).clone()),
            _ => None,
        })
    };
    let mut report = find_completed(&last);
    for (v, tasks) in assignments {
        if report.is_some() || tasks.is_empty() {
            continue;
        }
        let answers = ToServer::Answers(
            tasks
                .iter()
                .map(|t| MappingAnswer {
                    vehicle: v,
                    task_id: t.task_id,
                    label: 1,
                })
                .collect(),
        );
        report = find_completed(&core.handle_frame(now, v, &answers.to_wire()));
    }
    let report = report.expect("round completes without the quarantined vehicle");
    assert_eq!(report.fates[&VehicleId(2)].fate, VehicleFate::Quarantined);
    // The report's metrics are sealed by the transport driver; at the
    // core level the registry holds the counter.
    assert_eq!(
        registry.snapshot().counters.get("platform.quarantine"),
        Some(&1)
    );
    assert!(report.dead_vehicles().contains(&VehicleId(2)));
}

/// The binary-framing twin of the corpus above: every class of frame
/// damage the binary codec can meet — flipped payload bits under a now
/// stale CRC, a mangled CRC itself, a wrong codec version, an oversized
/// length prefix, truncated frames and truncated varints — quarantines
/// the sender and leaves the round running.
#[test]
fn corrupted_binary_frames_quarantine_the_sender() {
    let segments = SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    );
    let fleet = [VehicleId(0), VehicleId(1), VehicleId(2)];
    let registry = Registry::new();
    let mut core = ServerCore::new(
        segments,
        &fleet,
        PlatformConfig::default(),
        registry.clone(),
    )
    .expect("valid core");
    let _ = core.start(VirtualInstant::ZERO);

    let valid = ToServer::Upload(SensingUpload {
        vehicle: VehicleId(2),
        estimates: vec![ApEstimate {
            position: Point::new(62.0, 30.0),
            credit: 1.5,
        }],
    })
    .to_frame();

    // Bit-flipped payload: the CRC no longer matches.
    let mut bad_crc = valid.clone();
    *bad_crc.last_mut().unwrap() ^= 0x40;
    // Mangled CRC field itself.
    let mut mangled_crc = valid.clone();
    mangled_crc[4] ^= 0xff;
    // Wrong codec version byte, but internally consistent CRC/length —
    // the damage is only caught by the payload header check.
    let mut bad_version = Vec::new();
    wire::frame_into(&mut bad_version, |out| {
        out.push(0x07);
        out.push(wire::TAG_UPLOAD);
    });
    // Length prefix claims more bytes than the buffer holds.
    let mut oversized = valid.clone();
    oversized[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    // A varint cut off mid-continuation, inside a CRC-clean frame.
    let mut truncated_varint = Vec::new();
    wire::frame_into(&mut truncated_varint, |out| {
        out.push(wire::WIRE_VERSION);
        out.push(wire::TAG_UPLOAD);
        out.push(0x80);
    });
    // Unknown message tag, CRC-clean.
    let mut unknown_tag = Vec::new();
    wire::frame_into(&mut unknown_tag, |out| {
        out.push(wire::WIRE_VERSION);
        out.push(0x7f);
    });
    let corpus: Vec<Vec<u8>> = vec![
        bad_crc,
        mangled_crc,
        bad_version,
        oversized,
        truncated_varint,
        unknown_tag,
        valid[..valid.len() - 1].to_vec(),   // truncated frame
        valid[..5].to_vec(),                 // shorter than the header
        Vec::new(),                          // empty
        [valid.clone(), vec![0u8]].concat(), // trailing garbage
    ];

    let now = VirtualInstant::from_micros(10);
    for (i, frame) in corpus.iter().enumerate() {
        let actions = core.handle_frame_binary(now, VehicleId(2), frame);
        assert!(
            !core.is_finished(),
            "round must survive corrupted binary frame {i}"
        );
        if i > 0 {
            assert!(actions.is_empty(), "frame {i} was not inert: {actions:?}");
        }
    }
    assert_eq!(
        registry.snapshot().counters.get("platform.quarantine"),
        Some(&1),
        "one quarantine despite ten bad frames"
    );

    // The survivors finish the round over binary frames.
    let mut last = Vec::new();
    for v in [VehicleId(0), VehicleId(1)] {
        let upload = ToServer::Upload(SensingUpload {
            vehicle: v,
            estimates: vec![ApEstimate {
                position: Point::new(60.0 + f64::from(v.0), 30.0),
                credit: 1.0,
            }],
        });
        last = core.handle_frame_binary(now, v, &upload.to_frame());
    }
    let assignments: Vec<(VehicleId, Vec<MappingTask>)> = last
        .iter()
        .filter_map(|a| match a {
            Action::Send {
                to,
                msg: ToVehicle::Assign(tasks),
            } => Some((*to, tasks.clone())),
            _ => None,
        })
        .collect();
    let find_completed = |actions: &[Action]| {
        actions.iter().find_map(|a| match a {
            Action::Completed(report) => Some((**report).clone()),
            _ => None,
        })
    };
    let mut report = find_completed(&last);
    for (v, tasks) in assignments {
        if report.is_some() || tasks.is_empty() {
            continue;
        }
        let answers = ToServer::Answers(
            tasks
                .iter()
                .map(|t| MappingAnswer {
                    vehicle: v,
                    task_id: t.task_id,
                    label: 1,
                })
                .collect(),
        );
        report = find_completed(&core.handle_frame_binary(now, v, &answers.to_frame()));
    }
    let report = report.expect("round completes without the quarantined vehicle");
    assert_eq!(report.fates[&VehicleId(2)].fate, VehicleFate::Quarantined);
    assert!(report.dead_vehicles().contains(&VehicleId(2)));
}
