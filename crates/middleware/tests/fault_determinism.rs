//! Schedule determinism of the fault-injection layer: a [`FaultPlan`]
//! is a *replayable* schedule, so the same seed applied to the same
//! message stream must make identical drop/duplicate/delay decisions
//! and produce an identical [`FaultTally`] — and the server-side crash
//! schedule must be a pure function of the event index, indifferent to
//! query order or plan cloning. The chaos harness leans on both: a
//! crash sweep is only reproducible if every fault decision is.

use crowdwifi_middleware::fault::{FaultPlan, FaultTally, LinkDirection, MessageSink, ServerFault};
use crowdwifi_middleware::messages::VehicleId;
use proptest::collection::vec;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// A sink that records every delivered message in order.
struct VecSink(Rc<RefCell<Vec<u32>>>);

impl MessageSink<u32> for VecSink {
    fn deliver(&mut self, msg: u32) -> std::result::Result<(), u32> {
        self.0.borrow_mut().push(msg);
        Ok(())
    }
}

/// Sends `stream` through one noisy link of `plan` and returns the
/// delivered sequence plus the observed tally.
fn run_link(
    plan: &FaultPlan,
    vehicle: VehicleId,
    direction: LinkDirection,
    stream: &[u32],
) -> (Vec<u32>, (u64, u64, u64)) {
    let delivered = Rc::new(RefCell::new(Vec::new()));
    let tally = Arc::new(FaultTally::new());
    let mut sender = plan.sender_tallied(
        VecSink(Rc::clone(&delivered)),
        vehicle,
        direction,
        Some(Arc::clone(&tally)),
    );
    for &msg in stream {
        let _ = sender.send(msg);
    }
    // Dropping the sender flushes messages held back for delayed
    // delivery — part of the deterministic schedule.
    drop(sender);
    let seq = delivered.borrow().clone();
    (seq, (tally.dropped(), tally.duplicated(), tally.delayed()))
}

fn build_server_schedule(entries: &[(u64, u8, u8)]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(idx, kind, n) in entries {
        let fault = match kind % 4 {
            0 => ServerFault::CrashBeforeAppend,
            1 => ServerFault::CrashAfterAppend,
            2 => ServerFault::CrashTruncateTail(usize::from(n) + 1),
            _ => ServerFault::CrashCorruptTail,
        };
        plan = plan.server_crash(idx, fault);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_and_stream_give_identical_link_decisions_and_tally(
        seed in 0u64..u64::MAX,
        drop_prob in 0.0f64..0.4,
        duplicate_prob in 0.0f64..0.3,
        delay_prob in 0.0f64..0.3,
        vehicle in 0u32..64,
        to_server in any::<bool>(),
        stream in vec(0u32..u32::MAX, 0..64),
    ) {
        let direction = if to_server {
            LinkDirection::ToServer
        } else {
            LinkDirection::ToVehicle
        };
        let plan = FaultPlan::noisy(seed, drop_prob, duplicate_prob, delay_prob);
        let first = run_link(&plan, VehicleId(vehicle), direction, &stream);
        let second = run_link(&plan, VehicleId(vehicle), direction, &stream);
        prop_assert_eq!(&first, &second, "replay of the same link diverged");
        // A clone is the same schedule, not a reseeded one.
        let cloned = run_link(&plan.clone(), VehicleId(vehicle), direction, &stream);
        prop_assert_eq!(&first, &cloned, "cloned plan diverged");
    }

    #[test]
    fn server_crash_schedule_is_pure_in_the_event_index(
        entries in vec((0u64..256, 0u8..4, 0u8..64), 0..12),
        probes in vec(0u64..512, 1..64),
    ) {
        let plan = build_server_schedule(&entries);
        let rebuilt = build_server_schedule(&entries);

        // Forward sweep, reverse sweep, repeated probes: the decision
        // for an index never depends on what was asked before it.
        let forward: Vec<_> = probes.iter().map(|&i| plan.server_fault(i)).collect();
        let reverse: Vec<_> = probes
            .iter()
            .rev()
            .map(|&i| plan.server_fault(i))
            .collect();
        let mut reverse_restored = reverse;
        reverse_restored.reverse();
        prop_assert_eq!(&forward, &reverse_restored, "query order changed decisions");

        let again: Vec<_> = probes.iter().map(|&i| plan.server_fault(i)).collect();
        prop_assert_eq!(&forward, &again, "repeated queries changed decisions");

        let other: Vec<_> = probes.iter().map(|&i| rebuilt.server_fault(i)).collect();
        prop_assert_eq!(&forward, &other, "rebuilding the plan changed decisions");

        prop_assert_eq!(
            plan.has_server_faults(),
            !entries.is_empty() || forward.iter().any(Option::is_some)
        );
    }

    #[test]
    fn torn_snapshot_schedule_is_pure_in_the_sequence_number(
        seqs in vec(0u64..64, 0..8),
        probes in vec(0u64..128, 1..32),
    ) {
        let mut plan = FaultPlan::none();
        for &s in &seqs {
            plan = plan.torn_snapshot(s);
        }
        for &p in &probes {
            let expected = seqs.contains(&p);
            prop_assert_eq!(plan.server_fault(u64::MAX), None);
            prop_assert_eq!(plan.snapshot_torn(p), expected);
            prop_assert_eq!(plan.clone().snapshot_torn(p), expected);
        }
    }
}
