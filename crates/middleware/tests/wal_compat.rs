//! Cross-codec WAL compatibility: a write-ahead log written with the
//! retired text codec (the on-disk format before the binary switch)
//! must recover byte-identically through the same `read_wal` +
//! `ServerCore::recover` path as a binary-era log of the same round.
//! The dispatch point is the header frame's first payload byte.

use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_geo::{Point, Rect};
use crowdwifi_middleware::durability::{
    encode_frame, read_wal, recover_round, LogSink, MemorySink,
};
use crowdwifi_middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi_middleware::messages::VehicleId;
use crowdwifi_middleware::protocol::PlatformConfig;
use crowdwifi_middleware::segment::SegmentMap;
use crowdwifi_middleware::transport::{SimTransport, Transport};
use crowdwifi_middleware::vehicle::{Behavior, CrowdVehicle};
use crowdwifi_middleware::wire;
use crowdwifi_obs::Registry;

fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let ap = Point::new(75.0, 25.0);
    (0..40)
        .map(|i| {
            let p = Point::new(5.0 + 7.0 * i as f64, lane_offset);
            RssReading::new(p, model.mean_rss(p.distance(ap)), i as f64)
        })
        .collect()
}

fn segments() -> SegmentMap {
    SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).unwrap(),
        150.0,
    )
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator =
                OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus()).unwrap();
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(20.0 + f64::from(v)),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 23,
        ..PlatformConfig::default()
    }
}

/// Runs one faulted durable round to get a real binary WAL, transcodes
/// it frame-for-frame into the pre-binary text format, and proves the
/// codec dispatch recovers both logs to the same server state.
#[test]
fn text_era_wal_recovers_identically_to_binary_wal() {
    // A plan with noise and a crash, so the log carries the interesting
    // event shapes: uploads, answers, failures, timers, disconnects.
    let plan = FaultPlan::noisy(41, 0.05, 0.08, 0.04).crash(VehicleId(2), FaultPoint::Answer);
    let mut wal = MemorySink::new();
    SimTransport
        .run_round_durable(segments(), fleet(4), config(), &plan, &mut wal)
        .expect("durable round");
    let binary_bytes = wal.contents().expect("wal contents");

    let binary_replay = read_wal(&binary_bytes).expect("binary replay");
    assert_eq!(binary_replay.codec, wire::WIRE_VERSION);
    assert!(
        !binary_replay.events.is_empty(),
        "round logged no events — test is vacuous"
    );

    // Transcode to the text-era on-disk format: same framing, text
    // payloads. This is byte-exactly what a pre-binary deployment wrote.
    let mut text_bytes = encode_frame(binary_replay.header.to_wire().as_bytes());
    for event in &binary_replay.events {
        text_bytes.extend_from_slice(&encode_frame(event.to_wire().as_bytes()));
    }
    assert_ne!(text_bytes, binary_bytes, "transcode did nothing");

    let text_replay = read_wal(&text_bytes).expect("text replay");
    assert_eq!(text_replay.codec, wire::TEXT_VERSION);
    assert_eq!(
        format!("{:?}", binary_replay.header),
        format!("{:?}", text_replay.header),
        "headers diverged across codecs"
    );
    assert_eq!(
        format!("{:?}", binary_replay.events),
        format!("{:?}", text_replay.events),
        "event streams diverged across codecs"
    );

    // Full recovery through ServerCore::recover from each log.
    let mut binary_sink = MemorySink::new();
    binary_sink.reset(&binary_bytes).unwrap();
    let (binary_core, binary_actions, _) =
        recover_round(&mut binary_sink, Registry::new()).expect("binary recovery");
    let mut text_sink = MemorySink::new();
    text_sink.reset(&text_bytes).unwrap();
    let (text_core, text_actions, _) =
        recover_round(&mut text_sink, Registry::new()).expect("text recovery");
    assert_eq!(
        binary_core.state_digest(),
        text_core.state_digest(),
        "recovered state diverged across codecs"
    );
    assert_eq!(
        format!("{binary_actions:?}"),
        format!("{text_actions:?}"),
        "recovery actions diverged across codecs"
    );
}

/// A torn tail on a text-era log still salvages the intact prefix —
/// the tail-drop logic is codec-independent.
#[test]
fn torn_text_wal_salvages_prefix() {
    let plan = FaultPlan::none();
    let mut wal = MemorySink::new();
    SimTransport
        .run_round_durable(segments(), fleet(3), config(), &plan, &mut wal)
        .expect("durable round");
    let replay = read_wal(&wal.contents().unwrap()).expect("binary replay");

    let mut text_bytes = encode_frame(replay.header.to_wire().as_bytes());
    for event in &replay.events {
        text_bytes.extend_from_slice(&encode_frame(event.to_wire().as_bytes()));
    }
    let torn_len = text_bytes.len() - 3;
    let torn = read_wal(&text_bytes[..torn_len]).expect("torn text replay");
    assert_eq!(torn.codec, wire::TEXT_VERSION);
    assert_eq!(torn.events.len(), replay.events.len() - 1);
    assert!(torn.dropped_tail_bytes > 0);
}
