//! Criterion bench: iterative-inference cost vs assignment-graph size
//! and degree (the crowd-server side of §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdwifi_crowd::graph::BipartiteAssignment;
use crowdwifi_crowd::inference::IterativeInference;
use crowdwifi_crowd::worker::SpammerHammerPrior;
use crowdwifi_crowd::LabelMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn setup(tasks: usize, l: usize, gamma: usize, seed: u64) -> LabelMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = BipartiteAssignment::regular(tasks, l, gamma, &mut rng).expect("feasible graph");
    let truth: Vec<i8> = (0..tasks)
        .map(|i| if i % 2 == 0 { 1 } else { -1 })
        .collect();
    let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
    LabelMatrix::generate(&graph, &truth, &pool, &mut rng)
}

fn inference_vs_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("kos_inference_vs_tasks");
    for tasks in [250usize, 1000, 4000] {
        let labels = setup(tasks, 5, 5, 11);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            let decoder = IterativeInference {
                random_init: false,
                ..IterativeInference::default()
            };
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| black_box(decoder.run(&labels, &mut rng)));
        });
    }
    group.finish();
}

fn inference_vs_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kos_inference_vs_degree");
    for l in [5usize, 15, 25] {
        let labels = setup(1000, l, 5, 13);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            let decoder = IterativeInference {
                random_init: false,
                ..IterativeInference::default()
            };
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| black_box(decoder.run(&labels, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = inference_vs_tasks, inference_vs_degree
);
criterion_main!(benches);
