//! Criterion bench: online-CS round latency vs sliding-window size.
//!
//! §4.3.2's claim: the sliding window keeps per-round cost low enough
//! for online use in a moving vehicle. One round here is grid formation,
//! hypothesis search, recovery and BIC selection over a window of
//! drive-by readings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn round_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_cs_round_vs_window");
    let scenario = Scenario::uci_campus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 181.0, &mut rng);

    for window in [20usize, 40, 60] {
        let config = OnlineCsConfig {
            window: WindowConfig {
                size: window,
                step: 10,
                ttl: f64::INFINITY,
            },
            max_ap_per_window: 4,
            ..OnlineCsConfig::default()
        };
        let pipeline = OnlineCs::new(config, *scenario.pathloss()).expect("valid config");
        let round = &readings[..window.min(readings.len())];
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| black_box(pipeline.process_round(round).unwrap()));
        });
    }
    group.finish();
}

fn full_drive(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_cs_full_drive");
    group.sample_size(10);
    let scenario = Scenario::uci_campus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 181.0, &mut rng);
    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        max_ap_per_window: 4,
        ..OnlineCsConfig::default()
    };
    let pipeline = OnlineCs::new(config, *scenario.pathloss()).expect("valid config");
    group.bench_function("uci_180_readings", |b| {
        b.iter(|| black_box(pipeline.run(&readings).unwrap()));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = round_latency, full_drive
);
criterion_main!(benches);
