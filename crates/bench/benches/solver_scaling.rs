//! Criterion bench: ℓ1 solver scaling with the grid size N.
//!
//! §4.3 motivates the online strategy by the cost of ℓ1-minimization at
//! large N; this bench quantifies that cost for the three solver
//! families and for the Proposition-1 orthogonalized pipeline recovery
//! (with and without orthogonalization — the paper's efficiency claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdwifi_channel::PathLossModel;
use crowdwifi_core::recovery::CsRecovery;
use crowdwifi_geo::{Grid, Point, Rect};
use crowdwifi_linalg::Matrix;
use crowdwifi_sparsesolve::admm::AdmmLasso;
use crowdwifi_sparsesolve::omp::Omp;
use crowdwifi_sparsesolve::{Fista, SparseRecovery};
use std::hint::black_box;

/// Deterministic ±1/√M Bernoulli sensing matrix.
fn bernoulli(m: usize, n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let scale = 1.0 / (m as f64).sqrt();
    Matrix::from_fn(m, n, |_, _| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
            scale
        } else {
            -scale
        }
    })
}

fn sparse_problem(m: usize, n: usize) -> (Matrix, Vec<f64>) {
    let a = bernoulli(m, n, 7);
    let mut theta = vec![0.0; n];
    theta[n / 7] = 1.0;
    theta[n / 2] = 1.0;
    theta[(6 * n) / 7] = 1.0;
    let y = a.matvec(&theta);
    (a, y)
}

fn solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_solvers_vs_N");
    for n in [100usize, 400, 900] {
        let m = 60;
        let (a, y) = sparse_problem(m, n);
        group.bench_with_input(BenchmarkId::new("fista", n), &n, |b, _| {
            let solver = Fista::default();
            b.iter(|| black_box(solver.recover(&a, &y).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("admm-lasso", n), &n, |b, _| {
            let solver = AdmmLasso::default();
            b.iter(|| black_box(solver.recover(&a, &y).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("omp", n), &n, |b, _| {
            let solver = Omp::new(3);
            b.iter(|| black_box(solver.recover(&a, &y).unwrap()));
        });
    }
    group.finish();
}

fn orthogonalization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop1_orthogonalization");
    let model = PathLossModel::uci_campus();
    let grid = Grid::new(
        Rect::new(Point::new(0.0, 0.0), Point::new(240.0, 240.0)).expect("static rect"),
        8.0,
    )
    .expect("static grid");
    let ap = grid.point(grid.nearest_index(Point::new(120.0, 120.0)));
    let positions: Vec<Point> = (0..30)
        .map(|i| {
            Point::new(
                40.0 + 5.0 * i as f64,
                if (i / 5) % 2 == 0 { 60.0 } else { 75.0 },
            )
        })
        .collect();
    let rss: Vec<f64> = positions
        .iter()
        .map(|p| model.mean_rss(p.distance(ap)))
        .collect();

    group.bench_function("with_orthogonalization", |b| {
        let rec = CsRecovery::new(model, 100.0, -95.0);
        b.iter(|| black_box(rec.recover_single_ap(&grid, &positions, &rss).unwrap()));
    });
    group.bench_function("without_orthogonalization", |b| {
        let rec = CsRecovery::new(model, 100.0, -95.0).without_orthogonalization();
        b.iter(|| black_box(rec.recover_single_ap(&grid, &positions, &rss).unwrap()));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = solver_scaling, orthogonalization_ablation
);
criterion_main!(benches);
