//! Platform round throughput on the virtual-clock simulator backend.
//!
//! The sans-I/O split pays off twice: the protocol outcome becomes a
//! pure function of (fleet, config, fault plan), and a round that takes
//! wall-clock seconds on the threaded backend (stall timeouts, retry
//! backoffs are real sleeps there) replays on [`SimTransport`] as fast
//! as the estimator maths allows. This bench quantifies both:
//!
//! 1. **Sim throughput** — rounds/sec for a clean five-vehicle round
//!    and for a degraded round (crash + stall + 10% message drop) on
//!    the simulator.
//! 2. **Sim speedup** — wall time of the same degraded round on the
//!    threaded backend vs the simulator. Deadlines that sleep vs
//!    deadlines that jump a virtual clock.
//! 3. **Determinism contract** — two same-seed sim rounds must produce
//!    byte-identical deterministic projections (asserted, not
//!    reported).
//!
//! Writes `BENCH_platform.json` at the repo root (or `$BENCH_OUT_DIR`).
//! `BENCH_SMOKE=1` cuts repetitions for CI.
//! Run with `cargo run -p crowdwifi-bench --release --bin platform_rounds`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_geo::{Point, Rect};
use crowdwifi_middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi_middleware::messages::VehicleId;
use crowdwifi_middleware::platform::{FaultTolerance, PlatformConfig};
use crowdwifi_middleware::segment::SegmentMap;
use crowdwifi_middleware::transport::{SimTransport, ThreadTransport, Transport};
use crowdwifi_middleware::vehicle::{Behavior, CrowdVehicle};
use std::time::{Duration, Instant};

/// Fading-free staggered drive past two roadside APs.
fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn segments() -> SegmentMap {
    SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).expect("ordered rect"),
        150.0,
    )
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator = OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus())
                .expect("valid estimator config");
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(v as f64 * 0.5),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 7,
        tolerance: FaultTolerance {
            // Snappy deadlines keep the threaded comparison round short;
            // the simulator never sleeps either way.
            deadline: Duration::from_millis(800),
            retry_backoff: Duration::from_millis(100),
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

/// A degraded round: one crash, one straggler, 10% message drop.
fn degraded_plan() -> FaultPlan {
    FaultPlan::noisy(7, 0.10, 0.0, 0.0)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(2), FaultPoint::Answer)
}

/// Mean seconds per round of `run` over `reps` calls.
fn time_rounds<F: FnMut()>(mut run: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        run();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let smoke = smoke_mode();
    let reps = if smoke { 2 } else { 8 };
    println!(
        "platform rounds: 5 vehicles, {} reps{} ...",
        reps,
        if smoke { " (smoke)" } else { "" }
    );

    // Determinism contract: same seed + plan → byte-identical
    // deterministic projection. Cheap, and the bench is meaningless
    // without it.
    let once = SimTransport
        .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
        .expect("sim degraded round");
    let twice = SimTransport
        .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
        .expect("sim degraded round repeat");
    assert_eq!(
        format!("{:?}", once.deterministic()),
        format!("{:?}", twice.deterministic()),
        "simulator rounds are not deterministic"
    );

    // Warm up once per shape, then measure.
    let clean = |transport: &dyn Transport| {
        transport
            .run_round(segments(), fleet(5), config())
            .expect("clean round");
    };
    let degraded = |transport: &dyn Transport| {
        transport
            .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
            .expect("degraded round");
    };

    clean(&SimTransport);
    let sim_clean_secs = time_rounds(|| clean(&SimTransport), reps);
    let sim_degraded_secs = time_rounds(|| degraded(&SimTransport), reps);
    let sim_rounds_per_sec = 1.0 / sim_clean_secs;
    println!(
        "  sim: clean {:.1} ms/round ({sim_rounds_per_sec:.1} rounds/sec), degraded {:.1} ms/round",
        sim_clean_secs * 1e3,
        sim_degraded_secs * 1e3
    );

    // One threaded degraded round for the speedup ratio: its stall
    // timeout and retry backoffs are real sleeps, so one rep reads
    // fine — the sleeps dominate scheduling noise.
    degraded(&ThreadTransport);
    let thread_reps = if smoke { 1 } else { 2 };
    let thread_degraded_secs = time_rounds(|| degraded(&ThreadTransport), thread_reps);
    let sim_speedup = thread_degraded_secs / sim_degraded_secs;
    println!(
        "  threaded: degraded {:.1} ms/round → sim speedup {sim_speedup:.1}x",
        thread_degraded_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"platform_rounds\",\n  \"schema_version\": 3,\n  \"machine\": {{\"physical_parallelism\": {}, \"smoke\": {smoke}}},\n  \"sim\": {{\"reps\": {reps}, \"clean_ms\": {:.3}, \"degraded_ms\": {:.3}, \"sim_rounds_per_sec\": {sim_rounds_per_sec:.3}}},\n  \"threaded\": {{\"reps\": {thread_reps}, \"degraded_ms\": {:.3}}},\n  \"sim_speedup\": {sim_speedup:.3},\n  \"notes\": \"clean round = 5 honest vehicles over a 2-AP drive; degraded adds one crash, one stall and 10% message drop. sim_speedup compares the degraded round's wall time on the threaded backend (timeouts and backoffs are real sleeps) against the virtual-clock simulator, at an 800 ms phase deadline — longer production deadlines widen the ratio. Determinism (same seed, byte-identical deterministic projection) is asserted before measuring.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sim_clean_secs * 1e3,
        sim_degraded_secs * 1e3,
        thread_degraded_secs * 1e3,
    );
    let out_path = bench_out_path("BENCH_platform.json");
    std::fs::write(&out_path, &json).expect("write BENCH_platform.json");
    println!("wrote {}", out_path.display());
}
