//! Platform round throughput on the virtual-clock simulator backend.
//!
//! The sans-I/O split pays off twice: the protocol outcome becomes a
//! pure function of (fleet, config, fault plan), and a round that takes
//! wall-clock seconds on the threaded backend (stall timeouts, retry
//! backoffs are real sleeps there) replays on [`SimTransport`] as fast
//! as the estimator maths allows. This bench quantifies both:
//!
//! 1. **Sim throughput** — rounds/sec for a clean five-vehicle round
//!    and for a degraded round (crash + stall + 10% message drop) on
//!    the simulator.
//! 2. **Sim speedup** — wall time of the same degraded round on the
//!    threaded backend vs the simulator. Deadlines that sleep vs
//!    deadlines that jump a virtual clock.
//! 3. **Determinism contract** — two same-seed sim rounds must produce
//!    byte-identical deterministic projections (asserted, not
//!    reported).
//! 4. **Durability cost** — WAL overhead of a clean durable round over
//!    the plain round (budget: 5% of round wall), and recovery replay
//!    throughput over a synthetic mid-round WAL (floor: 50k
//!    events/sec).
//!
//! Writes `BENCH_platform.json` at the repo root (or `$BENCH_OUT_DIR`).
//! `BENCH_SMOKE=1` cuts repetitions for CI.
//! Run with `cargo run -p crowdwifi-bench --release --bin platform_rounds`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::{Point, Rect};
use crowdwifi_middleware::durability::{read_wal, MemorySink, WalHeader, WalWriter};
use crowdwifi_middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi_middleware::messages::{SensingUpload, ToServer, VehicleId};
use crowdwifi_middleware::platform::{FaultTolerance, PlatformConfig};
use crowdwifi_middleware::protocol::{Event, ServerCore, VirtualInstant};
use crowdwifi_middleware::segment::SegmentMap;
use crowdwifi_middleware::transport::{SimTransport, ThreadTransport, Transport};
use crowdwifi_middleware::vehicle::{Behavior, CrowdVehicle};
use crowdwifi_obs::Registry;
use std::time::{Duration, Instant};

/// Fading-free staggered drive past two roadside APs.
fn drive(lane_offset: f64) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps = [Point::new(60.0, 30.0), Point::new(220.0, 30.0)];
    (0..50)
        .map(|i| {
            let p = Point::new(
                6.0 * i as f64,
                lane_offset + if (i / 5) % 2 == 0 { 0.0 } else { 12.0 },
            );
            let nearest = aps
                .iter()
                .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                .unwrap();
            RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
        })
        .collect()
}

fn segments() -> SegmentMap {
    SegmentMap::new(
        Rect::new(Point::new(0.0, -20.0), Point::new(300.0, 80.0)).expect("ordered rect"),
        150.0,
    )
}

fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let estimator = OnlineCs::new(OnlineCsConfig::default(), PathLossModel::uci_campus())
                .expect("valid estimator config");
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                drive(v as f64 * 0.5),
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 7,
        tolerance: FaultTolerance {
            // Snappy deadlines keep the threaded comparison round short;
            // the simulator never sleeps either way.
            deadline: Duration::from_millis(800),
            retry_backoff: Duration::from_millis(100),
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

/// A degraded round: one crash, one straggler, 10% message drop.
fn degraded_plan() -> FaultPlan {
    FaultPlan::noisy(7, 0.10, 0.0, 0.0)
        .crash(VehicleId(1), FaultPoint::Upload)
        .stall(VehicleId(2), FaultPoint::Answer)
}

/// Mean seconds per round of `run` over `reps` calls.
fn time_rounds<F: FnMut()>(mut run: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        run();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// A synthetic mid-round WAL: a large fleet caught one upload short of
/// quorum, so replay exercises the per-event bookkeeping cost without
/// the end-of-round inference (which a real crash would defer anyway —
/// recovery's job is to reach the pre-crash state fast, not to finish
/// the round).
fn replay_wal(vehicles: u32) -> Vec<u8> {
    let fleet: Vec<VehicleId> = (0..vehicles).map(VehicleId).collect();
    let header = WalHeader {
        segments: segments(),
        fleet: fleet.clone(),
        config: config(),
    };
    let mut sink = MemorySink::new();
    let mut writer = WalWriter::create(&mut sink, &header, u64::MAX).expect("in-memory WAL create");
    for &v in fleet.iter().take(fleet.len() - 1) {
        let event = Event::Message {
            now: VirtualInstant::from_micros(u64::from(v.0) * 1_000),
            from: v,
            msg: ToServer::Upload(SensingUpload {
                vehicle: v,
                estimates: vec![
                    ApEstimate {
                        position: Point::new(60.0 + f64::from(v.0), 30.0),
                        credit: 1.0,
                    },
                    ApEstimate {
                        position: Point::new(220.0 - f64::from(v.0), 30.0),
                        credit: 0.5,
                    },
                ],
            }),
        };
        writer.append_event(&event).expect("in-memory WAL append");
    }
    writer.contents().expect("in-memory WAL contents")
}

fn main() {
    let smoke = smoke_mode();
    let reps = if smoke { 2 } else { 8 };
    println!(
        "platform rounds: 5 vehicles, {} reps{} ...",
        reps,
        if smoke { " (smoke)" } else { "" }
    );

    // Determinism contract: same seed + plan → byte-identical
    // deterministic projection. Cheap, and the bench is meaningless
    // without it.
    let once = SimTransport
        .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
        .expect("sim degraded round");
    let twice = SimTransport
        .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
        .expect("sim degraded round repeat");
    assert_eq!(
        format!("{:?}", once.deterministic()),
        format!("{:?}", twice.deterministic()),
        "simulator rounds are not deterministic"
    );

    // Warm up once per shape, then measure.
    let clean = |transport: &dyn Transport| {
        transport
            .run_round(segments(), fleet(5), config())
            .expect("clean round");
    };
    let degraded = |transport: &dyn Transport| {
        transport
            .run_round_with_faults(segments(), fleet(5), config(), &degraded_plan())
            .expect("degraded round");
    };

    clean(&SimTransport);
    let sim_clean_secs = time_rounds(|| clean(&SimTransport), reps);
    let sim_degraded_secs = time_rounds(|| degraded(&SimTransport), reps);
    let sim_rounds_per_sec = 1.0 / sim_clean_secs;
    println!(
        "  sim: clean {:.1} ms/round ({sim_rounds_per_sec:.1} rounds/sec), degraded {:.1} ms/round",
        sim_clean_secs * 1e3,
        sim_degraded_secs * 1e3
    );

    // One threaded degraded round for the speedup ratio: its stall
    // timeout and retry backoffs are real sleeps, so one rep reads
    // fine — the sleeps dominate scheduling noise.
    degraded(&ThreadTransport);
    let thread_reps = if smoke { 1 } else { 2 };
    let thread_degraded_secs = time_rounds(|| degraded(&ThreadTransport), thread_reps);
    let sim_speedup = thread_degraded_secs / sim_degraded_secs;
    println!(
        "  threaded: degraded {:.1} ms/round → sim speedup {sim_speedup:.1}x",
        thread_degraded_secs * 1e3
    );

    // WAL overhead: the same clean round with every server event
    // appended to an in-memory log (count-batched syncs, the sim's
    // deterministic sink). Both legs do identical deterministic work,
    // so the honest comparison is best-vs-best over interleaved runs —
    // background noise on a shared core only ever *adds* time, and
    // interleaving keeps a slow patch from landing on one leg only.
    // The budget is 5% of round wall.
    let durable = |transport: &dyn Transport| {
        let mut wal = MemorySink::new();
        transport
            .run_round_durable(segments(), fleet(5), config(), &FaultPlan::none(), &mut wal)
            .expect("durable clean round");
    };
    durable(&SimTransport);
    // Enough interleaved pairs for the minima to converge even in
    // smoke mode — the 5% gate leaves only a few percent of headroom
    // over measurement noise.
    let wal_reps = reps.max(4) * 2;
    let mut plain_secs = f64::INFINITY;
    let mut durable_secs = f64::INFINITY;
    for _ in 0..wal_reps {
        plain_secs = plain_secs.min(time_rounds(|| clean(&SimTransport), 1));
        durable_secs = durable_secs.min(time_rounds(|| durable(&SimTransport), 1));
    }
    let wal_overhead_pct = (durable_secs / plain_secs - 1.0) * 100.0;
    println!(
        "  durability: plain {:.1} ms, durable {:.1} ms → WAL overhead {wal_overhead_pct:.2}%",
        plain_secs * 1e3,
        durable_secs * 1e3
    );

    // Recovery replay throughput: decode a mid-round WAL and rebuild
    // the server by replaying it. The log holds one upload short of
    // quorum from a 64-vehicle fleet, so the rate reflects per-event
    // replay cost — what recovery latency actually scales with.
    let wal_bytes = replay_wal(64);
    let replay_reps = if smoke { 40 } else { 200 };
    let mut replayed_events = 0u64;
    let replay_secs = time_rounds(
        || {
            let replay = read_wal(&wal_bytes).expect("intact synthetic WAL");
            let (_, _) = ServerCore::recover(
                replay.header.segments.clone(),
                &replay.header.fleet,
                replay.header.config,
                Registry::new(),
                &replay.events,
            )
            .expect("synthetic WAL recovery");
            replayed_events = replay.events.len() as u64;
        },
        replay_reps,
    );
    let recovery_replay_events_per_sec = replayed_events as f64 / replay_secs;
    println!(
        "  durability: recovery replays {replayed_events} events in {:.2} ms → {recovery_replay_events_per_sec:.0} events/sec",
        replay_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"platform_rounds\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {}, \"smoke\": {smoke}}},\n  \"sim\": {{\"reps\": {reps}, \"clean_ms\": {:.3}, \"degraded_ms\": {:.3}, \"sim_rounds_per_sec\": {sim_rounds_per_sec:.3}}},\n  \"threaded\": {{\"reps\": {thread_reps}, \"degraded_ms\": {:.3}}},\n  \"sim_speedup\": {sim_speedup:.3},\n  \"durability\": {{\n    \"wal_reps\": {wal_reps},\n    \"plain_ms\": {:.3},\n    \"durable_ms\": {:.3},\n    \"wal_overhead_pct\": {wal_overhead_pct:.3},\n    \"wal_overhead_budget_pct\": 5.0,\n    \"replay_reps\": {replay_reps},\n    \"replay_events\": {replayed_events},\n    \"replay_ms\": {:.4},\n    \"recovery_replay_events_per_sec\": {recovery_replay_events_per_sec:.0},\n    \"recovery_replay_floor_per_sec\": 50000\n  }},\n  \"notes\": \"clean round = 5 honest vehicles over a 2-AP drive; degraded adds one crash, one stall and 10% message drop. sim_speedup compares the degraded round's wall time on the threaded backend (timeouts and backoffs are real sleeps) against the virtual-clock simulator, at an 800 ms phase deadline — longer production deadlines widen the ratio. Determinism (same seed, byte-identical deterministic projection) is asserted before measuring. durability.wal_overhead_pct compares best-of-interleaved-runs wall times (plain_ms, durable_ms) of the plain clean round against the same round with a write-ahead log on the in-memory sink (count-batched syncs); the appends cost microseconds against a round dominated by estimator maths, so the percentage hovers around zero (residual noise, possibly negative) and CI gates it at 5%. recovery_replay_events_per_sec decodes a synthetic 64-vehicle mid-round WAL and rebuilds the server by replay; the floor is 50k events/sec.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sim_clean_secs * 1e3,
        sim_degraded_secs * 1e3,
        thread_degraded_secs * 1e3,
        plain_secs * 1e3,
        durable_secs * 1e3,
        replay_secs * 1e3,
    );
    let out_path = bench_out_path("BENCH_platform.json");
    std::fs::write(&out_path, &json).expect("write BENCH_platform.json");
    println!("wrote {}", out_path.display());
}
