//! Fig. 9 — the UCI testbed experiment (simulated substitute).
//!
//! Paper setup (§6.2): six Open-Mesh OM1P nodes over a 100 × 100 m
//! campus area, 30 m transmission radius, 10 m lattice; one vehicle
//! collects RSS at 20, 35 and 45 mph; lookup snapshots at 20 and 40
//! collected samples; the offline crowdsourcing aggregates the three
//! speeds' results with reliability weighting. Paper result: error
//! shrinks from 3.6016 m (20 points, 45 mph) to 2.2509 m after
//! crowdsourced fusion, finding all six nodes; Skyhook on the same area
//! errs 11.6028 m.

use crowdwifi_baselines::skyhook::Skyhook;
use crowdwifi_baselines::ApLocalizer;
use crowdwifi_bench::{fmt_opt, lookup_errors, print_table, Row};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_crowd::fusion::{fuse_submissions, Submission};
use crowdwifi_geo::Point;
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const LATTICE: f64 = 10.0;

fn pipeline_for(scenario: &Scenario) -> OnlineCs {
    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 20,
            step: 5,
            ttl: f64::INFINITY,
        },
        lattice: LATTICE,
        radio_range: 35.0,
        max_ap_per_window: 3,
        merge_radius: 15.0,
        ..OnlineCsConfig::default()
    };
    OnlineCs::new(config, *scenario.pathloss()).expect("valid pipeline config")
}

fn main() {
    let scenario = Scenario::testbed();
    let truth = scenario.ap_positions();
    println!(
        "testbed: {} Open-Mesh nodes over 100x100 m, 30 m radius, lattice {LATTICE} m",
        truth.len()
    );

    let mut rows = Vec::new();
    let mut submissions = Vec::new();
    for (i, speed) in [20.0, 35.0, 45.0].iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + i as u64);
        let route = mobility::testbed_passes(scenario.area(), 4, *speed);
        let collector = RssCollector::new(&scenario);
        // Sample so that a full pass yields ~60 readings.
        let readings = collector.collect_along(&route, route.duration() / 60.0, &mut rng);
        let pipeline = pipeline_for(&scenario);

        for n in [20usize, 40] {
            let n = n.min(readings.len());
            let est: Vec<Point> = pipeline
                .run(&readings[..n])
                .expect("pipeline run")
                .iter()
                .map(|e| e.position)
                .collect();
            let e = lookup_errors(&truth, &est, LATTICE);
            rows.push(Row {
                cells: vec![
                    format!("{speed:.0}"),
                    n.to_string(),
                    e.estimated_k.to_string(),
                    fmt_opt(e.mean_distance_m, 2),
                ],
            });
        }
        // Full-drive estimate (ensemble recipe) becomes this vehicle's
        // upload.
        let ens_config = OnlineCsConfig {
            lattice: LATTICE,
            radio_range: 35.0,
            merge_radius: 12.0,
            ..OnlineCsConfig::default()
        };
        let full: Vec<Point> =
            crowdwifi_core::pipeline::ensemble_run(&readings, ens_config, *scenario.pathloss(), 6)
                .expect("ensemble run")
                .iter()
                .map(|e| e.position)
                .collect();
        // Reliability proxy: faster drives see fewer beacons per AP, so
        // the server's inference (exercised end-to-end in fig7 and the
        // middleware tests) typically ranks them slightly lower.
        let reliability = match *speed as u32 {
            20 => 0.95,
            35 => 0.85,
            _ => 0.75,
        };
        submissions.push(Submission::new(full, reliability));
    }
    print_table(
        "Fig. 9(b,c): single-vehicle lookup vs speed and sample count",
        &["speed_mph", "points", "k_est", "avg_err_m"],
        &rows,
    );

    // Crowdsourced fusion of the three drives (Fig. 9(d)).
    let fused = fuse_submissions(&submissions, 12.0, 0.3, 0.8);
    let fused_points: Vec<Point> = fused.iter().map(|f| f.position).collect();
    let e = lookup_errors(&truth, &fused_points, LATTICE);
    println!(
        "\nFig. 9(d) crowdsourced fusion: k_est = {} (k = 6), avg error = {} m",
        e.estimated_k,
        fmt_opt(e.mean_distance_m, 3)
    );

    // Skyhook comparison on the 20 mph drive (most favorable to it).
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let route = mobility::testbed_passes(scenario.area(), 4, 20.0);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 60.0, &mut rng);
    let sky = Skyhook::default().localize(&readings).positions;
    let es = lookup_errors(&truth, &sky, LATTICE);
    println!(
        "Skyhook on the same area: k_est = {}, avg error = {} m",
        es.estimated_k,
        fmt_opt(es.mean_distance_m, 3)
    );
    println!("\npaper: 3.6016 m (20 pts, 45 mph) -> 2.2509 m crowdsourced; Skyhook 11.6028 m");
}
