//! Fig. 5 — AP lookup along the UCI campus trajectory.
//!
//! Paper setup (§6.1, first simulation set): 300 × 180 m UCI map, 8 APs
//! physically on grid points, 8 m lattice, SNR 30 dB, sliding window 60
//! / step 10, estimates taken when the collector has gathered 60, 120
//! and 180 RSS values. Paper result: spurious estimates get filtered as
//! data accumulates; at 120 points the count is exact; at 180 points
//! all 8 APs match with average estimation error 1.8316 m (down from
//! 2.6157 m at 60 points).

use crowdwifi_bench::{fmt_opt, lookup_errors, print_table, Row};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::{Grid, Point};
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).expect("static grid");
    // First simulation set: APs exactly on grid points.
    let scenario = scenario.snapped_to_grid(&grid);
    let truth = scenario.ap_positions();

    let route = mobility::uci_loop_route_with(2, 25.0);
    let interval = route.duration() / 181.0;
    let readings = RssCollector::new(&scenario).collect_along(&route, interval, &mut rng);
    println!(
        "UCI campus drive: {} readings over {:.0} s (sampling every {:.2} s)",
        readings.len(),
        route.duration(),
        interval
    );

    // Window 40/step 10 (the paper's 60/10 at its own sampling rate
    // spans a comparable road distance at ours; see EXPERIMENTS.md).
    let config = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        max_ap_per_window: 4,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    };
    let pipeline = OnlineCs::new(config, *scenario.pathloss()).expect("valid config");

    let mut rows = Vec::new();
    for n in [60usize, 120, 180] {
        let n = n.min(readings.len());
        let estimates = pipeline.run(&readings[..n]).expect("pipeline run");
        let est: Vec<Point> = estimates.iter().map(|e| e.position).collect();
        let e = lookup_errors(&truth, &est, 8.0);
        rows.push(Row {
            cells: vec![
                n.to_string(),
                format!("{}", e.estimated_k),
                "8".to_string(),
                format!("{:.2}", e.counting),
                fmt_opt(e.mean_distance_m, 2),
            ],
        });
    }
    print_table(
        "Fig. 5: UCI lookup vs number of collected RSS readings",
        &["points", "k_est", "k_true", "count_err", "avg_err_m"],
        &rows,
    );
    println!(
        "\npaper: avg error 2.6157 m at 60 points -> 1.8316 m at 180 points, exact count at >=120"
    );
}
