//! Fig. 7 — crowdsourcing performance on (ℓ,γ)-regular bipartite
//! assignment under the spammer–hammer model.
//!
//! Paper setup (§6.1, second simulation set): 1000 tasks, reliabilities
//! drawn from the spammer–hammer prior (q ∈ {0.5, 1.0} equally likely),
//! comparison of CrowdWiFi's iterative inference against majority
//! voting, Skyhook's rank-correlation weighting, and the oracle bound
//! with known q; 100 random trials, 100 iterations / 1e-5 tolerance.
//! Paper result: error decays exponentially in ℓ and γ; CrowdWiFi is
//! below MV and Skyhook and scales like the oracle.

use crowdwifi_bench::{log10_error, print_table, Row};
use crowdwifi_crowd::aggregate::{majority_vote, oracle_vote, skyhook_rank_vote};
use crowdwifi_crowd::em::EmAggregator;
use crowdwifi_crowd::graph::BipartiteAssignment;
use crowdwifi_crowd::inference::IterativeInference;
use crowdwifi_crowd::worker::SpammerHammerPrior;
use crowdwifi_crowd::{bit_error_rate, LabelMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const TASKS: usize = 1000;
const TRIALS: u64 = 100;
const LOG_FLOOR: f64 = 1e-4;

/// Average error rates of the four aggregators over the random trials.
fn run_point(l: usize, gamma: usize) -> [f64; 5] {
    let mut sums = [0.0; 5];
    let prior = SpammerHammerPrior::default();
    let decoder = IterativeInference::default();
    for trial in 0..TRIALS {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + trial);
        // Task count must make n·ℓ divisible by γ.
        let tasks = TASKS - (TASKS * l) % gamma;
        let graph = BipartiteAssignment::regular(tasks, l, gamma, &mut rng)
            .expect("feasible graph parameters");
        let truth: Vec<i8> = (0..tasks)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.5 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        let pool = prior.draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);

        let kos = decoder.run(&labels, &mut rng);
        sums[0] += bit_error_rate(&kos.estimates, &truth);
        sums[1] += bit_error_rate(&skyhook_rank_vote(&labels), &truth);
        sums[2] += bit_error_rate(&majority_vote(&labels), &truth);
        sums[3] += bit_error_rate(&oracle_vote(&labels, &pool), &truth);
        sums[4] += bit_error_rate(&EmAggregator::default().run(&labels).estimates, &truth);
    }
    sums.map(|s| s / TRIALS as f64)
}

fn table(title: &str, points: &[(usize, usize)], x_name: &str, xs: &[usize]) {
    let mut rows = Vec::new();
    for (&x, &(l, gamma)) in xs.iter().zip(points) {
        let [kos, sky, mv, oracle, em] = run_point(l, gamma);
        rows.push(Row {
            cells: vec![
                x.to_string(),
                format!("{:.3}", log10_error(kos, LOG_FLOOR)),
                format!("{:.3}", log10_error(sky, LOG_FLOOR)),
                format!("{:.3}", log10_error(mv, LOG_FLOOR)),
                format!("{:.3}", log10_error(em, LOG_FLOOR)),
                format!("{:.3}", log10_error(oracle, LOG_FLOOR)),
            ],
        });
    }
    print_table(
        title,
        &[
            x_name,
            "log10(CrowdWiFi)",
            "log10(Skyhook)",
            "log10(MV)",
            "log10(EM)",
            "log10(Oracle)",
        ],
        &rows,
    );
}

fn main() {
    println!("spammer-hammer prior q in {{0.5, 1.0}}, {TASKS} tasks, {TRIALS} trials per point");

    // (a): ℓ = 5..25 with γ = 5.
    let xs_a: Vec<usize> = (1..=5).map(|i| 5 * i).collect();
    let pts_a: Vec<(usize, usize)> = xs_a.iter().map(|&l| (l, 5)).collect();
    table(
        "Fig. 7(a): bit-error vs workers per task (gamma = 5)",
        &pts_a,
        "l",
        &xs_a,
    );

    // (b): γ = 2..10 with ℓ = 15.
    let xs_b: Vec<usize> = (1..=5).map(|i| 2 * i).collect();
    let pts_b: Vec<(usize, usize)> = xs_b.iter().map(|&g| (15, g)).collect();
    table(
        "Fig. 7(b): bit-error vs tasks per worker (l = 15)",
        &pts_b,
        "gamma",
        &xs_b,
    );

    println!("\npaper: errors decay ~exponentially in l and gamma; CrowdWiFi < Skyhook < MV, CrowdWiFi tracks the Oracle");
}
