//! Fig. 8 — CrowdWiFi vs LGMM, MDS and Skyhook on counting and
//! localization error.
//!
//! Paper setup (§6.1, third simulation set): 250 × 250 m area, 8 m
//! lattice (N ≈ 900 grid points), SNR 30 dB, measurements taken at `M`
//! *arbitrary reference points over the grid* (§4.2.2) — scattered
//! positions, not a continuous drive.
//!
//! * (a, b): error vs sparsity level k = 10..40 at M = 160 measurements.
//! * (c, d): error vs measurement count M = 20..160 at k = 10.
//!
//! Paper result: CrowdWiFi is near zero for k ≤ 30 and for M ≥ 40;
//! baselines are far worse (≥ 21 % counting, > 200 % localization at
//! k = 30), with Skyhook the best baseline.
//!
//! CrowdWiFi here runs the full §4+§5 stack on one vehicle's readings:
//! candidate generation from both a whole-batch CS round and windowed
//! rounds, global BIC selection, and position polish.

use crowdwifi_baselines::lgmm::Lgmm;
use crowdwifi_baselines::mds::MdsLocalizer;
use crowdwifi_baselines::skyhook::Skyhook;
use crowdwifi_baselines::ApLocalizer;
use crowdwifi_bench::{lookup_errors, print_table, Row};
use crowdwifi_channel::RssReading;
use crowdwifi_core::pipeline::{ensemble_run, OnlineCsConfig};
use crowdwifi_geo::Point;
use crowdwifi_vanet_sim::{RssCollector, Scenario};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const LATTICE: f64 = 8.0;
const TRIALS: u64 = 5;
const SIGMA_FACTOR: f64 = 0.015;

struct PointResult {
    counting: [f64; 4],
    localization: [f64; 4],
}

/// M readings at arbitrary positions over the area (the paper's RPs).
fn scattered_readings<R: Rng + ?Sized>(
    scenario: &Scenario,
    m: usize,
    rng: &mut R,
) -> Vec<RssReading> {
    let collector = RssCollector::new(scenario);
    let area = scenario.area();
    let mut readings = Vec::with_capacity(m);
    let mut t = 0.0;
    let mut attempts = 0;
    while readings.len() < m && attempts < m * 100 {
        attempts += 1;
        let p = Point::new(
            rng.random_range(area.min().x..area.max().x),
            rng.random_range(area.min().y..area.max().y),
        );
        if let Some(r) = collector.sample_at(p, t, rng) {
            readings.push(r);
        }
        t += 1.0;
    }
    readings
}

/// The full CrowdWiFi estimate via [`ensemble_run`]: batch + windowed
/// candidate generation, global BIC selection, position polish.
fn crowdwifi_estimate(scenario: &Scenario, readings: &[RssReading], k_hint: usize) -> Vec<Point> {
    let config = OnlineCsConfig {
        lattice: LATTICE,
        merge_radius: 12.0,
        sigma_factor: SIGMA_FACTOR,
        ..OnlineCsConfig::default()
    };
    ensemble_run(readings, config, *scenario.pathloss(), k_hint)
        .expect("ensemble run")
        .iter()
        .map(|e| e.position)
        .collect()
}

/// Runs all four algorithms for one (k, M) setting, averaged over
/// random scenarios. All algorithms see the same M readings.
fn run_point(k: usize, m_measurements: usize) -> PointResult {
    let mut counting = [0.0; 4];
    let mut localization = [0.0; 4];
    for trial in 0..TRIALS {
        let mut rng = ChaCha8Rng::seed_from_u64(9000 + trial);
        let scenario = Scenario::random_250(k, 25.0, &mut rng).expect("feasible AP placement");
        let truth = scenario.ap_positions();
        let readings = scattered_readings(&scenario, m_measurements, &mut rng);

        let cw = crowdwifi_estimate(&scenario, &readings, k);
        let sky = Skyhook::default().localize(&readings).positions;
        let lg = Lgmm::new(*scenario.pathloss(), LATTICE, 100.0, (k + 5).min(20))
            .localize(&readings)
            .positions;
        let mds = MdsLocalizer::new(*scenario.pathloss(), 12)
            .localize(&readings)
            .positions;

        for (slot, est) in [cw, sky, lg, mds].into_iter().enumerate() {
            let e = lookup_errors(&truth, &est, LATTICE);
            counting[slot] += e.counting;
            localization[slot] += e.localization.unwrap_or(5.0).min(5.0);
        }
    }
    PointResult {
        counting: counting.map(|c| c / TRIALS as f64 * 100.0),
        localization: localization.map(|l| l / TRIALS as f64 * 100.0),
    }
}

fn emit(title_count: &str, title_loc: &str, xs: &[usize], results: &[PointResult], x_name: &str) {
    let headers = [x_name, "CrowdWiFi", "Skyhook", "LGMM", "MDS"];
    let count_rows: Vec<Row> = xs
        .iter()
        .zip(results)
        .map(|(&x, r)| Row {
            cells: std::iter::once(x.to_string())
                .chain(r.counting.iter().map(|v| format!("{v:.1}")))
                .collect(),
        })
        .collect();
    print_table(title_count, &headers, &count_rows);
    let loc_rows: Vec<Row> = xs
        .iter()
        .zip(results)
        .map(|(&x, r)| Row {
            cells: std::iter::once(x.to_string())
                .chain(r.localization.iter().map(|v| format!("{v:.0}")))
                .collect(),
        })
        .collect();
    print_table(title_loc, &headers, &loc_rows);
}

fn main() {
    println!("250x250 m, 8 m lattice, scattered RPs, {TRIALS} trials per point (errors in %)");

    // (a, b): vs sparsity at M = 160.
    let ks = [10usize, 20, 30, 40];
    let res_k: Vec<PointResult> = ks.iter().map(|&k| run_point(k, 160)).collect();
    emit(
        "Fig. 8(a): counting error % vs sparsity k (M = 160)",
        "Fig. 8(b): localization error % vs sparsity k (M = 160)",
        &ks,
        &res_k,
        "k",
    );

    // (c, d): vs measurements at k = 10.
    let ms = [20usize, 40, 80, 120, 160];
    let res_m: Vec<PointResult> = ms.iter().map(|&m| run_point(10, m)).collect();
    emit(
        "Fig. 8(c): counting error % vs measurements M (k = 10)",
        "Fig. 8(d): localization error % vs measurements M (k = 10)",
        &ms,
        &res_m,
        "M",
    );

    println!("\npaper: CrowdWiFi ~0 for k<=30 and M>=40; baselines >=21% counting / >200% localization at k=30; ordering CrowdWiFi < Skyhook < LGMM/MDS");
}
