//! Fleet-scale round throughput on the batched event-loop backend.
//!
//! [`FleetTransport`] multiplexes tens of thousands of vehicle session
//! state machines over a clamped worker pool and shards the server's
//! data plane by road segment. This bench measures what that buys:
//! **simulated vehicle-rounds per hour** — how many vehicle
//! participations in a full faulted crowdsensing round the engine
//! completes per wall-clock hour — at 10k, 50k and 100k vehicles
//! (one 2k row under `BENCH_SMOKE=1`). The target is ≥ 1M.
//!
//! Every measured round runs with faults on: background message drop
//! and duplication plus a sprinkle of vehicle crashes and stalls, so
//! the number reflects the engine with its retry/reassignment
//! machinery exercised, not a fair-weather fast path.
//!
//! Before measuring, a small fleet is run on both `SimTransport` and
//! [`FleetTransport`] and the `state_digest` / fused maps are asserted
//! byte-identical — the throughput of an engine that diverges from the
//! reference simulator would be meaningless.
//!
//! Writes `BENCH_fleet.json` at the repo root (or `$BENCH_OUT_DIR`).
//! Run with `cargo run -p crowdwifi-bench --release --bin fleet_rounds`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::{Point, Rect};
use crowdwifi_middleware::fault::{FaultPlan, FaultPoint};
use crowdwifi_middleware::messages::VehicleId;
use crowdwifi_middleware::platform::{FaultTolerance, PlatformConfig};
use crowdwifi_middleware::segment::SegmentMap;
use crowdwifi_middleware::transport::{sim_round_with_digest, FleetTransport, Transport};
use crowdwifi_middleware::vehicle::{Behavior, CrowdVehicle};
use std::time::{Duration, Instant};

/// Vehicles sharing one road segment (and its single roadside AP).
const VEHICLES_PER_SEGMENT: u32 = 20;
/// Road-segment length in meters; one segment-shard key per segment.
const SEG_LEN: f64 = 150.0;

/// A long straight road: one 150 m segment per 20 vehicles, so fleet
/// size scales the number of segment shards, not the density.
fn road(n: u32) -> SegmentMap {
    let segs = n.div_ceil(VEHICLES_PER_SEGMENT).max(1);
    SegmentMap::new(
        Rect::new(
            Point::new(0.0, -20.0),
            Point::new(f64::from(segs) * SEG_LEN, 40.0),
        )
        .expect("ordered rect"),
        SEG_LEN,
    )
}

/// Per-vehicle estimator tuned for fleet scale: one 12-sample window,
/// coarse lattice, short radio range, no global refinement, and a
/// single solver thread — parallelism lives in the transport's worker
/// pool, not inside each (tiny) per-vehicle solve.
fn estimator_config() -> OnlineCsConfig {
    OnlineCsConfig {
        window: WindowConfig {
            size: 12,
            step: 12,
            ..WindowConfig::default()
        },
        lattice: 10.0,
        radio_range: 60.0,
        max_ap_per_window: 2,
        global_refine: false,
        threads: 1,
        ..OnlineCsConfig::default()
    }
}

/// `n` honest vehicles, 20 per segment, each driving 12 samples past
/// its segment's single roadside AP in a slightly offset lane.
fn fleet(n: u32) -> Vec<(CrowdVehicle, Vec<RssReading>)> {
    (0..n)
        .map(|v| {
            let model = PathLossModel::uci_campus();
            let seg = v / VEHICLES_PER_SEGMENT;
            let lane = f64::from(v % VEHICLES_PER_SEGMENT);
            let x0 = f64::from(seg) * SEG_LEN;
            let ap = Point::new(x0 + 75.0, 25.0);
            let readings = (0..12)
                .map(|i| {
                    let p = Point::new(x0 + 20.0 + 10.0 * f64::from(i), lane * 0.7);
                    RssReading::new(p, model.mean_rss(p.distance(ap)), f64::from(i))
                })
                .collect();
            let estimator =
                OnlineCs::new(estimator_config(), model).expect("valid estimator config");
            (
                CrowdVehicle::new(VehicleId(v), estimator, Behavior::Honest),
                readings,
            )
        })
        .collect()
}

fn config() -> PlatformConfig {
    PlatformConfig {
        workers_per_task: 3,
        seed: 1009,
        tolerance: FaultTolerance {
            deadline: Duration::from_millis(800),
            retry_backoff: Duration::from_millis(100),
            ..FaultTolerance::default()
        },
        ..PlatformConfig::default()
    }
}

/// Faults on, scaled to the fleet: 1% message drop, 0.5% duplication,
/// plus one crashing and one stalling vehicle per 2048 — enough to
/// keep the retry and reassignment machinery busy at every size.
fn fleet_plan(n: u32) -> FaultPlan {
    let mut plan = FaultPlan::noisy(u64::from(n) + 11, 0.01, 0.005, 0.0);
    let mut v = 7;
    while v < n {
        plan = plan.crash(VehicleId(v), FaultPoint::Upload);
        v += 2048;
    }
    let mut v = 1031;
    while v < n {
        plan = plan.stall(VehicleId(v), FaultPoint::Answer);
        v += 2048;
    }
    plan
}

fn main() {
    let smoke = smoke_mode();
    let sizes: &[u32] = if smoke {
        &[2_000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let transport = FleetTransport::new();
    let worker_budget = transport.worker_budget();
    println!(
        "fleet rounds: sizes {sizes:?}, {worker_budget} worker(s), {} shard(s){} ...",
        transport.shard_count(),
        if smoke { " (smoke)" } else { "" }
    );

    // Equivalence contract: a small fleet on the batched sharded engine
    // must be byte-identical to the reference simulator on the same
    // seed and fault plan. Asserted before anything is timed.
    let eq_n = 200;
    let (sim_report, sim_digest) =
        sim_round_with_digest(road(eq_n), fleet(eq_n), config(), &fleet_plan(eq_n))
            .expect("sim reference round");
    let (fleet_report, fleet_digest) = transport
        .run_round_with_digest(road(eq_n), fleet(eq_n), config(), &fleet_plan(eq_n))
        .expect("fleet reference round");
    assert_eq!(sim_digest, fleet_digest, "state digests diverged");
    assert_eq!(
        format!("{:?}", sim_report.fused),
        format!("{:?}", fleet_report.fused),
        "fused maps diverged"
    );
    println!("  equivalence: {eq_n}-vehicle fleet round matches sim byte-for-byte");

    let mut rows = Vec::new();
    let mut headline = f64::INFINITY;
    for &n in sizes {
        let segments = road(n);
        let vehicles = fleet(n);
        let plan = fleet_plan(n);
        let start = Instant::now();
        let report = transport
            .run_round_with_faults(segments, vehicles, config(), &plan)
            .expect("fleet round");
        let wall_secs = start.elapsed().as_secs_f64();
        let vrph = f64::from(n) / wall_secs * 3600.0;
        headline = headline.min(vrph);
        let fused = report.fused.len();
        let failed = report
            .exits
            .values()
            .filter(|e| !matches!(e, crowdwifi_middleware::vehicle::VehicleExit::Completed))
            .count();
        println!(
            "  {n} vehicles: {wall_secs:.2} s wall, {fused} fused APs, {failed} non-clean exits → {vrph:.0} vehicle-rounds/hour"
        );
        rows.push(format!(
            "    {{\"vehicles\": {n}, \"wall_secs\": {wall_secs:.3}, \"vehicle_rounds_per_hour\": {vrph:.0}, \"fused_aps\": {fused}, \"non_clean_exits\": {failed}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fleet_rounds\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {}, \"worker_budget\": {worker_budget}, \"smoke\": {smoke}}},\n  \"equivalence\": {{\"vehicles\": {eq_n}, \"digest_match\": true}},\n  \"shards\": {},\n  \"rows\": [\n{}\n  ],\n  \"headline_vehicle_rounds_per_hour\": {headline:.0},\n  \"target_vehicle_rounds_per_hour\": 1000000,\n  \"notes\": \"Each row is one full crowdsensing round on FleetTransport with faults on (1% drop, 0.5% duplication, one crash and one stall per 2048 vehicles): sensing, upload, labeling with retries and reassignment, sharded fusion, reliability scoring. vehicle_rounds_per_hour = vehicles / wall_secs * 3600; headline is the worst row. Vehicles run a deliberately cheap estimator (one 12-sample window, 10 m lattice, 60 m radio range, no global refine, single-threaded solves) so the number measures the round engine — event batching, shard routing, timer machinery — not estimator maths. machine.worker_budget is the transport's worker-pool size after clamping to detected parallelism (CROWDWIFI_THREADS rules). Before timing, a 200-vehicle round is asserted byte-identical (state digest and fused map) between FleetTransport and the reference SimTransport on the same seed and plan.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        transport.shard_count(),
        rows.join(",\n"),
    );
    let out_path = bench_out_path("BENCH_fleet.json");
    std::fs::write(&out_path, &json).expect("write BENCH_fleet.json");
    println!("wrote {}", out_path.display());
}
