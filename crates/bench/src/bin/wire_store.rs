//! Binary wire codec and columnar observation store benchmarks.
//!
//! Two questions, one bench:
//!
//! 1. What does the binary framing buy over the retired text codec on
//!    realistic round traffic? Measured as **payload bytes per
//!    message** (target ≤ 0.35× the text codec — the varint byte-swap
//!    float packing is what makes lattice coordinates cheap) and
//!    **encode+decode throughput** (target ≥ 5×).
//! 2. How fast does the [`ObsStore`] columnar store ingest and answer
//!    aggregate queries at 10M+ stored observations (1M under
//!    `BENCH_SMOKE=1`)? Queries read per-bucket aggregates only, so
//!    p50 latency must stay flat in the observation count.
//!
//! Writes `BENCH_wire.json` at the repo root (or `$BENCH_OUT_DIR`).
//! Run with `cargo run -p crowdwifi-bench --release --bin wire_store`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::Point;
use crowdwifi_middleware::messages::{
    MappingAnswer, MappingTask, Pattern, SensingUpload, ToServer, ToVehicle, VehicleId,
};
use crowdwifi_middleware::segment::SegmentId;
use crowdwifi_middleware::store::{ApId, ObsStore};
use crowdwifi_middleware::wire::{self, WireMessage};
use std::hint::black_box;
use std::time::Instant;

/// One message of realistic round traffic, either direction.
enum Msg {
    Up(ToServer),
    Down(ToVehicle),
}

/// Builds a corpus mirroring what a fleet round actually sends: mostly
/// uploads whose estimates sit on the 10 m solver lattice, a batch of
/// task assignments per labeling phase, answers, and a sprinkle of
/// control traffic. Deterministic — no RNG, so every run and every
/// machine measures the same bytes.
fn corpus(n: usize) -> Vec<Msg> {
    let mut msgs = Vec::with_capacity(n);
    for i in 0..n {
        let v = VehicleId((i % 4096) as u32);
        let seg = (i % 64) as f64;
        let x0 = seg * 150.0;
        match i % 20 {
            // 60%: sensing uploads, 2-4 lattice-point estimates each.
            0..=11 => {
                let count = 2 + i % 3;
                let estimates = (0..count)
                    .map(|k| ApEstimate {
                        position: Point::new(x0 + 20.0 + 10.0 * k as f64, 30.0),
                        credit: 0.5 + (i % 8) as f64 * 0.5,
                    })
                    .collect();
                msgs.push(Msg::Up(ToServer::Upload(SensingUpload {
                    vehicle: v,
                    estimates,
                })));
            }
            // 20%: task assignments, 2 tasks x 2 pattern APs.
            12..=15 => {
                let tasks = (0..2)
                    .map(|t| MappingTask {
                        task_id: i * 8 + t,
                        pattern: Pattern {
                            segment: SegmentId((i % 64) as u32),
                            aps: vec![Point::new(x0 + 70.0, 25.0), Point::new(x0 + 110.0, 25.0)],
                        },
                    })
                    .collect();
                msgs.push(Msg::Down(ToVehicle::Assign(tasks)));
            }
            // 15%: answer batches.
            16..=18 => {
                let answers = (0..3)
                    .map(|k| MappingAnswer {
                        vehicle: v,
                        task_id: i * 8 + k,
                        label: if (i + k) % 3 == 0 { -1 } else { 1 },
                    })
                    .collect();
                msgs.push(Msg::Up(ToServer::Answers(answers)));
            }
            // 5%: control traffic.
            _ => msgs.push(match i % 3 {
                0 => Msg::Down(ToVehicle::RequestUpload),
                1 => Msg::Down(ToVehicle::Done),
                _ => Msg::Up(ToServer::Failed(
                    "estimator failure: singular system".into(),
                )),
            }),
        }
    }
    msgs
}

/// Sums text-codec payload bytes over the corpus.
fn text_bytes(msgs: &[Msg]) -> u64 {
    msgs.iter()
        .map(|m| match m {
            Msg::Up(m) => m.to_wire().len() as u64,
            Msg::Down(m) => m.to_wire().len() as u64,
        })
        .sum()
}

/// Sums binary frame bytes over the corpus (framing header included).
fn binary_frame_bytes(msgs: &[Msg]) -> u64 {
    msgs.iter()
        .map(|m| match m {
            Msg::Up(m) => m.to_frame().len() as u64,
            Msg::Down(m) => m.to_frame().len() as u64,
        })
        .sum()
}

/// Times `reps` full encode+decode passes over the corpus with the
/// text codec, framed the way the text era actually shipped bytes:
/// `[len][crc][text payload]` (the pre-binary WAL format), CRC
/// validated on the way back in. Returns messages per second.
fn text_throughput(msgs: &[Msg], reps: usize) -> f64 {
    let mut scratch = Vec::with_capacity(512);
    let start = Instant::now();
    for _ in 0..reps {
        for m in msgs {
            scratch.clear();
            match m {
                Msg::Up(m) => {
                    wire::frame_into(&mut scratch, |out| {
                        out.extend_from_slice(m.to_wire().as_bytes());
                    });
                    let payload = wire::unframe(&scratch).expect("text frame");
                    let text = std::str::from_utf8(payload).expect("text payload is UTF-8");
                    black_box(ToServer::from_wire(text).expect("text decode"));
                }
                Msg::Down(m) => {
                    wire::frame_into(&mut scratch, |out| {
                        out.extend_from_slice(m.to_wire().as_bytes());
                    });
                    let payload = wire::unframe(&scratch).expect("text frame");
                    let text = std::str::from_utf8(payload).expect("text payload is UTF-8");
                    black_box(ToVehicle::from_wire(text).expect("text decode"));
                }
            }
        }
    }
    (reps * msgs.len()) as f64 / start.elapsed().as_secs_f64()
}

/// Times `reps` full encode+decode passes with the binary codec,
/// reusing one scratch buffer per direction (the transports' zero-
/// malloc hot path); returns messages per second.
fn binary_throughput(msgs: &[Msg], reps: usize) -> f64 {
    let mut scratch = Vec::with_capacity(256);
    let start = Instant::now();
    for _ in 0..reps {
        for m in msgs {
            scratch.clear();
            match m {
                Msg::Up(m) => {
                    m.encode_frame_into(&mut scratch);
                    black_box(ToServer::from_frame(&scratch).expect("binary decode"));
                }
                Msg::Down(m) => {
                    m.encode_frame_into(&mut scratch);
                    black_box(ToVehicle::from_frame(&scratch).expect("binary decode"));
                }
            }
        }
    }
    (reps * msgs.len()) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = smoke_mode();
    let corpus_n = 20_000;
    let reps = if smoke { 5 } else { 30 };
    let store_n: u64 = if smoke { 1_000_000 } else { 10_000_000 };
    println!(
        "wire + store: {corpus_n}-message corpus x{reps}, {store_n} observations{} ...",
        if smoke { " (smoke)" } else { "" }
    );

    // --- Codec: bytes per message ------------------------------------
    let msgs = corpus(corpus_n);
    let text_payload = text_bytes(&msgs);
    let binary_framed = binary_frame_bytes(&msgs);
    let binary_payload = binary_framed - 8 * msgs.len() as u64;
    // Text frames on the old WAL path carried the same 8-byte len+CRC
    // header, so payload-to-payload is the codec-to-codec comparison;
    // the framed ratio charges the binary side its header anyway.
    let payload_ratio = binary_payload as f64 / text_payload as f64;
    let framed_ratio = binary_framed as f64 / text_payload as f64;
    println!(
        "  bytes/message: text {:.1}, binary {:.1} payload ({:.1} framed) → ratio {payload_ratio:.3} payload, {framed_ratio:.3} framed",
        text_payload as f64 / msgs.len() as f64,
        binary_payload as f64 / msgs.len() as f64,
        binary_framed as f64 / msgs.len() as f64,
    );

    // --- Codec: encode+decode throughput -----------------------------
    // Warm up once, then take the best of three trials each — the
    // max-throughput estimator is robust to transient machine load.
    text_throughput(&msgs, 1);
    binary_throughput(&msgs, 1);
    let best =
        |f: &dyn Fn(&[Msg], usize) -> f64| (0..3).map(|_| f(&msgs, reps)).fold(0.0f64, f64::max);
    let text_mps = best(&text_throughput);
    let binary_mps = best(&binary_throughput);
    let speedup = binary_mps / text_mps;
    println!(
        "  encode+decode: text {:.2} Mmsg/s, binary {:.2} Mmsg/s → {speedup:.1}x",
        text_mps / 1e6,
        binary_mps / 1e6,
    );

    // --- Store: ingest ------------------------------------------------
    // 256 APs observed in rotation, ~50 observations per AP per minute
    // bucket, RSSI swinging deterministically around -60 dB.
    let mut store = ObsStore::new();
    let aps: Vec<ApId> = (0..256)
        .map(|i| store.intern(&format!("ap{i:03}")))
        .collect();
    let start = Instant::now();
    for i in 0..store_n {
        let ap = aps[(i % 256) as usize];
        let t = i * 4_700; // ~4.7 ms apart → ~12.7k obs per minute bucket
        let rssi = -60.0 + ((i / 256) % 21) as f64 - 10.0;
        store.ingest(ap, t, rssi);
    }
    let ingest_secs = start.elapsed().as_secs_f64();
    let ingest_rate = store_n as f64 / ingest_secs;
    let span_micros = store_n * 4_700;
    println!(
        "  ingest: {store_n} obs in {ingest_secs:.2} s → {:.1} Mobs/s, {} buckets, {} column bytes",
        ingest_rate / 1e6,
        store.bucket_count(),
        store.column_bytes(),
    );

    // --- Store: aggregate-query latency -------------------------------
    // mean_rssi over a sliding 10-minute window, rotating through APs;
    // reads per-bucket aggregates only.
    let queries = 2_000u64;
    let window = 600_000_000u64; // 10 min in µs
    let mut lat_us: Vec<f64> = Vec::with_capacity(queries as usize);
    let mut acc = 0.0f64;
    for q in 0..queries {
        let ap = aps[(q % 256) as usize];
        let t0 = (q * 37_000_000) % span_micros.saturating_sub(window).max(1);
        let t = Instant::now();
        if let Some(mean) = black_box(store.mean_rssi(ap, t0, t0 + window)) {
            acc += mean;
        }
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = lat_us[lat_us.len() / 2];
    let p99 = lat_us[lat_us.len() * 99 / 100];
    let static_aps = store.static_aps(3, 8.0).len();
    println!(
        "  queries: mean_rssi p50 {p50:.2} µs, p99 {p99:.2} µs over {queries} queries ({} static APs, acc {acc:.1})",
        static_aps,
    );

    assert!(
        payload_ratio <= 0.35,
        "payload ratio {payload_ratio:.3} missed the ≤0.35 target"
    );
    assert!(
        speedup >= 5.0,
        "speedup {speedup:.1}x missed the ≥5x target"
    );

    let json = format!(
        "{{\n  \"bench\": \"wire_store\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {}, \"smoke\": {smoke}}},\n  \"codec\": {{\n    \"corpus_messages\": {corpus_n},\n    \"text_bytes_per_message\": {:.2},\n    \"binary_payload_bytes_per_message\": {:.2},\n    \"binary_framed_bytes_per_message\": {:.2},\n    \"payload_bytes_ratio\": {payload_ratio:.4},\n    \"framed_bytes_ratio\": {framed_ratio:.4},\n    \"target_payload_bytes_ratio\": 0.35,\n    \"text_msgs_per_sec\": {text_mps:.0},\n    \"binary_msgs_per_sec\": {binary_mps:.0},\n    \"encode_decode_speedup\": {speedup:.2},\n    \"target_encode_decode_speedup\": 5.0\n  }},\n  \"store\": {{\n    \"observations\": {store_n},\n    \"ingest_obs_per_sec\": {ingest_rate:.0},\n    \"buckets\": {},\n    \"column_bytes\": {},\n    \"aggregate_query\": \"mean_rssi over a 10-minute window\",\n    \"aggregate_query_p50_us\": {p50:.3},\n    \"aggregate_query_p99_us\": {p99:.3},\n    \"static_aps\": {static_aps}\n  }},\n  \"notes\": \"Codec rows compare the length-prefixed CRC32 binary framing against the retired text codec on a deterministic 20k-message corpus shaped like real round traffic (60% lattice-position uploads, 20% assignments, 15% answer batches, 5% control). payload_bytes_ratio is binary payload over text payload (both codecs' WAL frames carry the same 8-byte len+CRC header); the ≤0.35 target holds because f64s are varint-packed byte-swapped, so lattice coordinates cost 2-4 bytes instead of 17 text bytes. Throughput is single-threaded frame-to-message round trips, best of three trials per codec: both sides pay full framing (len+CRC backfill on encode, CRC validation on decode, scratch buffer reused) exactly as the transports and WAL ship them — the text era framed its payloads the same way, so neither leg skips integrity work. Store rows ingest observations into the time-bucketed SoA columns (10 bytes/observation) and report mean_rssi latency percentiles reading per-minute per-AP aggregates only — flat in total observation count.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        text_payload as f64 / msgs.len() as f64,
        binary_payload as f64 / msgs.len() as f64,
        binary_framed as f64 / msgs.len() as f64,
        store.bucket_count(),
        store.column_bytes(),
    );
    let out_path = bench_out_path("BENCH_wire.json");
    std::fs::write(&out_path, &json).expect("write BENCH_wire.json");
    println!("wrote {}", out_path.display());
}
