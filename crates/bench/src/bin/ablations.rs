//! Ablation study over CrowdWiFi's design choices (accuracy, not speed —
//! the timing side lives in the Criterion benches).
//!
//! Each row disables or varies one component of the pipeline on the
//! same UCI drive and reports counting / localization error:
//!
//! * Proposition-1 orthogonalization on/off,
//! * global BIC refinement on/off (credit filter only),
//! * sliding-window size,
//! * consolidation merge radius.

use crowdwifi_bench::{fmt_opt, lookup_errors, print_table, Row};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::recovery::CsRecovery;
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::{Grid, Point};
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn base_config() -> OnlineCsConfig {
    OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        ..OnlineCsConfig::default()
    }
}

fn main() {
    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).expect("static grid");
    let scenario = scenario.snapped_to_grid(&grid);
    let truth = scenario.ap_positions();

    // The same three two-lap drives (different fading seeds) for every
    // variant.
    let route = mobility::uci_loop_route_with(2, 25.0);
    let drives: Vec<Vec<_>> = (0..3u64)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(7 + seed);
            RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng)
        })
        .collect();
    println!(
        "UCI drives, {} readings each x {} seeds; every variant sees identical data",
        drives[0].len(),
        drives.len()
    );

    let mut rows = Vec::new();
    let mut run = |name: &str, pipeline: &OnlineCs| {
        let mut count_err = 0.0;
        let mut dist_err = 0.0;
        let mut k_sum = 0usize;
        for readings in &drives {
            let est: Vec<Point> = pipeline
                .run(readings)
                .expect("pipeline run")
                .iter()
                .map(|e| e.position)
                .collect();
            let e = lookup_errors(&truth, &est, 8.0);
            count_err += e.counting;
            dist_err += e.mean_distance_m.unwrap_or(100.0);
            k_sum += e.estimated_k;
        }
        let n = drives.len() as f64;
        rows.push(Row {
            cells: vec![
                name.to_string(),
                format!("{:.1}", k_sum as f64 / n),
                format!("{:.2}", count_err / n),
                fmt_opt(Some(dist_err / n), 2),
            ],
        });
    };

    let model = *scenario.pathloss();

    // Baseline.
    let full = OnlineCs::new(base_config(), model).expect("valid config");
    run("full pipeline", &full);

    // No Proposition-1 orthogonalization.
    let cfg = base_config();
    let no_orth = OnlineCs::new(cfg, model)
        .expect("valid config")
        .with_recovery(
            CsRecovery::new(model, cfg.radio_range, cfg.detection_floor_dbm)
                .without_orthogonalization(),
        );
    run("no orthogonalization", &no_orth);

    // No global refinement (paper's plain credit filter).
    let cfg = OnlineCsConfig {
        global_refine: false,
        ..base_config()
    };
    run(
        "credit filter only",
        &OnlineCs::new(cfg, model).expect("valid config"),
    );

    // Window-size sweep.
    for size in [20usize, 60] {
        let cfg = OnlineCsConfig {
            window: WindowConfig {
                size,
                step: 10,
                ttl: f64::INFINITY,
            },
            ..base_config()
        };
        run(
            &format!("window = {size}"),
            &OnlineCs::new(cfg, model).expect("valid config"),
        );
    }

    // Solver family sweep (the l1 program is the paper's; OMP is the
    // greedy alternative, IRLS the classical reweighting scheme).
    for (name, solver) in [
        (
            "solver = OMP",
            crowdwifi_sparsesolve::AnySolver::default_omp(),
        ),
        (
            "solver = IRLS",
            crowdwifi_sparsesolve::AnySolver::default_irls(),
        ),
    ] {
        let cfg = base_config();
        let variant = OnlineCs::new(cfg, model)
            .expect("valid config")
            .with_recovery(
                CsRecovery::new(model, cfg.radio_range, cfg.detection_floor_dbm)
                    .with_solver(solver),
            );
        run(name, &variant);
    }

    // Merge-radius sweep.
    for mr in [8.0, 40.0] {
        let cfg = OnlineCsConfig {
            merge_radius: mr,
            ..base_config()
        };
        run(
            &format!("merge radius = {mr} m"),
            &OnlineCs::new(cfg, model).expect("valid config"),
        );
    }

    print_table(
        "Ablations on the UCI drive (k = 8 APs)",
        &["variant", "k_est", "count_err", "avg_err_m"],
        &rows,
    );
}
