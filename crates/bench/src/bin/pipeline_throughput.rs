//! End-to-end online-CS pipeline throughput bench (the perf tentpole).
//!
//! Five measurements on one seeded UCI drive:
//!
//! 1. **Thread sweep** — readings/sec of [`OnlineCs::run`] at 1/2/4/8
//!    configured threads, asserting along the way that every thread
//!    count produces the identical estimate set (the deterministic-
//!    parallelism contract).
//! 2. **Shared window factorization** — one round's hypothesis groups
//!    recovered the seed way (`recover_single_ap`: rebuild the sensing
//!    matrix per group) vs the shared way (`prepare_window` once +
//!    memoized `recover_group`), cold and warm (the warm replay is what
//!    EM refinement passes and recurring hypotheses see).
//! 3. **Solver workspace** — the seed's FISTA loop (per-iteration
//!    `clone`s, reproduced verbatim from the seed commit below) vs the
//!    current allocation-lean `recover_with` on a reused
//!    [`SolverWorkspace`], verified to produce identical iterates.
//! 4. **Solver acceleration** — the full drive with the acceleration
//!    layer (screening, gap stops, warm starts, Gram caching) off vs
//!    on, with support preservation asserted.
//! 5. **Kernel acceleration** — the accelerated drive on the scalar
//!    kernels + unfused factorization (the PR 5 compute path) vs the
//!    vectorized kernels + single-SVD fused factorization, again with
//!    support preservation asserted.
//!
//! Writes `BENCH_pipeline.json` at the repo root, including the machine
//! topology so single-core runs read honestly (the thread sweep cannot
//! beat 1× without real cores; the two algorithmic measurements are the
//! machine-independent gains over the seed implementation).
//!
//! Run with `cargo run -p crowdwifi-bench --release --bin pipeline_throughput`.
//! `BENCH_SMOKE=1` cuts repetitions for CI's regression gate;
//! `BENCH_OUT_DIR` redirects the JSON away from the repo root.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_core::assign::{Assigner, ClusterAssigner};
use crowdwifi_core::par;
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::recovery::{CsRecovery, SolverAccel};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::{Grid, Point};
use crowdwifi_linalg::kernels::{self, Mode};
use crowdwifi_linalg::vector;
use crowdwifi_linalg::Matrix;
use crowdwifi_sparsesolve::prox::soft_threshold_nonneg_vec;
use crowdwifi_sparsesolve::{Fista, SolverWorkspace, SparseRecovery};
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Mean seconds per call of `f` over `reps` calls (caller warms up).
fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// The seed commit's `spectral_norm_sq` (power iteration), reproduced
/// so [`seed_fista_solve`] computes the exact same step size as the
/// current solver and the two run the identical iterate sequence.
fn seed_spectral_norm_sq(a: &Matrix, iterations: usize) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let av = a.matvec(&v);
        let atav = a.matvec_transposed(&av);
        let norm = vector::norm2(&atav);
        if norm == 0.0 {
            return 0.0;
        }
        lambda = norm;
        for (vi, &x) in v.iter_mut().zip(&atav) {
            *vi = x / norm;
        }
    }
    lambda
}

/// The seed commit's FISTA loop, verbatim in structure: `matvec`,
/// `sub`, `matvec_transposed` and two `clone`s allocate fresh vectors
/// on **every** iteration. This is the measured baseline the
/// allocation-lean `recover_with` is compared against; same λ, step and
/// update order, so both produce bit-identical solutions in the same
/// iteration count — the only difference is where intermediates live.
fn seed_fista_solve(a: &Matrix, y: &[f64]) -> (Vec<f64>, usize, bool) {
    const LAMBDA_REL: f64 = 0.01;
    const MAX_ITERATIONS: usize = 2000;
    const TOLERANCE: f64 = 1e-8;
    let lipschitz = seed_spectral_norm_sq(a, 30) * 1.02;
    let step = 1.0 / lipschitz;
    let lambda = LAMBDA_REL * vector::norm_inf(&a.matvec_transposed(y));
    let mut x = vec![0.0; a.cols()];
    let mut z = x.clone();
    let mut t: f64 = 1.0;
    let mut iterations = 0;
    let mut converged = false;
    for k in 0..MAX_ITERATIONS {
        iterations = k + 1;
        let az = a.matvec(&z);
        let grad = a.matvec_transposed(&vector::sub(&az, y));
        let mut x_new = z.clone();
        vector::axpy(-step, &grad, &mut x_new);
        soft_threshold_nonneg_vec(&mut x_new, step * lambda);
        let delta = vector::distance(&x_new, &x);
        let scale = vector::norm2(&x_new).max(1e-12);
        let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_new;
        z = x_new.clone();
        for (zi, (&xn, &xo)) in z.iter_mut().zip(x_new.iter().zip(&x)) {
            *zi = xn + beta * (xn - xo);
        }
        t = t_new;
        x = x_new;
        if delta <= TOLERANCE * scale {
            converged = true;
            break;
        }
    }
    (x, iterations, converged)
}

fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let scale = 1.0 / (m as f64).sqrt();
    Matrix::from_fn(m, n, |_, _| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
            scale
        } else {
            -scale
        }
    })
}

fn main() {
    // Ask for an 8-worker budget so the sweep exercises the parallel
    // code path on big machines; the env request is clamped to the
    // detected parallelism (an oversubscribed 1-core box regresses the
    // pipeline instead of parallelizing it), and the JSON records both
    // the physical topology and the budget actually granted.
    std::env::set_var(par::THREADS_ENV, "8");
    let physical = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = par::resolve_threads(0);
    let smoke = smoke_mode();
    println!(
        "physical parallelism: {physical}, worker budget: {budget}{}",
        if smoke { ", smoke mode" } else { "" }
    );

    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).expect("static grid");
    let scenario = scenario.snapped_to_grid(&grid);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    let model = *scenario.pathloss();

    // Sections 1–3 measure the seed-comparable *unaccelerated* path
    // (solver acceleration off): the thread sweep needs the parallel
    // window loop (warm starts serialize it) and the workspace section
    // asserts bit-identity against the frozen seed FISTA. Section 4
    // then measures the acceleration layer against this baseline.
    let cfg = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        accel: SolverAccel::disabled(),
        ..OnlineCsConfig::default()
    };

    // --- 1. Thread sweep over the full pipeline. ---
    println!(
        "thread sweep: {} readings, window {}x{} ...",
        readings.len(),
        cfg.window.size,
        cfg.window.step
    );
    let sweep_reps: usize = if smoke { 1 } else { 3 };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<Vec<(f64, f64)>> = None;
    for &threads in thread_counts {
        let pipeline =
            OnlineCs::new(OnlineCsConfig { threads, ..cfg }, model).expect("valid config");
        let mut out = Vec::new();
        pipeline.run(&readings).expect("warmup run");
        let secs = time(
            || out = pipeline.run(&readings).expect("pipeline run"),
            sweep_reps,
        );
        // The deterministic-parallelism contract, checked end to end.
        let fingerprint: Vec<(f64, f64)> =
            out.iter().map(|e| (e.position.x, e.position.y)).collect();
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => assert_eq!(r, &fingerprint, "threads={threads} changed the estimates"),
        }
        let rps = readings.len() as f64 / secs;
        println!("  threads={threads}: {rps:.0} readings/s ({secs:.3} s/run)");
        sweep.push((threads, rps));
    }
    let base_rps = sweep[0].1;

    // --- 2. Shared window factorization vs per-group rebuild. ---
    // The groups are the real hypothesis fan-out of one round: every
    // (k, assignment, ap-cluster) the pipeline would recover.
    let window = &readings[..cfg.window.size.min(readings.len())];
    let recovery = CsRecovery::new(model, cfg.radio_range, cfg.detection_floor_dbm);
    let positions: Vec<Point> = window.iter().map(|r| r.position).collect();
    let wgrid =
        Grid::from_reference_points(&positions, cfg.radio_range, cfg.lattice).expect("grid");
    let assigner = ClusterAssigner::new(model);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for k in 1..=cfg.max_ap_per_window {
        for a in assigner.candidate_assignments(window, k) {
            for ap in 0..k {
                let g = a.group(ap);
                if !g.is_empty() {
                    groups.push(g);
                }
            }
        }
    }
    let distinct = groups
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    println!(
        "shared-window: {} group recoveries per round ({} distinct) ...",
        groups.len(),
        distinct
    );
    let group_reps: usize = if smoke { 2 } else { 5 };
    let direct_secs = time(
        || {
            for g in &groups {
                let pos: Vec<Point> = g.iter().map(|&i| window[i].position).collect();
                let rss: Vec<f64> = g.iter().map(|&i| window[i].rss_dbm).collect();
                recovery
                    .recover_single_ap(&wgrid, &pos, &rss)
                    .expect("direct recovery");
            }
        },
        group_reps,
    );
    let shared_secs = time(
        || {
            let sensing = recovery.prepare_window(&wgrid, window);
            for g in &groups {
                recovery
                    .recover_group(&sensing, g)
                    .expect("shared recovery");
            }
        },
        group_reps,
    );
    // Warm replay: the same groupings recur across EM refinement passes
    // and k hypotheses inside a round; the memo serves those from cache.
    let sensing = recovery.prepare_window(&wgrid, window);
    for g in &groups {
        recovery.recover_group(&sensing, g).expect("memo fill");
    }
    let warm_secs = time(
        || {
            for g in &groups {
                recovery.recover_group(&sensing, g).expect("memo hit");
            }
        },
        group_reps,
    );
    let shared_speedup = direct_secs / shared_secs;
    let warm_speedup = direct_secs / warm_secs;
    println!(
        "  per-group rebuild {:.1} ms vs shared cold {:.1} ms ({shared_speedup:.2}x) vs memoized replay {:.3} ms ({warm_speedup:.0}x)",
        direct_secs * 1e3,
        shared_secs * 1e3,
        warm_secs * 1e3
    );

    // --- 3. Allocation-lean solver vs the seed's per-iteration clones. ---
    let (m, n) = (24, 160);
    let a = bernoulli_matrix(m, n, 21);
    let mut theta = vec![0.0; n];
    theta[9] = 1.0;
    theta[77] = 1.0;
    theta[140] = 1.0;
    let y = a.matvec(&theta);
    let solver = Fista::default();
    // The baseline really is the same algorithm: identical solution,
    // in the identical number of iterations.
    let (seed_x, seed_iters, seed_converged) = seed_fista_solve(&a, &y);
    let mut ws = SolverWorkspace::new();
    let current = solver.recover_with(&a, &y, &mut ws).expect("warmup solve");
    assert_eq!(
        seed_x, current.solution,
        "seed baseline diverged from current solver"
    );
    assert_eq!(seed_iters, current.iterations);
    assert_eq!(seed_converged, current.converged);
    let solve_reps: usize = if smoke { 50 } else { 200 };
    let seed_secs = time(|| drop(seed_fista_solve(&a, &y)), solve_reps);
    let lean_secs = time(
        || drop(solver.recover_with(&a, &y, &mut ws).expect("solve")),
        solve_reps,
    );
    let ws_speedup = seed_secs / lean_secs;
    println!(
        "  fista {m}x{n}, {seed_iters} iters: seed (clone-per-iteration) {:.0} us vs workspace {:.0} us per solve: {ws_speedup:.2}x",
        seed_secs * 1e6,
        lean_secs * 1e6
    );

    // --- 4. Solver acceleration: screening + gap stops + warm starts. ---
    // One drive through the full pipeline with the acceleration layer
    // off vs on. The headline number is machine-independent: total ℓ1
    // iterations across every group solve of the drive. Support
    // preservation is asserted, not assumed.
    let baseline_pipe = OnlineCs::new(cfg, model).expect("valid config");
    let accel_pipe = OnlineCs::new(
        OnlineCsConfig {
            accel: SolverAccel::enabled(),
            ..cfg
        },
        model,
    )
    .expect("valid config");
    let base_report = baseline_pipe.run_detailed(&readings).expect("baseline run");
    let accel_report = accel_pipe.run_detailed(&readings).expect("accelerated run");
    assert_eq!(
        base_report.final_aps.len(),
        accel_report.final_aps.len(),
        "acceleration changed the number of recovered APs"
    );
    for b in &base_report.final_aps {
        let d = accel_report
            .final_aps
            .iter()
            .map(|a| a.position.distance(b.position))
            .fold(f64::INFINITY, f64::min);
        assert!(
            d < 8.0,
            "baseline AP at {} has no accelerated counterpart ({d:.1} m)",
            b.position
        );
    }
    let base_iters = base_report.sensing.solver_iterations;
    let accel_iters = accel_report.sensing.solver_iterations;
    let iter_reduction = 1.0 - accel_iters as f64 / (base_iters as f64).max(1.0);
    let accel_reps: usize = if smoke { 1 } else { 3 };
    let base_wall = time(
        || drop(baseline_pipe.run_detailed(&readings).expect("baseline run")),
        accel_reps,
    );
    let accel_wall = time(
        || drop(accel_pipe.run_detailed(&readings).expect("accelerated run")),
        accel_reps,
    );
    println!(
        "solver accel: {base_iters} -> {accel_iters} l1 iterations ({:.1}% cut), {} cols screened, {} warm-seeded solves, wall {:.1} -> {:.1} ms",
        100.0 * iter_reduction,
        accel_report.sensing.screened_cols,
        accel_report.sensing.warm_seeded,
        base_wall * 1e3,
        accel_wall * 1e3,
    );

    // --- 5. Vectorized kernels + fused factorization vs the PR 5 path. ---
    // Same accelerated drive, two compute layers: the baseline leg pins
    // the scalar (seed-exact) kernels and the unfused MGS-orth +
    // pseudo-inverse factorization; the new leg runs the unrolled
    // kernels with the single-SVD fused factorization. The kernels are
    // bit-identical by construction and the fused factorization spans
    // the same row space, so both legs must recover the same AP set —
    // asserted, then recorded as kernel_support_identical.
    let kernel_base_pipe = OnlineCs::new(
        OnlineCsConfig {
            accel: SolverAccel::enabled(),
            ..cfg
        },
        model,
    )
    .expect("valid config")
    .with_fused_factorization(false);
    kernels::set_mode(Some(Mode::Scalar));
    let kernel_base_report = kernel_base_pipe
        .run_detailed(&readings)
        .expect("scalar/unfused run");
    let kernel_base_wall = time(
        || {
            drop(
                kernel_base_pipe
                    .run_detailed(&readings)
                    .expect("scalar/unfused run"),
            )
        },
        accel_reps,
    );
    kernels::set_mode(Some(Mode::Vectorized));
    let kernel_accel_report = accel_pipe
        .run_detailed(&readings)
        .expect("vectorized/fused run");
    let kernel_accel_wall = time(
        || {
            drop(
                accel_pipe
                    .run_detailed(&readings)
                    .expect("vectorized/fused run"),
            )
        },
        accel_reps,
    );
    kernels::set_mode(None);
    assert_eq!(
        kernel_base_report.final_aps.len(),
        kernel_accel_report.final_aps.len(),
        "kernel path changed the number of recovered APs"
    );
    for b in &kernel_base_report.final_aps {
        let d = kernel_accel_report
            .final_aps
            .iter()
            .map(|a| a.position.distance(b.position))
            .fold(f64::INFINITY, f64::min);
        assert!(
            d < 8.0,
            "scalar/unfused AP at {} has no vectorized/fused counterpart ({d:.1} m)",
            b.position
        );
    }
    let kernel_speedup = kernel_base_wall / kernel_accel_wall;
    println!(
        "kernel accel: scalar/unfused {:.1} ms vs vectorized/fused {:.1} ms ({kernel_speedup:.2}x), support identical",
        kernel_base_wall * 1e3,
        kernel_accel_wall * 1e3,
    );

    // --- Emit BENCH_pipeline.json at the repo root. ---
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|&(t, rps)| {
            format!(
                "    {{\"threads\": {t}, \"readings_per_sec\": {rps:.1}, \"speedup_vs_1\": {:.3}}}",
                rps / base_rps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {physical}, \"worker_budget\": {budget}, \"smoke\": {smoke}}},\n  \"drive\": {{\"readings\": {}, \"window_size\": {}, \"window_step\": {}}},\n  \"thread_sweep\": [\n{}\n  ],\n  \"shared_window\": {{\"groups_per_round\": {}, \"distinct_groups\": {distinct}, \"per_group_rebuild_ms\": {:.3}, \"shared_cold_ms\": {:.3}, \"memoized_replay_ms\": {:.4}, \"cold_speedup\": {:.3}, \"memoized_speedup\": {:.1}}},\n  \"solver_workspace\": {{\"matrix\": \"{m}x{n}\", \"iterations\": {seed_iters}, \"seed_clone_per_iter_us\": {:.1}, \"workspace_us\": {:.1}, \"speedup\": {:.3}, \"bit_identical\": true}},\n  \"solver_accel\": {{\"baseline_iterations\": {base_iters}, \"accel_iterations\": {accel_iters}, \"iteration_reduction\": {iter_reduction:.3}, \"baseline_solves\": {}, \"accel_solves\": {}, \"screened_cols\": {}, \"iterations_saved\": {}, \"warm_seeded\": {}, \"baseline_unconverged\": {}, \"accel_unconverged\": {}, \"baseline_ms\": {:.1}, \"accel_ms\": {:.1}, \"wall_speedup\": {:.3}, \"support_identical\": true}},\n  \"kernel_accel\": {{\"kernel_baseline_ms\": {:.1}, \"kernel_accel_ms\": {:.1}, \"kernel_wall_speedup\": {kernel_speedup:.3}, \"kernel_support_identical\": true}},\n  \"notes\": \"Thread-sweep speedups are bounded by physical_parallelism (a 1-core machine cannot exceed 1x regardless of the configured thread count; the CROWDWIFI_THREADS request is clamped to the detected parallelism and worker_budget records the granted value); shared_window, solver_workspace, solver_accel and kernel_accel are the machine-independent algorithmic gains over the seed implementation. The seed FISTA baseline is reproduced verbatim in this bench and asserted to yield bit-identical solutions. solver_accel compares one full drive with the acceleration layer (gap-safe screening, duality-gap stops, cross-window warm starts, Gram caching) off vs on: iteration_reduction is the cut in total l1 iterations, and support_identical records the in-bench assertion that both runs recover the same AP set. kernel_accel compares the same accelerated drive on the PR 5 compute path (scalar kernels, MGS orthogonalization + pseudo-inverse) vs the current one (row-blocked vectorized kernels, single-SVD fused factorization): the kernels are bit-identical to the scalar reference, the fused factorization spans the same row space, and kernel_support_identical records the in-bench assertion that both legs recover the same AP set.\"\n}}\n",
        readings.len(),
        cfg.window.size,
        cfg.window.step,
        sweep_json.join(",\n"),
        groups.len(),
        direct_secs * 1e3,
        shared_secs * 1e3,
        warm_secs * 1e3,
        shared_speedup,
        warm_speedup,
        seed_secs * 1e6,
        lean_secs * 1e6,
        ws_speedup,
        base_report.sensing.solves,
        accel_report.sensing.solves,
        accel_report.sensing.screened_cols,
        accel_report.sensing.iterations_saved,
        accel_report.sensing.warm_seeded,
        base_report.sensing.unconverged,
        accel_report.sensing.unconverged,
        base_wall * 1e3,
        accel_wall * 1e3,
        base_wall / accel_wall,
        kernel_base_wall * 1e3,
        kernel_accel_wall * 1e3,
    );
    let out_path = bench_out_path("BENCH_pipeline.json");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {}", out_path.display());
}
