//! Fig. 11 — impact of lookup accuracy on TCP transfers.
//!
//! Paper setup (§6.3): 10 KB transfers with the 10 s stall-restart
//! rule, evaluated under injected counting errors and localization
//! errors of 0..300 %. Paper result: with accurate lookup AllAP's
//! median transfer time is ~0.61 s (≈ 50 % better than BRR) and its
//! throughput is about double; the advantage persists under moderate
//! errors and both policies degrade as errors grow.

use crowdwifi_bench::{print_table, Row};
use crowdwifi_handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi_handoff::db::ApDatabase;
use crowdwifi_handoff::transfer::{run_transfers, TransferConfig};
use crowdwifi_vanet_sim::mobility::vanlan_round;
use crowdwifi_vanet_sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const LATTICE: f64 = 10.0;
const TRIALS: u64 = 5;

/// Median transfer time and transfers/session for one policy and error
/// setting, averaged over trials.
fn run_case(policy: Policy, counting_error: f64, localization_error: f64) -> (f64, f64) {
    let scenario = Scenario::vanlan();
    let truth = scenario.ap_positions();
    let route = vanlan_round(0.0);
    let mut med_sum = 0.0;
    let mut med_n = 0usize;
    let mut tput_sum = 0.0;
    for trial in 0..TRIALS {
        let mut rng = ChaCha8Rng::seed_from_u64(300 + trial);
        let db = ApDatabase::perturbed(
            &truth,
            scenario.area(),
            counting_error,
            localization_error,
            LATTICE,
            &mut rng,
        );
        let trace = simulate(
            policy,
            &scenario,
            &route,
            &db,
            ConnectivityConfig::default(),
            &mut rng,
        )
        .expect("valid connectivity config");
        let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
        if let Some(m) = stats.median_time() {
            med_sum += m;
            med_n += 1;
        }
        tput_sum += stats.transfers_per_session;
    }
    (
        if med_n > 0 {
            med_sum / med_n as f64
        } else {
            f64::NAN
        },
        tput_sum / TRIALS as f64,
    )
}

fn sweep(errors: &[f64], is_counting: bool) {
    let mut time_rows = Vec::new();
    let mut tput_rows = Vec::new();
    for &err in errors {
        let (ce, le) = if is_counting { (err, 0.0) } else { (0.0, err) };
        let (brr_t, brr_x) = run_case(Policy::Brr, ce, le);
        let (all_t, all_x) = run_case(Policy::AllAp, ce, le);
        time_rows.push(Row {
            cells: vec![
                format!("{:.0}", err * 100.0),
                format!("{brr_t:.2}"),
                format!("{all_t:.2}"),
            ],
        });
        tput_rows.push(Row {
            cells: vec![
                format!("{:.0}", err * 100.0),
                format!("{brr_x:.1}"),
                format!("{all_x:.1}"),
            ],
        });
    }
    let which = if is_counting {
        "counting"
    } else {
        "localization"
    };
    print_table(
        &format!("Fig. 11: median transfer time (s) vs {which} error"),
        &["error_%", "BRR", "AllAP"],
        &time_rows,
    );
    print_table(
        &format!("Fig. 11: transfers per session vs {which} error"),
        &["error_%", "BRR", "AllAP"],
        &tput_rows,
    );
}

fn main() {
    println!("10 KB transfers, 10 s stall restart, {TRIALS} van rounds per point");
    let errors = [0.0, 0.5, 1.0, 2.0, 3.0];
    sweep(&errors, true); // Fig. 11(a, c)
    sweep(&errors, false); // Fig. 11(b, d)
    println!("\npaper: AllAP ~0.61 s median (≈50% better than BRR) and ~2x throughput at zero error; advantage persists under tolerable errors");
}
