//! Fig. 6 — impact of lattice size on localization error.
//!
//! Paper setup: UCI scenario with 180 data points, lattice length swept
//! from 2 m to 20 m. Paper result: error below 2 m for lattices ≤ 10 m,
//! below 3 m at 20 m, generally increasing with lattice length;
//! counting error 0 across the whole range.

use crowdwifi_bench::{fmt_opt, lookup_errors, print_table, Row};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::{Grid, Point};
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let base = Scenario::uci_campus();
    let route = mobility::uci_loop_route_with(2, 25.0);
    let interval = route.duration() / 181.0;

    let mut rows = Vec::new();
    for lattice in [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0] {
        // APs snapped to the *8 m* reference grid as in Fig. 5; the
        // estimation lattice is what varies.
        let grid = Grid::new(base.area(), 8.0).expect("static grid");
        let scenario = base.snapped_to_grid(&grid);
        let truth = scenario.ap_positions();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let readings = RssCollector::new(&scenario).collect_along(&route, interval, &mut rng);

        let config = OnlineCsConfig {
            window: WindowConfig {
                size: 40,
                step: 10,
                ttl: f64::INFINITY,
            },
            lattice,
            max_ap_per_window: 4,
            sigma_factor: 0.04,
            merge_radius: (2.5 * lattice).max(15.0),
            ..OnlineCsConfig::default()
        };
        let pipeline = OnlineCs::new(config, *scenario.pathloss()).expect("valid config");
        let n = 180.min(readings.len());
        let estimates = pipeline.run(&readings[..n]).expect("pipeline run");
        let est: Vec<Point> = estimates.iter().map(|e| e.position).collect();
        let e = lookup_errors(&truth, &est, lattice);
        rows.push(Row {
            cells: vec![
                format!("{lattice:.0}"),
                format!("{}", e.estimated_k),
                format!("{:.2}", e.counting),
                fmt_opt(e.mean_distance_m, 2),
                fmt_opt(e.localization.map(|l| l * 100.0), 1),
            ],
        });
    }
    print_table(
        "Fig. 6: localization error vs lattice length (180 points)",
        &["lattice_m", "k_est", "count_err", "avg_err_m", "loc_err_%"],
        &rows,
    );
    println!("\npaper: <2 m error for lattice <=10 m, <3 m at 20 m, counting error 0 for 2..20 m");
}
