//! Geo-sharded AP map benchmarks: sustained lookup throughput and
//! latency under concurrent ingest at 1M+ stored APs.
//!
//! The map under test is the global [`GeoMap`]: geohash-bucketed,
//! shard-per-prefix, with an epoch read path (readers clone a shard's
//! published generation `Arc` and never block on ingest). Four
//! questions, one bench:
//!
//! 1. How fast does consolidation ingest run — founding inserts and
//!    merge-heavy re-observation passes?
//! 2. How many radius lookups per second does the read path sustain
//!    **while a writer thread continuously re-ingests the estimate
//!    stream** (target ≥ 1M lookups/s)?
//! 3. What do lookup latency percentiles look like with ingest off vs
//!    on (target p99 ≤ 10 µs, on/off ratio ≤ 2×)? Latency is sampled
//!    in batches of 64 lookups per timing read so a scheduler
//!    preemption poisons under 1 % of samples on a single-core box.
//! 4. Does TTL eviction behave at scale — a full sweep over the loaded
//!    map with half the entries refreshed must expire the stale half?
//!
//! A final end-to-end check feeds the VanLan BRR handoff policy from
//! the map's corridor query and asserts the connectivity trace is
//! identical to the canonically-ordered static AP list on the same
//! seed (`brr_identical` in the JSON).
//!
//! Writes `BENCH_map.json` at the repo root (or `$BENCH_OUT_DIR`).
//! Run with `cargo run -p crowdwifi-bench --release --bin ap_map`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::{Point, Rect};
use crowdwifi_geomap::{GeoMap, MapConfig};
use crowdwifi_handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi_handoff::db::ApDatabase;
use crowdwifi_vanet_sim::mobility::vanlan_round;
use crowdwifi_vanet_sim::Scenario;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// World edge in meters: 64 km square, a metro-scale road network.
const WORLD_M: f64 = 65_536.0;
/// Lookup radius: the believed WiFi association range neighborhood.
const LOOKUP_RADIUS_M: f64 = 60.0;
/// Lookups per latency sample; one `Instant` read per batch.
const LAT_BATCH: usize = 64;

/// Deterministic road-grid AP layout: `roads` streets per direction,
/// `slots` APs along each, horizontal and vertical offset from each
/// other so intersections rarely collapse into one consolidated entry.
fn road_grid(roads: usize, slots: usize) -> Vec<ApEstimate> {
    let road_gap = WORLD_M / roads as f64;
    let slot_gap = WORLD_M / slots as f64;
    let mut out = Vec::with_capacity(2 * roads * slots);
    for r in 0..roads {
        let line = (r as f64 + 0.5) * road_gap;
        for j in 0..slots {
            let along = (j as f64 + 0.5) * slot_gap;
            out.push(ApEstimate {
                position: Point::new(along, line),
                credit: 2.0,
            });
            out.push(ApEstimate {
                position: Point::new(line + 7.0, along + 5.0),
                credit: 2.0,
            });
        }
    }
    out
}

/// Query stream shaped like user-vehicle drives: each run of
/// `DRIVE_LEN` consecutive centers walks one road with lateral jitter —
/// a vehicle polling "what's around me" along its route, which is how
/// the paper's user-vehicles actually hit the map. Drives start on
/// random roads, so the stream still sweeps the whole world.
fn query_centers(roads: usize, slots: usize, n: usize) -> Vec<Point> {
    const DRIVE_LEN: usize = 256;
    let road_gap = WORLD_M / roads as f64;
    let slot_gap = WORLD_M / slots as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut out = Vec::with_capacity(n + DRIVE_LEN);
    while out.len() < n {
        let line = (rng.random_range(0..roads) as f64 + 0.5) * road_gap;
        let start: usize = rng.random_range(0..slots);
        let horizontal = rng.random_range(0..2u32) == 0;
        for j in 0..DRIVE_LEN {
            let along = (((start + j) % slots) as f64 + 0.5) * slot_gap;
            let lat: f64 = rng.random_range(-20.0..20.0);
            let p = if horizontal {
                Point::new(along, line + lat)
            } else {
                Point::new(line + 7.0 + lat, along + 5.0)
            };
            out.push(Point::new(p.x.clamp(0.0, WORLD_M), p.y.clamp(0.0, WORLD_M)));
        }
    }
    out.truncate(n);
    out
}

/// Runs `batches × LAT_BATCH` lookups, returning (lookups/sec, p50 µs,
/// p99 µs) with per-lookup latency sampled per batch.
fn run_lookups(map: &GeoMap, centers: &[Point], batches: usize) -> (f64, f64, f64) {
    let mut lat_us: Vec<f64> = Vec::with_capacity(batches);
    let mut hits = 0usize;
    let mut i = 0usize;
    let start = Instant::now();
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..LAT_BATCH {
            hits += map.count_near(centers[i], LOOKUP_RADIUS_M);
            i = (i + 1) % centers.len();
        }
        lat_us.push(t.elapsed().as_secs_f64() * 1e6 / LAT_BATCH as f64);
    }
    let total = start.elapsed().as_secs_f64();
    black_box(hits);
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = lat_us[lat_us.len() / 2];
    let p99 = lat_us[lat_us.len() * 99 / 100];
    ((batches * LAT_BATCH) as f64 / total, p50, p99)
}

/// The end-to-end handoff check: map-fed BRR must equal the static
/// canonical list on the same seed.
fn brr_identity_holds() -> bool {
    let scenario = Scenario::vanlan();
    let route = vanlan_round(0.0);
    let cfg = ConnectivityConfig::default();
    let map = GeoMap::new(MapConfig::new(scenario.area())).expect("vanlan map");
    for round in 0u64..2 {
        let estimates: Vec<ApEstimate> = scenario
            .ap_positions()
            .into_iter()
            .map(|position| ApEstimate {
                position,
                credit: 2.0,
            })
            .collect();
        map.absorb_estimates((round + 1) * 60_000_000, &estimates);
    }
    let path: Vec<Point> = route.waypoints().iter().map(|w| w.position).collect();
    let ahead = map.aps_ahead(&path, cfg.believed_range);
    let map_db = ApDatabase::new(ahead.iter().map(|a| a.position).collect());
    let mut baseline = scenario.ap_positions();
    baseline.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let static_db = ApDatabase::new(baseline);
    let from_map = simulate(
        Policy::Brr,
        &scenario,
        &route,
        &map_db,
        cfg,
        &mut ChaCha8Rng::seed_from_u64(9),
    )
    .expect("map-fed simulation");
    let from_static = simulate(
        Policy::Brr,
        &scenario,
        &route,
        &static_db,
        cfg,
        &mut ChaCha8Rng::seed_from_u64(9),
    )
    .expect("static simulation");
    from_map == from_static
}

fn main() {
    let smoke = smoke_mode();
    let (roads, slots) = if smoke { (64, 2_000) } else { (128, 4_800) };
    let batches = if smoke { 16_384 } else { 65_536 };
    let world = Rect::new(Point::new(0.0, 0.0), Point::new(WORLD_M, WORLD_M)).unwrap();
    let mut cfg = MapConfig::new(world);
    cfg.shard_level = 5; // 1024 shards
    cfg.bucket_level = 8; // 256 m buckets
    let bucket_edge = WORLD_M / (1u64 << cfg.bucket_level) as f64;
    let ttl = cfg.ttl_micros;

    let estimates = road_grid(roads, slots);
    println!(
        "ap_map: {} estimates on a {roads}x2-road grid, {} lookup batches of {LAT_BATCH}{} ...",
        estimates.len(),
        batches,
        if smoke { " (smoke)" } else { "" }
    );

    // --- Ingest: founding build, then a merge-heavy re-observation ----
    let map = GeoMap::new(cfg).expect("map config");
    let t_base = 1_000_000u64;
    let start = Instant::now();
    for chunk in estimates.chunks(8_192) {
        map.absorb_estimates(t_base, chunk);
    }
    let build_secs = start.elapsed().as_secs_f64();
    let build_rate = estimates.len() as f64 / build_secs;
    let stored = map.len();
    let start = Instant::now();
    for chunk in estimates.chunks(8_192) {
        map.absorb_estimates(t_base + 1_000, chunk);
    }
    let merge_rate = estimates.len() as f64 / start.elapsed().as_secs_f64();
    let stats = map.stats();
    println!(
        "  ingest: build {:.2} Mest/s ({stored} stored, {} shards, {} buckets), re-observe {:.2} Mest/s",
        build_rate / 1e6,
        map.shard_count(),
        stats.buckets,
        merge_rate / 1e6,
    );

    // --- Lookups: ingest off, then with a concurrent writer -----------
    let centers = query_centers(roads, slots, 65_536);
    run_lookups(&map, &centers, batches / 8); // warm-up
    let (off_rate, off_p50, off_p99) = run_lookups(&map, &centers, batches);
    println!(
        "  lookups (ingest off): {:.2} M/s, p50 {off_p50:.3} µs, p99 {off_p99:.3} µs",
        off_rate / 1e6
    );

    // The writer is a fixed-rate load generator: it re-ingests the
    // estimate stream in chunks paced to INGEST_TARGET_PER_SEC (a heavy
    // but realistic arrival rate — a fleet round delivering a quarter
    // million estimates every second), sleeping off the slack between
    // chunks exactly like a transport draining round closes would.
    const INGEST_TARGET_PER_SEC: f64 = 250_000.0;
    let stop = AtomicBool::new(false);
    let passes = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);
    let (on_rate, on_p50, on_p99, concurrent_ingest_rate) = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut pass = 0u64;
            let start = Instant::now();
            'outer: loop {
                pass += 1;
                let now = t_base + 2_000 + pass * 1_000;
                for chunk in estimates.chunks(16_384) {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    map.absorb_estimates(now, chunk);
                    let total = ingested.fetch_add(chunk.len() as u64, Ordering::Relaxed)
                        + chunk.len() as u64;
                    let due = total as f64 / INGEST_TARGET_PER_SEC;
                    let elapsed = start.elapsed().as_secs_f64();
                    if due > elapsed {
                        std::thread::sleep(std::time::Duration::from_secs_f64(due - elapsed));
                    }
                }
                passes.store(pass, Ordering::Relaxed);
            }
            ingested.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
        });
        let (rate, p50, p99) = run_lookups(&map, &centers, batches);
        stop.store(true, Ordering::Relaxed);
        let ingest_rate = writer.join().expect("writer thread");
        (rate, p50, p99, ingest_rate)
    });
    let p99_ratio = on_p99 / off_p99.max(1e-9);
    println!(
        "  lookups (ingest on):  {:.2} M/s, p50 {on_p50:.3} µs, p99 {on_p99:.3} µs ({p99_ratio:.2}x off), writer {:.2} Mest/s",
        on_rate / 1e6,
        concurrent_ingest_rate / 1e6,
    );

    // --- Eviction: refresh half, sweep the rest -----------------------
    let last_pass = passes.load(Ordering::Relaxed) + 2;
    let t_refresh = t_base + 2_000 + last_pass * 1_000 + ttl / 2;
    let refreshed: Vec<ApEstimate> = estimates.iter().step_by(2).copied().collect();
    for chunk in refreshed.chunks(8_192) {
        map.absorb_estimates(t_refresh, chunk);
    }
    let before = map.len();
    let start = Instant::now();
    let sweep = map.evict(t_refresh + ttl);
    let sweep_secs = start.elapsed().as_secs_f64();
    let sweep_rate = before as f64 / sweep_secs;
    println!(
        "  eviction: {} of {before} expired in {sweep_secs:.3} s ({:.2} Mentries/s), {} remain",
        sweep.expired,
        sweep_rate / 1e6,
        sweep.remaining,
    );

    // --- Handoff: map-fed BRR vs static list --------------------------
    let brr_identical = brr_identity_holds();
    println!("  handoff: map-fed BRR identical to static baseline: {brr_identical}");

    let min_stored = if smoke { 200_000 } else { 1_000_000 };
    assert!(
        stored >= min_stored,
        "stored {stored} APs, need ≥ {min_stored}"
    );
    assert!(
        on_rate >= 1_000_000.0,
        "sustained {on_rate:.0} lookups/s under ingest missed the ≥1M target"
    );
    assert!(
        on_p99 <= 10.0,
        "lookup p99 {on_p99:.3} µs under ingest missed the ≤10 µs target"
    );
    assert!(
        p99_ratio <= 2.0,
        "p99 ratio {p99_ratio:.2}x missed the ≤2x ingest-on/off target"
    );
    assert!(brr_identical, "map-fed BRR diverged from the static list");

    let json = format!(
        "{{\n  \"bench\": \"ap_map\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {}, \"smoke\": {smoke}}},\n  \"map\": {{\n    \"stored_aps\": {stored},\n    \"shards\": {},\n    \"buckets\": {},\n    \"bucket_edge_m\": {:.1},\n    \"world_edge_m\": {WORLD_M:.0},\n    \"lookup_radius_m\": {LOOKUP_RADIUS_M:.0}\n  }},\n  \"ingest\": {{\n    \"build_estimates_per_sec\": {build_rate:.0},\n    \"reobserve_estimates_per_sec\": {merge_rate:.0},\n    \"concurrent_ingest_estimates_per_sec\": {concurrent_ingest_rate:.0},\n    \"concurrent_ingest_target_per_sec\": 250000\n  }},\n  \"lookup\": {{\n    \"latency_batch\": {LAT_BATCH},\n    \"batches\": {batches},\n    \"lookups_per_sec_ingest_off\": {off_rate:.0},\n    \"p50_us_ingest_off\": {off_p50:.4},\n    \"p99_us_ingest_off\": {off_p99:.4},\n    \"lookups_per_sec_with_ingest\": {on_rate:.0},\n    \"p50_us_with_ingest\": {on_p50:.4},\n    \"p99_us_with_ingest\": {on_p99:.4},\n    \"p99_ratio_on_off\": {p99_ratio:.4},\n    \"target_lookups_per_sec_with_ingest\": 1000000,\n    \"target_p99_us_with_ingest\": 10.0,\n    \"target_p99_ratio_on_off\": 2.0\n  }},\n  \"eviction\": {{\n    \"entries_before\": {before},\n    \"expired\": {},\n    \"transient\": {},\n    \"remaining\": {},\n    \"sweep_secs\": {sweep_secs:.4},\n    \"sweep_entries_per_sec\": {sweep_rate:.0}\n  }},\n  \"handoff\": {{\"brr_identical\": {brr_identical}}},\n  \"notes\": \"The map stores a deterministic metro-scale road grid of consolidated AP entries (merge radius keeps neighbors distinct at the grid spacing). Lookups are allocation-free count_near radius probes along drive-shaped query streams (256 consecutive jittered positions per road drive, drives starting on random roads — the spatial pattern of user-vehicles polling along their routes); the read path clones each touched shard's published generation Arc under an O(1) read lock, so a concurrent writer re-ingesting the full estimate stream (merge-heavy consolidation plus generation republish per batch) never blocks readers. The concurrent writer is paced at a fixed 250k-estimates/s arrival rate — a load generator modeling transports draining round closes — with full-speed ingest throughput reported separately by the build and re-observe rows. Latency is sampled per 64-lookup batch — one clock read per batch — so on a single-core box a scheduler preemption poisons well under 1% of samples and the p99 reflects the read path, not the timeslice. The eviction sweep refreshes every other estimate at a late timestamp and then evicts at refresh+TTL, expiring exactly the unrefreshed entries in one full-map generation rebuild. brr_identical re-runs the VanLan BRR policy fed from the map's corridor query (aps_ahead) against the canonically-ordered static ground-truth list on the same seed and requires identical connectivity traces end to end.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        map.shard_count(),
        stats.buckets,
        bucket_edge,
        sweep.expired,
        sweep.transient,
        sweep.remaining,
    );
    let out_path = bench_out_path("BENCH_map.json");
    std::fs::write(&out_path, &json).expect("write BENCH_map.json");
    println!("wrote {}", out_path.display());
}
