//! Observability overhead bench: what instrumentation costs the hot
//! path, measured against the contract in `crowdwifi-obs`'s docs.
//!
//! Three measurements:
//!
//! 1. **Pipeline overhead** — [`OnlineCs::run`] over a seeded UCI drive
//!    with the default no-op recorder (global registry disabled) vs an
//!    enabled local registry wired through
//!    [`OnlineCs::with_registry`]. Budget: enabled recording stays
//!    under 2% of round time; the disabled path is a relaxed atomic
//!    load per record call.
//! 2. **Recorder micro-costs** — nanoseconds per `Counter::inc` against
//!    a disabled and an enabled registry (pre-registered handle, i.e.
//!    the pipeline's hot-path shape).
//! 3. **Snapshot sanity** — the enabled run's counters, embedded in the
//!    JSON so a regression in instrumentation coverage (metrics
//!    silently vanishing) is visible in the artifact diff.
//!
//! Compile-out mode (`--no-default-features` on `crowdwifi-obs`) is by
//! construction 0%: recording bodies are empty and the disabled-path
//! load disappears too. That configuration is covered by the tier-1
//! no-default-features check rather than measured here.
//!
//! Writes `BENCH_obs.json` at the repo root (or `$BENCH_OUT_DIR`).
//! `BENCH_SMOKE=1` cuts repetitions for CI.
//! Run with `cargo run -p crowdwifi-bench --release --bin obs_overhead`.

use crowdwifi_bench::{bench_out_path, smoke_mode};
use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
use crowdwifi_core::window::WindowConfig;
use crowdwifi_geo::Grid;
use crowdwifi_obs::Registry;
use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per call of `f` over `reps` calls (caller warms up).
fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Nanoseconds per `Counter::inc` against `reg`.
fn counter_ns(reg: &Registry, iters: u64) -> f64 {
    let c = reg.counter("bench.spin");
    let start = Instant::now();
    for _ in 0..iters {
        black_box(&c).inc();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    if !crowdwifi_obs::RECORDING {
        eprintln!("recording compiled out; nothing to measure");
        return;
    }
    let smoke = smoke_mode();
    // The global registry backs the uninstrumented baseline: explicitly
    // disabled, whatever CROWDWIFI_OBS says, so the no-op path is what
    // gets measured.
    crowdwifi_obs::global().set_enabled(false);

    let scenario = Scenario::uci_campus();
    let grid = Grid::new(scenario.area(), 8.0).expect("static grid");
    let scenario = scenario.snapped_to_grid(&grid);
    let route = mobility::uci_loop_route_with(1, 25.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let readings =
        RssCollector::new(&scenario).collect_along(&route, route.duration() / 361.0, &mut rng);
    let model = *scenario.pathloss();
    let cfg = OnlineCsConfig {
        window: WindowConfig {
            size: 40,
            step: 10,
            ttl: f64::INFINITY,
        },
        lattice: 8.0,
        sigma_factor: 0.04,
        merge_radius: 20.0,
        threads: 1,
        ..OnlineCsConfig::default()
    };

    let reps = if smoke { 2 } else { 6 };
    println!(
        "pipeline overhead: {} readings, {} reps{} ...",
        readings.len(),
        reps,
        if smoke { " (smoke)" } else { "" }
    );

    let plain = OnlineCs::new(cfg, model).expect("valid config");
    let reg = Registry::new();
    let instrumented = OnlineCs::new(cfg, model)
        .expect("valid config")
        .with_registry(&reg);

    let baseline = plain.run(&readings).expect("warmup plain");
    let check = instrumented.run(&readings).expect("warmup instrumented");
    assert_eq!(
        baseline.len(),
        check.len(),
        "instrumentation changed the estimates"
    );

    let plain_secs = time(|| drop(plain.run(&readings).expect("plain run")), reps);
    let obs_secs = time(
        || drop(instrumented.run(&readings).expect("instrumented run")),
        reps,
    );
    let overhead_pct = (obs_secs / plain_secs - 1.0) * 100.0;
    println!(
        "  no-op recorder {:.1} ms vs enabled registry {:.1} ms per run: {overhead_pct:+.2}% overhead",
        plain_secs * 1e3,
        obs_secs * 1e3
    );

    let micro_iters = if smoke { 1_000_000 } else { 5_000_000 };
    let disabled_ns = counter_ns(&Registry::disabled(), micro_iters);
    let enabled_ns = counter_ns(&Registry::new(), micro_iters);
    println!(
        "  counter inc: disabled {disabled_ns:.2} ns, enabled {enabled_ns:.2} ns ({micro_iters} iters)"
    );

    // The warmup + timed runs all recorded into `reg`; embed the
    // deterministic counters so coverage regressions show in the diff.
    let snap = reg.snapshot();
    let counters_json: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"schema_version\": 7,\n  \"machine\": {{\"physical_parallelism\": {}, \"smoke\": {smoke}}},\n  \"pipeline\": {{\"readings\": {}, \"reps\": {reps}, \"noop_ms\": {:.3}, \"enabled_ms\": {:.3}, \"overhead_pct\": {overhead_pct:.3}, \"budget_pct\": 2.0}},\n  \"counter_inc\": {{\"iters\": {micro_iters}, \"disabled_ns\": {disabled_ns:.3}, \"enabled_ns\": {enabled_ns:.3}}},\n  \"pipeline_counters\": {{\n{}\n  }},\n  \"notes\": \"overhead_pct compares OnlineCs::run with the default disabled global registry against an enabled local registry on one core; single-digit-millisecond runs make the percentage noisy, so CI gates it loosely while the budget stays 2%. The compile-out configuration (--no-default-features) removes recording entirely and is covered by the tier-1 gate, not measured here.\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        readings.len(),
        plain_secs * 1e3,
        obs_secs * 1e3,
        counters_json.join(",\n"),
    );
    let out_path = bench_out_path("BENCH_obs.json");
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {}", out_path.display());
}
