//! Fig. 10 — AP lookup and handoff behavior on the VanLan-like trace.
//!
//! Paper setup (§6.3): 11 APs over 828 × 559 m, two vans at 25 mph,
//! 500-byte beacons every 100 ms, 12544 logged RSS rows of which 300
//! are used for lookup. Paper result: average localization error
//! 2.0658 m; AllAP suffers far fewer interruptions than BRR, and at the
//! median session length the probability of a longer session is about
//! seven times higher under AllAP.

use crowdwifi_bench::{fmt_opt, lookup_errors, print_table, Row};
use crowdwifi_core::pipeline::OnlineCsConfig;
use crowdwifi_geo::Point;
use crowdwifi_handoff::connectivity::{simulate, ConnectivityConfig, Policy};
use crowdwifi_handoff::db::ApDatabase;
use crowdwifi_handoff::session::{
    median_session_length, prob_longer_than, session_lengths, time_weighted_cdf,
};
use crowdwifi_vanet_sim::mobility::vanlan_round;
use crowdwifi_vanet_sim::vanlan::{VanLanConfig, VanLanTrace};
use crowdwifi_vanet_sim::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let scenario = Scenario::vanlan();
    let truth = scenario.ap_positions();

    // Generate the trace and run lookup on 300 subsampled rows of the
    // crowd-vehicle's log (van 0 — the paper speaks of "the moving
    // crowd-vehicle", singular; mixing both vans' interleaved logs into
    // one sliding window would shuffle positions incoherently).
    let trace = VanLanTrace::generate(VanLanConfig::default(), &mut rng);
    println!(
        "VanLan-like trace: {} RSS rows logged by {} vans (paper: 12544)",
        trace.len(),
        2
    );
    let van0 = trace.van_readings(0);
    let step = (van0.len() / 300).max(1);
    let readings: Vec<_> = van0.iter().step_by(step).take(300).copied().collect();

    // Full-stack ensemble estimate (see crowdwifi_core::pipeline::ensemble_run).
    let config = OnlineCsConfig {
        lattice: 10.0,
        radio_range: 150.0,
        merge_radius: 25.0,
        sigma_factor: 0.05,
        ..OnlineCsConfig::default()
    };
    let est: Vec<Point> =
        crowdwifi_core::pipeline::ensemble_run(&readings, config, *scenario.pathloss(), 11)
            .expect("ensemble run")
            .iter()
            .map(|e| e.position)
            .collect();
    let e = lookup_errors(&truth, &est, 10.0);
    println!(
        "lookup on 300 rows: k_est = {} (k = 11), avg error = {} m (paper: 2.0658 m)",
        e.estimated_k,
        fmt_opt(e.mean_distance_m, 3)
    );

    // Handoff comparison using the crowdsensed DB.
    let db = ApDatabase::new(est);
    let route = vanlan_round(0.0);
    let cfg = ConnectivityConfig::default();
    let mut all_lengths = Vec::new();
    let mut brr_lengths = Vec::new();
    let mut rows = Vec::new();
    for policy in [Policy::Brr, Policy::AllAp] {
        let mut interruptions = 0usize;
        let mut connected = 0.0;
        let mut lengths = Vec::new();
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(200 + seed);
            let trace = simulate(policy, &scenario, &route, &db, cfg, &mut rng)
                .expect("valid connectivity config");
            interruptions += trace.interruptions();
            connected += trace.connectivity_fraction();
            lengths.extend(session_lengths(&trace));
        }
        rows.push(Row {
            cells: vec![
                policy.to_string(),
                format!("{:.1}%", connected / 5.0 * 100.0),
                format!("{:.1}", interruptions as f64 / 5.0),
                median_session_length(&lengths).map_or("-".to_string(), |l| l.to_string()),
            ],
        });
        match policy {
            Policy::Brr => brr_lengths = lengths,
            Policy::AllAp => all_lengths = lengths,
        }
    }
    print_table(
        "Fig. 10(a,b): connectivity per policy (5 van rounds)",
        &[
            "policy",
            "connected",
            "interruptions/round",
            "median_session_s",
        ],
        &rows,
    );

    // Fig. 10(c): session-length CDF comparison at the BRR median.
    let mut cdf_rows = Vec::new();
    for len in [5usize, 10, 20, 40, 80, 160] {
        cdf_rows.push(Row {
            cells: vec![
                len.to_string(),
                format!("{:.2}", 1.0 - prob_longer_than(&brr_lengths, len)),
                format!("{:.2}", 1.0 - prob_longer_than(&all_lengths, len)),
            ],
        });
    }
    print_table(
        "Fig. 10(c): time-weighted CDF of session length",
        &["length_s", "BRR", "AllAP"],
        &cdf_rows,
    );
    if let Some(median) = median_session_length(&brr_lengths) {
        let p_brr = prob_longer_than(&brr_lengths, median);
        let p_all = prob_longer_than(&all_lengths, median);
        println!(
            "\nat the BRR median ({median} s): P[longer] BRR = {p_brr:.3}, AllAP = {p_all:.3} (ratio {:.1}x; paper ~7x)",
            if p_brr > 0.0 { p_all / p_brr } else { f64::INFINITY }
        );
    }
    let _ = time_weighted_cdf(&all_lengths);
}
