//! Shared harness code for the experiment drivers (`src/bin/fig*.rs`)
//! and the Criterion benches.
//!
//! Every figure of the paper's evaluation (§6) has a binary that
//! regenerates its series:
//!
//! | binary | paper figure |
//! |--------|--------------|
//! | `fig5_trajectory` | Fig. 5 — UCI lookup at 60/120/180 points |
//! | `fig6_lattice` | Fig. 6 — localization error vs lattice size |
//! | `fig7_crowdsourcing` | Fig. 7 — bit-error vs ℓ and γ |
//! | `fig8_comparison` | Fig. 8 — vs sparsity and measurement count |
//! | `fig9_testbed` | Fig. 9 — testbed drives + crowdsourced fusion |
//! | `fig10_vanlan` | Fig. 10 — BRR/AllAP connectivity + session CDF |
//! | `fig11_transfers` | Fig. 11 — transfer time/throughput vs errors |
//!
//! Run one with `cargo run -p crowdwifi-bench --release --bin <name>`.

use crowdwifi_core::metrics::{counting_error, localization_error, mean_distance_error};
use crowdwifi_geo::Point;

/// One row of a printed experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Cell values, first column is the x value.
    pub cells: Vec<String>,
}

/// Prints a fixed-width table with a title and column headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.cells.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Summary statistics of one lookup run against ground truth.
#[derive(Debug, Clone, Copy)]
pub struct LookupErrors {
    /// `|k̂ − k| / k`.
    pub counting: f64,
    /// Paper-normalized localization error (fraction of a lattice).
    pub localization: Option<f64>,
    /// Mean matched distance in meters.
    pub mean_distance_m: Option<f64>,
    /// Estimated AP count.
    pub estimated_k: usize,
}

/// Computes the paper's three error numbers for one estimate set.
pub fn lookup_errors(truth: &[Point], estimated: &[Point], lattice: f64) -> LookupErrors {
    LookupErrors {
        counting: counting_error(truth.len(), estimated.len()),
        localization: localization_error(truth, estimated, lattice),
        mean_distance_m: mean_distance_error(truth, estimated),
        estimated_k: estimated.len(),
    }
}

/// Formats an optional metric for table cells.
pub fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

/// log10 of an error rate, floored so zero errors stay plottable
/// (Fig. 7 plots log error; a perfect decode maps to the floor).
pub fn log10_error(rate: f64, floor: f64) -> f64 {
    rate.max(floor).log10()
}

/// Whether benches run in reduced smoke mode (`BENCH_SMOKE=1`): the
/// same measurements with far fewer repetitions, cheap enough for CI's
/// regression gate. Absolute numbers are noisier; ratios still read.
pub fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Where a bench writes its JSON artifact: `$BENCH_OUT_DIR/<file>` when
/// the override is set (CI points it at an artifact directory),
/// otherwise `<repo root>/<file>` (committed reference numbers).
pub fn bench_out_path(file: &str) -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) => {
            let _ = std::fs::create_dir_all(&dir);
            std::path::Path::new(&dir).join(file)
        }
        None => std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(file),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_errors_basic() {
        let truth = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let est = [Point::new(1.0, 0.0)];
        let e = lookup_errors(&truth, &est, 8.0);
        assert_eq!(e.counting, 0.5);
        assert_eq!(e.estimated_k, 1);
        assert!((e.mean_distance_m.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_error_floors() {
        assert_eq!(log10_error(0.0, 1e-4), -4.0);
        assert_eq!(log10_error(0.1, 1e-4), -1.0);
    }

    #[test]
    fn fmt_opt_formats() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
