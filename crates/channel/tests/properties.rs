//! Property-based tests for the channel substrate.

use crowdwifi_channel::bic::bic;
use crowdwifi_channel::noise::{add_awgn, gaussian, ShadowFading};
use crowdwifi_channel::{GmmModel, PathLossModel};
use crowdwifi_geo::Point;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn model() -> PathLossModel {
    PathLossModel::uci_campus()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rss_monotonically_decreases(d1 in 1.0..500.0f64, d2 in 1.0..500.0f64) {
        let m = model();
        if d1 < d2 {
            prop_assert!(m.mean_rss(d1) >= m.mean_rss(d2));
        }
    }

    #[test]
    fn inverse_model_roundtrips(d in 1.0..500.0f64) {
        let m = model();
        let back = m.distance_for_rss(m.mean_rss(d));
        prop_assert!((back - d).abs() < 1e-6 * d.max(1.0));
    }

    #[test]
    fn rss_is_finite_everywhere(d in 0.0..10_000.0f64) {
        prop_assert!(model().mean_rss(d).is_finite());
    }

    #[test]
    fn shadow_fading_scales_with_sigma(sigma in 0.1..8.0f64, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fading = ShadowFading::new(sigma);
        let samples: Vec<f64> = (0..500).map(|_| fading.sample(&mut rng)).collect();
        let var = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
        // Sample deviation within a factor of 2 of sigma (loose but
        // catches unit errors).
        prop_assert!((var.sqrt() / sigma) > 0.5 && (var.sqrt() / sigma) < 2.0);
    }

    #[test]
    fn gaussian_respects_zero_sigma(mean in -50.0..50.0f64, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        prop_assert_eq!(gaussian(&mut rng, mean, 0.0), mean);
    }

    #[test]
    fn awgn_snr_is_close_to_target(snr_db in 10.0..40.0f64, seed in 0u64..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let clean: Vec<f64> = (0..2000).map(|i| -60.0 + (i % 13) as f64).collect();
        let mut noisy = clean.clone();
        add_awgn(&mut rng, &mut noisy, snr_db);
        let sp: f64 = clean.iter().map(|x| x * x).sum();
        let np: f64 = clean.iter().zip(&noisy).map(|(c, n)| (n - c) * (n - c)).sum();
        let measured = 10.0 * (sp / np).log10();
        prop_assert!((measured - snr_db).abs() < 2.0, "target {snr_db} measured {measured}");
    }

    #[test]
    fn gmm_weights_form_a_distribution(
        px in -100.0..100.0f64,
        py in -100.0..100.0f64,
        n_aps in 1usize..6,
    ) {
        let gmm = GmmModel::new(model(), 0.05).unwrap();
        let aps: Vec<Point> = (0..n_aps)
            .map(|i| Point::new(30.0 * i as f64, 40.0))
            .collect();
        let w = gmm.weights(Point::new(px, py), &aps);
        prop_assert_eq!(w.len(), n_aps);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // The nearest AP never has the smallest weight.
        let nearest = (0..n_aps)
            .min_by(|&a, &b| {
                Point::new(px, py).distance(aps[a])
                    .partial_cmp(&Point::new(px, py).distance(aps[b])).unwrap()
            })
            .unwrap();
        let wmax = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((w[nearest] - wmax).abs() < 1e-9);
    }

    #[test]
    fn likelihood_peaks_at_model_prediction(d in 5.0..90.0f64, offset in 3.0..30.0f64) {
        let gmm = GmmModel::new(model(), 0.05).unwrap();
        let ap = Point::new(0.0, 0.0);
        let here = Point::new(d, 0.0);
        let mu = model().mean_rss(d);
        let at_peak = gmm.log_likelihood(&[(here, mu)], &[ap]);
        let off_peak = gmm.log_likelihood(&[(here, mu - offset)], &[ap]);
        prop_assert!(at_peak >= off_peak);
    }

    #[test]
    fn hard_likelihood_never_exceeds_mixture(
        rss in -90.0..-30.0f64,
        px in 0.0..100.0f64,
    ) {
        let gmm = GmmModel::new(model(), 0.05).unwrap();
        let aps = [Point::new(20.0, 20.0), Point::new(80.0, 20.0)];
        let data = [(Point::new(px, 0.0), rss)];
        // max over components <= log-sum over components.
        prop_assert!(gmm.hard_log_likelihood(&data, &aps) <= gmm.log_likelihood(&data, &aps) + 1e-9);
    }

    #[test]
    fn bic_monotone_in_likelihood_and_penalty(
        ll in -500.0..0.0f64,
        delta in 0.1..50.0f64,
        v in 1usize..20,
        m in 2usize..500,
    ) {
        prop_assert!(bic(ll + delta, v, m) > bic(ll, v, m));
        prop_assert!(bic(ll, v, m) > bic(ll, v + 1, m));
    }
}
