//! Stochastic channel impairments: shadow fading and measurement noise.
//!
//! The paper's channel adds log-normal shadow fading `S` (σ = 0.5 dB in
//! the UCI simulation) to every reading, and the evaluation additionally
//! injects white Gaussian noise on the measurement vector at a target
//! SNR (30 dB in §6.1).

use rand::Rng;

/// Samples a zero-mean Gaussian via the Box–Muller transform.
///
/// `rand` alone (without `rand_distr`) has no normal distribution; the
/// transform is exact and needs only two uniforms.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if std_dev == 0.0 {
        return mean;
    }
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal shadow fading: a zero-mean Gaussian in the dB domain with
/// standard deviation `sigma_db`.
///
/// # Example
///
/// ```
/// use crowdwifi_channel::noise::ShadowFading;
/// use rand::SeedableRng;
///
/// let fading = ShadowFading::new(0.5);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let s = fading.sample(&mut rng);
/// assert!(s.abs() < 5.0); // 10σ outliers are essentially impossible
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowFading {
    sigma_db: f64,
}

impl ShadowFading {
    /// Creates a fading source with the given dB standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or non-finite.
    pub fn new(sigma_db: f64) -> Self {
        assert!(
            sigma_db >= 0.0 && sigma_db.is_finite(),
            "sigma_db must be a non-negative finite value"
        );
        ShadowFading { sigma_db }
    }

    /// A fading source that never perturbs (σ = 0).
    pub fn none() -> Self {
        ShadowFading { sigma_db: 0.0 }
    }

    /// The dB standard deviation.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Draws one fading value in dB.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, 0.0, self.sigma_db)
    }
}

/// Adds white Gaussian noise to `signal` in place such that the resulting
/// signal-to-noise ratio is `snr_db` (power ratio of the *given* signal
/// to the injected noise) — the `N(0, σ²)` perturbation of §6.1 with
/// SNR = 30 dB.
///
/// A zero signal is left untouched (SNR is undefined).
pub fn add_awgn<R: Rng + ?Sized>(rng: &mut R, signal: &mut [f64], snr_db: f64) {
    if signal.is_empty() {
        return;
    }
    let power: f64 = signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64;
    if power == 0.0 {
        return;
    }
    let noise_power = power / 10f64.powf(snr_db / 10.0);
    let sigma = noise_power.sqrt();
    for x in signal.iter_mut() {
        *x += gaussian(rng, 0.0, sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(gaussian(&mut rng, 5.0, 0.0), 5.0);
        assert_eq!(ShadowFading::none().sample(&mut rng), 0.0);
    }

    #[test]
    fn awgn_hits_target_snr() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let clean: Vec<f64> = (0..5000).map(|i| (-60.0) + (i % 17) as f64).collect();
        let mut noisy = clean.clone();
        add_awgn(&mut rng, &mut noisy, 30.0);
        let sig_p: f64 = clean.iter().map(|x| x * x).sum::<f64>() / clean.len() as f64;
        let noise_p: f64 = clean
            .iter()
            .zip(&noisy)
            .map(|(c, n)| (n - c).powi(2))
            .sum::<f64>()
            / clean.len() as f64;
        let snr_db = 10.0 * (sig_p / noise_p).log10();
        assert!((snr_db - 30.0).abs() < 1.0, "measured SNR {snr_db} dB");
    }

    #[test]
    fn awgn_ignores_degenerate_signals() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut empty: Vec<f64> = vec![];
        add_awgn(&mut rng, &mut empty, 30.0);
        let mut zeros = vec![0.0; 4];
        add_awgn(&mut rng, &mut zeros, 30.0);
        assert_eq!(zeros, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        ShadowFading::new(-1.0);
    }
}
