//! RF channel substrate for the CrowdWiFi reproduction.
//!
//! Implements §4.2.1 of the paper:
//!
//! * [`pathloss`] — the log-distance path-loss model
//!   `r = t − l₀ − 10γ·log₁₀(d/d₀) − S`,
//! * [`noise`] — log-normal shadow fading `S` and additive white Gaussian
//!   measurement noise at a chosen SNR,
//! * [`gmm`] — the Gaussian-mixture likelihood of an RSS series given a
//!   candidate AP constellation (Eq. 1), with the paper's myopic
//!   distance-softmax weights,
//! * [`bic`] — the Bayesian information criterion used for model
//!   selection over the AP count `K` (§4.3.5),
//! * [`reading`] — the `(position, RSS, time)` sample type exchanged
//!   between the simulator, the pipeline and the middleware.
//!
//! # Example
//!
//! ```
//! use crowdwifi_channel::pathloss::PathLossModel;
//!
//! // UCI campus simulation parameters from §6.1.
//! let model = PathLossModel::new(20.0, 45.6, 1.76, 1.0)?;
//! let rss_near = model.mean_rss(10.0);
//! let rss_far = model.mean_rss(100.0);
//! assert!(rss_near > rss_far);
//! # Ok::<(), crowdwifi_channel::ChannelError>(())
//! ```

#![deny(missing_docs)]
// `!(x > 0.0)` style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly what parameter
// validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bic;
pub mod gmm;
pub mod noise;
pub mod pathloss;
pub mod reading;

pub use gmm::GmmModel;
pub use pathloss::PathLossModel;
pub use reading::{ApId, RssReading};

/// Errors produced by channel-model constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A model parameter is out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::InvalidParameter { name, value } => {
                write!(f, "invalid channel parameter `{name}` = {value}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// Convenience alias for channel results.
pub type Result<T> = std::result::Result<T, ChannelError>;
