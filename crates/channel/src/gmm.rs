//! Gaussian-mixture likelihood of an RSS series (Eq. 1 of the paper).
//!
//! Each RSS measurement `rᵢ` may originate from any of the `K` candidate
//! APs; the mixture weight of AP `j` for measurement `i` is the myopic
//! softmax `w_ij = e^{−d_ij} / Σ_j' e^{−d_ij'}`, the component mean
//! `μ_ij` comes from the path-loss model and the component deviation is
//! `σ_ij = b·|μ_ij|`.

use crate::pathloss::PathLossModel;
use crate::{ChannelError, Result};
use crowdwifi_geo::Point;

/// Gaussian-mixture RSS likelihood model.
///
/// # Example
///
/// ```
/// use crowdwifi_channel::{GmmModel, PathLossModel};
/// use crowdwifi_geo::Point;
///
/// let gmm = GmmModel::new(PathLossModel::uci_campus(), 0.05)?;
/// let ap = Point::new(0.0, 0.0);
/// let here = Point::new(10.0, 0.0);
/// let expected = PathLossModel::uci_campus().mean_rss(10.0);
/// // The likelihood peaks at the model-predicted RSS.
/// let at_peak = gmm.log_likelihood(&[(here, expected)], &[ap]);
/// let off_peak = gmm.log_likelihood(&[(here, expected - 20.0)], &[ap]);
/// assert!(at_peak > off_peak);
/// # Ok::<(), crowdwifi_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmModel {
    pathloss: PathLossModel,
    sigma_factor: f64,
}

impl GmmModel {
    /// Creates a mixture model; `sigma_factor` is the paper's constant
    /// `b` in `σ_ij = b·μ_ij` (we take `b·|μ_ij|` since dBm means are
    /// negative).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidParameter`] unless
    /// `sigma_factor > 0` and finite.
    pub fn new(pathloss: PathLossModel, sigma_factor: f64) -> Result<Self> {
        if !(sigma_factor > 0.0) || !sigma_factor.is_finite() {
            return Err(ChannelError::InvalidParameter {
                name: "sigma_factor",
                value: sigma_factor,
            });
        }
        Ok(GmmModel {
            pathloss,
            sigma_factor,
        })
    }

    /// The underlying path-loss model.
    pub fn pathloss(&self) -> &PathLossModel {
        &self.pathloss
    }

    /// The σ scale factor `b`.
    pub fn sigma_factor(&self) -> f64 {
        self.sigma_factor
    }

    /// Log of Eq. (1): `Σᵢ log Σⱼ w_ij · N(rᵢ; μ_ij, σ_ij²)` for readings
    /// `(collector position, rss_dbm)` against candidate APs `aps`.
    ///
    /// Returns `f64::NEG_INFINITY` when `aps` is empty and `0.0` when
    /// there are no readings (empty product).
    pub fn log_likelihood(&self, readings: &[(Point, f64)], aps: &[Point]) -> f64 {
        if readings.is_empty() {
            return 0.0;
        }
        if aps.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut total = 0.0;
        for &(pos, rss) in readings {
            let dists: Vec<f64> = aps.iter().map(|ap| pos.distance(*ap)).collect();
            // Myopic softmax weights over −d_ij (max-subtracted for
            // numerical stability; the normalization cancels the shift).
            let dmin = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut weights: Vec<f64> = dists.iter().map(|d| (-(d - dmin)).exp()).collect();
            let wsum: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= wsum;
            }

            // Mixture density via log-sum-exp.
            let mut log_terms: Vec<f64> = Vec::with_capacity(aps.len());
            for (j, &d) in dists.iter().enumerate() {
                let mu = self.pathloss.mean_rss(d);
                let sigma = (self.sigma_factor * mu.abs()).max(1e-6);
                let z = (rss - mu) / sigma;
                let log_pdf = -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
                if weights[j] > 0.0 {
                    log_terms.push(weights[j].ln() + log_pdf);
                }
            }
            let m = log_terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + log_terms.iter().map(|t| (t - m).exp()).sum::<f64>().ln();
            total += lse;
        }
        total
    }

    /// Hard-assignment ("classification") log-likelihood: each reading
    /// is explained by its single best component,
    /// `Σᵢ max_j [ln w_ij + ln N(rᵢ; μ_ij, σ_ij²)]`.
    ///
    /// More discriminative than the Eq. (1) mixture for *comparing
    /// constellations*: under the mixture, a reading stolen by a wrong
    /// nearby component can still be "explained" through the tiny
    /// residual weight of a far correct component, so ghost APs barely
    /// cost anything. Under hard assignment they pay full price. The
    /// global refinement uses this; the per-round BIC keeps the paper's
    /// mixture.
    pub fn hard_log_likelihood(&self, readings: &[(Point, f64)], aps: &[Point]) -> f64 {
        if readings.is_empty() {
            return 0.0;
        }
        if aps.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut total = 0.0;
        for &(pos, rss) in readings {
            let dists: Vec<f64> = aps.iter().map(|ap| pos.distance(*ap)).collect();
            let dmin = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            let raw: Vec<f64> = dists.iter().map(|d| (-(d - dmin)).exp()).collect();
            let wsum: f64 = raw.iter().sum();
            let mut best = f64::NEG_INFINITY;
            for (j, &d) in dists.iter().enumerate() {
                let w = raw[j] / wsum;
                if w <= 0.0 {
                    continue;
                }
                let mu = self.pathloss.mean_rss(d);
                let sigma = (self.sigma_factor * mu.abs()).max(1e-6);
                let z = (rss - mu) / sigma;
                let log_pdf = -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
                best = best.max(w.ln() + log_pdf);
            }
            total += best;
        }
        total
    }

    /// Precomputes the per-(reading, candidate) factors of
    /// [`GmmModel::hard_log_likelihood`] against a fixed candidate pool,
    /// so a search that scores many *subsets* of the pool (the global
    /// BIC refinement evaluates hundreds of constellations over the same
    /// drive) pays the distance / path-loss / log-density transcendentals
    /// once per pair instead of once per evaluation. Scoring through the
    /// cache is bit-identical to calling `hard_log_likelihood` with the
    /// selected positions in the same order: only set-independent values
    /// are cached, and the set-dependent softmax weights are computed
    /// with exactly the original operations.
    pub fn hard_fit_cache(&self, readings: &[(Point, f64)], pool: &[Point]) -> HardFitCache {
        let k = pool.len();
        let mut dist = Vec::with_capacity(readings.len() * k);
        let mut log_pdf = Vec::with_capacity(readings.len() * k);
        for &(pos, rss) in readings {
            for ap in pool {
                let d = pos.distance(*ap);
                let mu = self.pathloss.mean_rss(d);
                let sigma = (self.sigma_factor * mu.abs()).max(1e-6);
                let z = (rss - mu) / sigma;
                dist.push(d);
                log_pdf.push(-0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln());
            }
        }
        HardFitCache {
            readings: readings.len(),
            k,
            dist,
            log_pdf,
        }
    }

    /// Myopic mixture weights `w_ij` of one reading position against the
    /// candidate APs (exposed for tests and diagnostics).
    pub fn weights(&self, position: Point, aps: &[Point]) -> Vec<f64> {
        if aps.is_empty() {
            return Vec::new();
        }
        let dists: Vec<f64> = aps.iter().map(|ap| position.distance(*ap)).collect();
        let dmin = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        let raw: Vec<f64> = dists.iter().map(|d| (-(d - dmin)).exp()).collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / sum).collect()
    }
}

/// Per-(reading, candidate) factors cached by
/// [`GmmModel::hard_fit_cache`]: the reading–candidate distance and the
/// per-pair log-density `ln N(rss; μ(d), σ(d)²)`. Both depend only on
/// the pair, never on which other candidates are selected, which is what
/// makes subset scoring through the cache bit-identical to the direct
/// evaluation.
#[derive(Debug, Clone)]
pub struct HardFitCache {
    readings: usize,
    k: usize,
    /// Row-major `[reading][candidate]` distances.
    dist: Vec<f64>,
    /// Row-major `[reading][candidate]` log-densities.
    log_pdf: Vec<f64>,
}

impl HardFitCache {
    /// [`GmmModel::hard_log_likelihood`] of the subset `sel` (indices
    /// into the cached pool, in constellation order). Bit-identical to
    /// the direct call with the corresponding positions: the gathered
    /// distance vector, softmax weights and hard-assignment reduction
    /// run the original operations in the original order, only the
    /// per-pair transcendentals come from the cache.
    ///
    /// # Panics
    ///
    /// Panics if any index in `sel` is out of the pool's range.
    pub fn hard_log_likelihood(&self, sel: &[usize]) -> f64 {
        if self.readings == 0 {
            return 0.0;
        }
        if sel.is_empty() {
            return f64::NEG_INFINITY;
        }
        assert!(
            sel.iter().all(|&j| j < self.k),
            "selection index out of pool range"
        );
        let mut dists = vec![0.0_f64; sel.len()];
        let mut raw = vec![0.0_f64; sel.len()];
        let mut total = 0.0;
        for i in 0..self.readings {
            let drow = &self.dist[i * self.k..(i + 1) * self.k];
            let prow = &self.log_pdf[i * self.k..(i + 1) * self.k];
            for (t, &j) in dists.iter_mut().zip(sel) {
                *t = drow[j];
            }
            let dmin = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            for (r, &d) in raw.iter_mut().zip(&dists) {
                *r = (-(d - dmin)).exp();
            }
            let wsum: f64 = raw.iter().sum();
            let mut best = f64::NEG_INFINITY;
            for (jj, &j) in sel.iter().enumerate() {
                let w = raw[jj] / wsum;
                if w <= 0.0 {
                    continue;
                }
                best = best.max(w.ln() + prow[j]);
            }
            total += best;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GmmModel {
        GmmModel::new(PathLossModel::uci_campus(), 0.05).unwrap()
    }

    #[test]
    fn weights_sum_to_one_and_favor_near_ap() {
        let m = model();
        let aps = [Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let w = m.weights(Point::new(10.0, 0.0), &aps);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1], "closer AP must dominate: {w:?}");
        // 90 m difference at e^-d scale: essentially all mass on AP 0.
        assert!(w[0] > 0.999999);
    }

    #[test]
    fn likelihood_prefers_true_constellation() {
        let m = model();
        let true_ap = Point::new(50.0, 20.0);
        // Fading-free readings generated by the true AP.
        let readings: Vec<(Point, f64)> = (0..10)
            .map(|i| {
                let pos = Point::new(10.0 * i as f64, 0.0);
                (pos, m.pathloss().mean_rss(pos.distance(true_ap)))
            })
            .collect();
        let good = m.log_likelihood(&readings, &[true_ap]);
        let bad = m.log_likelihood(&readings, &[Point::new(200.0, 200.0)]);
        assert!(good > bad);
    }

    #[test]
    fn degenerate_inputs() {
        let m = model();
        assert_eq!(m.log_likelihood(&[], &[Point::new(0.0, 0.0)]), 0.0);
        assert_eq!(
            m.log_likelihood(&[(Point::new(0.0, 0.0), -60.0)], &[]),
            f64::NEG_INFINITY
        );
        assert!(m.weights(Point::new(0.0, 0.0), &[]).is_empty());
    }

    #[test]
    fn likelihood_is_finite_for_extreme_rss() {
        let m = model();
        let aps = [Point::new(0.0, 0.0)];
        let ll = m.log_likelihood(&[(Point::new(5.0, 5.0), -200.0)], &aps);
        assert!(ll.is_finite());
    }

    #[test]
    fn rejects_bad_sigma_factor() {
        assert!(GmmModel::new(PathLossModel::uci_campus(), 0.0).is_err());
        assert!(GmmModel::new(PathLossModel::uci_campus(), f64::NAN).is_err());
    }

    #[test]
    fn more_aps_with_identical_position_do_not_change_peak() {
        // Two identical components = one component (weights split).
        let m = model();
        let ap = Point::new(30.0, 0.0);
        let readings = [(Point::new(0.0, 0.0), m.pathloss().mean_rss(30.0))];
        let one = m.log_likelihood(&readings, &[ap]);
        let two = m.log_likelihood(&readings, &[ap, ap]);
        assert!((one - two).abs() < 1e-9);
    }
}
