//! Log-distance path-loss model (§4.2.1, after Rappaport).

use crate::{ChannelError, Result};
use serde::{Deserialize, Serialize};

/// The log-distance path-loss channel
/// `r(d) = t − l₀ − 10·γ·log₁₀(d/d₀)` (shadow fading is added separately
/// by [`crate::noise`]).
///
/// Distances below the reference distance `d₀` are clamped to `d₀`, as is
/// conventional — the model is only calibrated for `d ≥ d₀`.
///
/// # Example
///
/// ```
/// use crowdwifi_channel::PathLossModel;
///
/// let m = PathLossModel::new(20.0, 45.6, 1.76, 1.0)?;
/// // Mean RSS at the reference distance is t − l₀.
/// assert!((m.mean_rss(1.0) - (20.0 - 45.6)).abs() < 1e-12);
/// // Inverse recovers the distance.
/// let d = m.distance_for_rss(m.mean_rss(37.5));
/// assert!((d - 37.5).abs() < 1e-9);
/// # Ok::<(), crowdwifi_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    tx_power_dbm: f64,
    ref_loss_db: f64,
    exponent: f64,
    ref_distance_m: f64,
}

impl PathLossModel {
    /// Creates a model from transmit power `t` (dBm), reference path loss
    /// `l₀` (dB at `d₀`), path-loss exponent `γ` and reference distance
    /// `d₀` (meters).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidParameter`] for non-finite inputs,
    /// non-positive `γ` or non-positive `d₀`.
    pub fn new(
        tx_power_dbm: f64,
        ref_loss_db: f64,
        exponent: f64,
        ref_distance_m: f64,
    ) -> Result<Self> {
        if !tx_power_dbm.is_finite() {
            return Err(ChannelError::InvalidParameter {
                name: "tx_power_dbm",
                value: tx_power_dbm,
            });
        }
        if !ref_loss_db.is_finite() {
            return Err(ChannelError::InvalidParameter {
                name: "ref_loss_db",
                value: ref_loss_db,
            });
        }
        if !(exponent > 0.0) || !exponent.is_finite() {
            return Err(ChannelError::InvalidParameter {
                name: "exponent",
                value: exponent,
            });
        }
        if !(ref_distance_m > 0.0) || !ref_distance_m.is_finite() {
            return Err(ChannelError::InvalidParameter {
                name: "ref_distance_m",
                value: ref_distance_m,
            });
        }
        Ok(PathLossModel {
            tx_power_dbm,
            ref_loss_db,
            exponent,
            ref_distance_m,
        })
    }

    /// The UCI campus simulation channel of §6.1: `l₀ = 45.6` dB at 1 m,
    /// `γ = 1.76`, with a 20 dBm transmitter (typical consumer AP).
    pub fn uci_campus() -> Self {
        PathLossModel::new(20.0, 45.6, 1.76, 1.0).expect("static parameters are valid")
    }

    /// The VanLan-like channel of §6.3: Atheros radios at 26.02 dBm
    /// output power; free-space-like reference loss at 2.4 GHz
    /// (≈40 dB at 1 m) with a denser-campus exponent of 2.6.
    pub fn vanlan() -> Self {
        PathLossModel::new(26.02, 40.0, 2.6, 1.0).expect("static parameters are valid")
    }

    /// Transmit power `t` in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Reference path loss `l₀` in dB.
    pub fn ref_loss_db(&self) -> f64 {
        self.ref_loss_db
    }

    /// Path-loss exponent `γ`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Reference distance `d₀` in meters.
    pub fn ref_distance_m(&self) -> f64 {
        self.ref_distance_m
    }

    /// Mean (fading-free) RSS in dBm at distance `d` meters; `d` is
    /// clamped to the reference distance.
    pub fn mean_rss(&self, d: f64) -> f64 {
        let d = d.max(self.ref_distance_m);
        self.tx_power_dbm
            - self.ref_loss_db
            - 10.0 * self.exponent * (d / self.ref_distance_m).log10()
    }

    /// Inverse model: the distance at which the mean RSS equals
    /// `rss_dbm`. RSS values above the reference-distance RSS map to
    /// `d₀`.
    pub fn distance_for_rss(&self, rss_dbm: f64) -> f64 {
        let exponent_db = (self.tx_power_dbm - self.ref_loss_db - rss_dbm) / (10.0 * self.exponent);
        (self.ref_distance_m * 10f64.powf(exponent_db)).max(self.ref_distance_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rss_decreases_with_distance() {
        let m = PathLossModel::uci_campus();
        let mut prev = f64::INFINITY;
        for d in [1.0, 5.0, 10.0, 50.0, 100.0, 500.0] {
            let r = m.mean_rss(d);
            assert!(r < prev, "RSS must strictly decrease beyond d0");
            prev = r;
        }
    }

    #[test]
    fn clamped_below_reference_distance() {
        let m = PathLossModel::uci_campus();
        assert_eq!(m.mean_rss(0.0), m.mean_rss(1.0));
        assert_eq!(m.mean_rss(0.5), m.mean_rss(1.0));
    }

    #[test]
    fn ten_x_distance_costs_10_gamma_db() {
        let m = PathLossModel::new(0.0, 0.0, 2.0, 1.0).unwrap();
        let delta = m.mean_rss(10.0) - m.mean_rss(100.0);
        assert!((delta - 20.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PathLossModel::new(f64::NAN, 45.0, 2.0, 1.0).is_err());
        assert!(PathLossModel::new(20.0, f64::INFINITY, 2.0, 1.0).is_err());
        assert!(PathLossModel::new(20.0, 45.0, 0.0, 1.0).is_err());
        assert!(PathLossModel::new(20.0, 45.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn presets_have_reported_parameters() {
        let uci = PathLossModel::uci_campus();
        assert_eq!(uci.ref_loss_db(), 45.6);
        assert_eq!(uci.exponent(), 1.76);
        let van = PathLossModel::vanlan();
        assert_eq!(van.tx_power_dbm(), 26.02);
    }

    proptest! {
        #[test]
        fn inverse_roundtrips(d in 1.0..500.0f64) {
            let m = PathLossModel::uci_campus();
            let back = m.distance_for_rss(m.mean_rss(d));
            prop_assert!((back - d).abs() < 1e-6 * d);
        }

        #[test]
        fn inverse_clamps_strong_rss(extra in 0.0..30.0f64) {
            let m = PathLossModel::uci_campus();
            // RSS stronger than physically possible at d0 maps to d0.
            let rss = m.mean_rss(1.0) + extra;
            prop_assert_eq!(m.distance_for_rss(rss + 1.0), 1.0);
        }
    }
}
