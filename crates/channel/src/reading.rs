//! The RSS sample type exchanged across the CrowdWiFi stack.

use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};

/// Identifier of an access point (BSSID stand-in).
///
/// The CrowdWiFi recovery itself is *blind* — it never uses the source —
/// but the simulator tags readings so that baselines which realistically
/// see BSSIDs (Skyhook, MDS) can group by source, and so tests can check
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AP{}", self.0)
    }
}

/// One drive-by RSS measurement: where the vehicle was, what it heard,
/// and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RssReading {
    /// Vehicle (RSS-collector) position when the reading was taken.
    pub position: Point,
    /// Received signal strength in dBm.
    pub rss_dbm: f64,
    /// Seconds since the start of the drive.
    pub time: f64,
    /// Transmitting AP, when known to the *simulator* (see [`ApId`]).
    pub source: Option<ApId>,
}

impl RssReading {
    /// Creates a reading without source attribution (what a blind
    /// collector sees).
    pub fn new(position: Point, rss_dbm: f64, time: f64) -> Self {
        RssReading {
            position,
            rss_dbm,
            time,
            source: None,
        }
    }

    /// Creates a reading tagged with its transmitting AP.
    pub fn with_source(position: Point, rss_dbm: f64, time: f64, source: ApId) -> Self {
        RssReading {
            position,
            rss_dbm,
            time,
            source: Some(source),
        }
    }

    /// Whether the reading is older than `ttl` seconds at time `now`
    /// (§4.3.2: expired readings leave the sliding window).
    pub fn is_expired(&self, now: f64, ttl: f64) -> bool {
        now - self.time > ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_rule() {
        let r = RssReading::new(Point::new(0.0, 0.0), -60.0, 10.0);
        assert!(!r.is_expired(15.0, 10.0));
        assert!(r.is_expired(25.0, 10.0));
        // Exactly at the boundary: not yet expired.
        assert!(!r.is_expired(20.0, 10.0));
    }

    #[test]
    fn source_attribution() {
        let blind = RssReading::new(Point::new(1.0, 2.0), -70.0, 0.0);
        assert_eq!(blind.source, None);
        let tagged = RssReading::with_source(Point::new(1.0, 2.0), -70.0, 0.0, ApId(3));
        assert_eq!(tagged.source, Some(ApId(3)));
        assert_eq!(ApId(3).to_string(), "AP3");
    }
}
