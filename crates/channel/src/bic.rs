//! Bayesian information criterion for AP-count model selection (§4.3.5).

/// The paper's BIC: `2·max log p(R|v) − v·log(m)` where `v` is the number
/// of free parameters and `m` the number of samples.
///
/// Larger is better; CrowdWiFi picks the AP count `K` whose best
/// constellation maximizes this score. For a `K`-AP model `v = 2K` (two
/// coordinates per AP).
///
/// `m = 0` (no data) yields exactly `2·log_likelihood` — the penalty term
/// vanishes, matching the `lim m→1, log m→0` convention and keeping the
/// function total.
///
/// # Example
///
/// ```
/// use crowdwifi_channel::bic::bic;
///
/// // Same fit quality: fewer parameters win.
/// assert!(bic(-10.0, 2, 100) > bic(-10.0, 4, 100));
/// // Much better fit can justify more parameters.
/// assert!(bic(-2.0, 4, 100) > bic(-10.0, 2, 100));
/// ```
pub fn bic(max_log_likelihood: f64, free_params: usize, samples: usize) -> f64 {
    let penalty = if samples == 0 {
        0.0
    } else {
        free_params as f64 * (samples as f64).ln()
    };
    2.0 * max_log_likelihood - penalty
}

/// Free-parameter count for a `K`-AP constellation: `v = 2K`.
pub fn free_params_for_ap_count(k: usize) -> usize {
    2 * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_with_samples_and_params() {
        assert!(bic(0.0, 2, 10) > bic(0.0, 2, 100));
        assert!(bic(0.0, 2, 100) > bic(0.0, 6, 100));
    }

    #[test]
    fn one_sample_has_zero_penalty() {
        // ln(1) = 0.
        assert_eq!(bic(-3.0, 8, 1), -6.0);
    }

    #[test]
    fn zero_samples_is_total() {
        assert_eq!(bic(-3.0, 8, 0), -6.0);
    }

    #[test]
    fn param_counting() {
        assert_eq!(free_params_for_ap_count(0), 0);
        assert_eq!(free_params_for_ap_count(8), 16);
    }
}
