//! Property tests for the planar geohash: encode/decode/neighbor
//! round-trips over randomized worlds, points, and levels.

use crowdwifi_geo::{Point, Rect};
use crowdwifi_geomap::geohash::{World, MAX_LEVEL};
use proptest::prelude::*;

fn world_rect() -> impl Strategy<Value = Rect> {
    (
        -5000.0..5000.0f64,
        -5000.0..5000.0f64,
        10.0..20000.0f64,
        10.0..20000.0f64,
    )
        .prop_map(|(x, y, w, h)| {
            Rect::new(Point::new(x, y), Point::new(x + w, y + h)).expect("valid world")
        })
}

/// A unit-square coordinate pair mapped into a given world later.
fn unit() -> impl Strategy<Value = (f64, f64)> {
    (0.0..1.0f64, 0.0..1.0f64)
}

fn at(world: &Rect, u: (f64, f64)) -> Point {
    Point::new(
        world.min().x + u.0 * world.width(),
        world.min().y + u.1 * world.height(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn encode_lands_in_its_own_cell(area in world_rect(), u in unit(), level in 1u8..=16) {
        let w = World::new(area);
        let p = at(&area, u);
        let cell = w.encode(p, level);
        prop_assert!(w.cell_rect(cell).contains(p));
    }

    #[test]
    fn cell_center_reencodes_to_the_same_cell(area in world_rect(), u in unit(), level in 1u8..=16) {
        let w = World::new(area);
        let cell = w.encode(at(&area, u), level);
        // Decode → center → encode is the identity on cells.
        prop_assert_eq!(w.encode(w.cell_rect(cell).center(), level), cell);
    }

    #[test]
    fn parent_truncation_matches_coarse_encode(
        area in world_rect(),
        u in unit(),
        fine in 2u8..=MAX_LEVEL,
        coarse_off in 1u8..=8,
    ) {
        let w = World::new(area);
        let p = at(&area, u);
        let coarse = fine.saturating_sub(coarse_off).max(1);
        // Truncating a fine code is the same as encoding coarsely.
        prop_assert_eq!(w.encode(p, fine).parent(coarse), w.encode(p, coarse));
    }

    #[test]
    fn neighbors_are_mutual_and_touch(area in world_rect(), u in unit(), level in 1u8..=12) {
        let w = World::new(area);
        let cell = w.encode(at(&area, u), level);
        let rect = w.cell_rect(cell);
        let neighbors = w.neighbors(cell);
        prop_assert!(neighbors.len() <= 8);
        // Allow a 1-ulp-scale gap: cell corners are recomputed per cell
        // and can round apart by a relative epsilon.
        let eps = (rect.width().max(rect.height())) * 1e-9;
        for n in &neighbors {
            // Adjacent cells share at least a corner.
            prop_assert!(w.cell_rect(*n).expanded(eps).intersection(&rect).is_some());
            // The neighbor relation is symmetric.
            prop_assert!(w.neighbors(*n).contains(&cell));
        }
        // Cells away from the world border have the full ring.
        let n_axis = 1u64 << level;
        let margin_x = area.width() / n_axis as f64;
        let margin_y = area.height() / n_axis as f64;
        let p = at(&area, u);
        let interior = p.x >= area.min().x + margin_x
            && p.x < area.max().x - margin_x
            && p.y >= area.min().y + margin_y
            && p.y < area.max().y - margin_y;
        if interior {
            prop_assert_eq!(neighbors.len(), 8);
        }
    }

    #[test]
    fn covering_cells_contain_every_sampled_interior_point(
        area in world_rect(),
        a in unit(),
        b in unit(),
        t in 0.0..1.0f64,
        level in 1u8..=7,
    ) {
        let w = World::new(area);
        let (pa, pb) = (at(&area, a), at(&area, b));
        let query = Rect::bounding(&[pa, pb]).expect("two points");
        let cells = w.cells_covering(query, level);
        prop_assert!(!cells.is_empty());
        // Any point inside the query rect encodes to a covered cell.
        let probe = pa.lerp(pb, t);
        prop_assert!(cells.contains(&w.encode(probe, level)));
        // Covering is tight: every covered cell intersects the query.
        for c in cells {
            prop_assert!(w.cell_rect(c).intersection(&query).is_some());
        }
    }

    #[test]
    fn out_of_world_points_clamp_deterministically(
        area in world_rect(),
        dx in -3.0..3.0f64,
        dy in -3.0..3.0f64,
        level in 1u8..=12,
    ) {
        let w = World::new(area);
        // A point pushed arbitrarily outside encodes like its clamp.
        let outside = Point::new(
            area.min().x + dx * area.width(),
            area.min().y + dy * area.height(),
        );
        let clamped = area.clamp(outside);
        prop_assert_eq!(w.encode(outside, level), w.encode(clamped, level));
    }
}
