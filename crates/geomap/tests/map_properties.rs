//! Map-level behavior pins: consolidation equivalence against the
//! reference `Consolidator`, TTL-eviction determinism under a seeded
//! clock, and snapshot → compact → recover byte-identity.

use crowdwifi_core::consolidate::Consolidator;
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::{Point, Rect};
use crowdwifi_geomap::{canonical_order, GeoMap, MapConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ROUND_MICROS: u64 = 60_000_000;

fn cfg(shard_level: u8) -> MapConfig {
    let world = Rect::new(Point::new(0.0, 0.0), Point::new(2048.0, 2048.0)).unwrap();
    let mut cfg = MapConfig::new(world);
    cfg.shard_level = shard_level;
    cfg.bucket_level = 6; // 32 m buckets
    cfg.ttl_micros = 5 * ROUND_MICROS;
    cfg.transient_grace_micros = 2 * ROUND_MICROS;
    cfg
}

/// A deterministic multi-round estimate schedule: `aps` home positions
/// re-observed with jitter, plus occasional one-off transients.
fn schedule(seed: u64, rounds: usize, aps: usize) -> Vec<Vec<ApEstimate>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let homes: Vec<Point> = (0..aps)
        .map(|_| {
            Point::new(
                rng.random_range(100.0..1900.0),
                rng.random_range(100.0..1900.0),
            )
        })
        .collect();
    (0..rounds)
        .map(|_| {
            let mut batch = Vec::new();
            for &home in &homes {
                if rng.random_range(0.0..1.0) < 0.8 {
                    batch.push(ApEstimate {
                        position: Point::new(
                            home.x + rng.random_range(-3.0..3.0),
                            home.y + rng.random_range(-3.0..3.0),
                        ),
                        credit: rng.random_range(0.5..2.0),
                    });
                }
            }
            if rng.random_range(0.0..1.0) < 0.5 {
                batch.push(ApEstimate {
                    position: Point::new(
                        rng.random_range(0.0..2048.0),
                        rng.random_range(0.0..2048.0),
                    ),
                    credit: 0.6,
                });
            }
            batch
        })
        .collect()
}

fn run_schedule(map: &GeoMap, batches: &[Vec<ApEstimate>]) {
    for (round, batch) in batches.iter().enumerate() {
        map.absorb_estimates((round as u64 + 1) * ROUND_MICROS, batch);
    }
}

#[test]
fn single_shard_map_matches_the_reference_consolidator() {
    for seed in [3u64, 17, 99] {
        let batches = schedule(seed, 6, 40);
        let map = GeoMap::new(cfg(0)).unwrap();
        run_schedule(&map, &batches);
        let mut reference = Consolidator::new(map.config().merge_radius);
        for batch in &batches {
            for e in batch {
                reference.merge_one(e.position, e.credit);
            }
        }
        let mut expect: Vec<(f64, f64, f64)> = reference
            .estimates()
            .iter()
            .map(|e| (e.position.x, e.position.y, e.credit))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut got: Vec<(f64, f64, f64)> = Vec::new();
        map.for_each_near(Point::new(1024.0, 1024.0), 1e9, |ap| {
            got.push((ap.position.x, ap.position.y, ap.credit));
        });
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            got, expect,
            "map with one shard must replay §4.3.6 consolidation exactly (seed {seed})"
        );
    }
}

#[test]
fn ttl_eviction_is_deterministic_under_a_seeded_clock() {
    // Two maps fed the identical seeded schedule evict identically and
    // end up byte-identical — the virtual clock is the only time
    // source.
    let batches = schedule(42, 8, 60);
    let run = |shard_level: u8| {
        let map = GeoMap::new(cfg(shard_level)).unwrap();
        run_schedule(&map, &batches);
        let stats = map.evict(9 * ROUND_MICROS);
        (stats, map.snapshot())
    };
    let (stats_a, bytes_a) = run(2);
    let (stats_b, bytes_b) = run(2);
    assert_eq!(stats_a, stats_b);
    assert_eq!(bytes_a, bytes_b);

    // Eviction counters are also layout-independent: total dropped and
    // remaining match across shard layouts (entry sets are equal).
    let (stats_c, _) = run(0);
    assert_eq!(
        stats_a.expired + stats_a.transient + stats_a.remaining,
        stats_c.expired + stats_c.transient + stats_c.remaining,
    );

    // Re-running the sweep at the same clock is a fixed point.
    let map = GeoMap::new(cfg(2)).unwrap();
    run_schedule(&map, &batches);
    let first = map.evict(9 * ROUND_MICROS);
    let again = map.evict(9 * ROUND_MICROS);
    assert_eq!(again.expired, 0);
    assert_eq!(again.transient, 0);
    assert_eq!(again.remaining, first.remaining);
}

#[test]
fn transients_survive_within_grace_then_fall() {
    let map = GeoMap::new(cfg(1)).unwrap();
    map.absorb_estimates(
        ROUND_MICROS,
        &[ApEstimate {
            position: Point::new(500.0, 500.0),
            credit: 0.8,
        }],
    );
    // Inside the 2-round grace: kept.
    let s = map.evict(2 * ROUND_MICROS);
    assert_eq!((s.transient, s.remaining), (0, 1));
    // Past the grace with credit still at/below the floor: dropped.
    let s = map.evict(4 * ROUND_MICROS);
    assert_eq!((s.transient, s.remaining), (1, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_compact_recover_is_byte_identical(
        seed in 0u64..1000,
        shard_level in 0u8..=3,
        rounds in 1usize..6,
    ) {
        let batches = schedule(seed, rounds, 30);
        let map = GeoMap::new(cfg(shard_level)).unwrap();
        run_schedule(&map, &batches);

        // Plain round-trip: recover reproduces the bytes exactly.
        let bytes = map.snapshot();
        let recovered = GeoMap::recover(&bytes).unwrap();
        prop_assert_eq!(recovered.snapshot(), bytes.clone());

        // Compaction round-trip: evict + snapshot on the live map
        // equals the snapshot of the recovered-then-evicted copy.
        let now = (rounds as u64 + 4) * ROUND_MICROS;
        let twin = GeoMap::recover(&bytes).unwrap();
        let (stats_live, compacted) = map.compact_snapshot(now);
        let stats_twin = twin.evict(now);
        prop_assert_eq!(stats_live, stats_twin);
        prop_assert_eq!(twin.snapshot(), compacted.clone());

        // And the compacted bytes recover to the same entry count.
        let back = GeoMap::recover(&compacted).unwrap();
        prop_assert_eq!(back.len(), stats_live.remaining);
    }

    #[test]
    fn query_radius_agrees_with_brute_force(
        seed in 0u64..1000,
        shard_level in 0u8..=3,
        cx in 100.0..1900.0f64,
        cy in 100.0..1900.0f64,
        radius in 10.0..600.0f64,
    ) {
        let batches = schedule(seed, 4, 40);
        let map = GeoMap::new(cfg(shard_level)).unwrap();
        run_schedule(&map, &batches);
        let center = Point::new(cx, cy);
        let mut brute = Vec::new();
        map.for_each_near(center, 1e9, |ap| {
            if ap.credit > map.config().min_credit && ap.position.distance(center) <= radius {
                brute.push(*ap);
            }
        });
        brute.sort_by(canonical_order);
        prop_assert_eq!(map.query_radius(center, radius), brute);
    }
}
