//! Planar geohash: Morton/Z-order cell codes over a bounded world.
//!
//! CrowdWiFi's coordinates are planar meters (map-projected), so the
//! map uses a quadtree geohash over a fixed world [`Rect`] rather than
//! the base-32 lat/lon alphabet: a point is quantized to `2^level`
//! slots per axis and the two axis indices are bit-interleaved into a
//! single `u64` code. Truncating the code (dropping the low bit pairs)
//! yields the enclosing coarser cell — that prefix property is what the
//! shard router and the corridor walk exploit.

use crowdwifi_geo::{Point, Rect};

/// Maximum quantization level (bits per axis). 30 bits per axis keeps
/// the interleaved code inside 60 bits of a `u64`.
pub const MAX_LEVEL: u8 = 30;

/// A geohash cell: an interleaved Morton code plus its level.
///
/// Codes are only comparable between cells of the same level; use
/// [`GeoCell::parent`] to move between levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeoCell {
    /// Interleaved Morton code (x bits even, y bits odd).
    pub code: u64,
    /// Quantization level: bits per axis, `1..=MAX_LEVEL`.
    pub level: u8,
}

impl GeoCell {
    /// The enclosing cell at a coarser `level` (prefix truncation).
    ///
    /// # Panics
    ///
    /// Panics if `level` is coarser than this cell's level is fine but
    /// finer (`level > self.level`) is not meaningful and panics.
    pub fn parent(self, level: u8) -> GeoCell {
        assert!(level <= self.level, "parent level must be coarser");
        GeoCell {
            code: self.code >> (2 * u64::from(self.level - level)),
            level,
        }
    }
}

/// Spreads the low 32 bits of `v` into the even bit positions.
#[inline]
fn spread(v: u64) -> u64 {
    let mut v = v & 0xffff_ffff;
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread`]: gathers the even bit positions into the low 32.
#[inline]
fn compact(v: u64) -> u64 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v >> 4)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v >> 8)) & 0x0000_ffff_0000_ffff;
    v = (v | (v >> 16)) & 0xffff_ffff;
    v
}

/// Interleaves two axis indices into a Morton code.
#[inline]
pub(crate) fn interleave(ix: u64, iy: u64) -> u64 {
    spread(ix) | (spread(iy) << 1)
}

/// Splits a Morton code back into `(ix, iy)`.
#[inline]
pub(crate) fn deinterleave(code: u64) -> (u64, u64) {
    (compact(code), compact(code >> 1))
}

/// The bounded world a geohash is defined over.
///
/// All encode/decode operations clamp into the world rectangle, so
/// out-of-bounds points land in the nearest edge cell rather than
/// wrapping or erroring.
#[derive(Debug, Clone, Copy)]
pub struct World {
    area: Rect,
}

impl World {
    /// Creates a geohash world over `area`.
    ///
    /// # Panics
    ///
    /// Panics if the area has zero width or height (every cell would be
    /// degenerate).
    pub fn new(area: Rect) -> Self {
        assert!(
            area.width() > 0.0 && area.height() > 0.0,
            "geohash world must have positive extent"
        );
        World { area }
    }

    /// The world rectangle.
    pub fn area(&self) -> Rect {
        self.area
    }

    /// Number of cells per axis at `level`.
    #[inline]
    fn slots(level: u8) -> u64 {
        1u64 << level
    }

    /// Quantizes one coordinate into its axis index at `level`.
    #[inline]
    fn axis_index(v: f64, lo: f64, extent: f64, level: u8) -> u64 {
        let n = Self::slots(level);
        let t = ((v - lo) / extent * n as f64).floor();
        if t <= 0.0 {
            0
        } else if t >= (n - 1) as f64 {
            n - 1
        } else {
            t as u64
        }
    }

    /// Encodes a point into its cell at `level` (clamping into the world).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`MAX_LEVEL`].
    pub fn encode(&self, p: Point, level: u8) -> GeoCell {
        assert!(
            (1..=MAX_LEVEL).contains(&level),
            "level must be in 1..={MAX_LEVEL}"
        );
        let ix = Self::axis_index(p.x, self.area.min().x, self.area.width(), level);
        let iy = Self::axis_index(p.y, self.area.min().y, self.area.height(), level);
        GeoCell {
            code: interleave(ix, iy),
            level,
        }
    }

    /// The rectangle a cell covers.
    pub fn cell_rect(&self, cell: GeoCell) -> Rect {
        let (ix, iy) = deinterleave(cell.code);
        let n = Self::slots(cell.level) as f64;
        let w = self.area.width() / n;
        let h = self.area.height() / n;
        let min = Point::new(
            self.area.min().x + ix as f64 * w,
            self.area.min().y + iy as f64 * h,
        );
        Rect::new(min, Point::new(min.x + w, min.y + h)).expect("cell rect is well-formed")
    }

    /// The up-to-8 neighbor cells at the same level, clipped at the
    /// world boundary, in deterministic (dy, dx) scan order.
    pub fn neighbors(&self, cell: GeoCell) -> Vec<GeoCell> {
        let (ix, iy) = deinterleave(cell.code);
        let n = Self::slots(cell.level);
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = ix as i64 + dx;
                let ny = iy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= n as i64 || ny >= n as i64 {
                    continue;
                }
                out.push(GeoCell {
                    code: interleave(nx as u64, ny as u64),
                    level: cell.level,
                });
            }
        }
        out
    }

    /// Calls `f` for every cell at `level` intersecting `rect` (clipped
    /// to the world), in row-major (iy, ix) order. The allocation-free
    /// core of [`World::cells_covering`] — the map's lookup hot path
    /// walks cells through this without building a `Vec`.
    pub fn for_each_cell_covering<F: FnMut(GeoCell)>(&self, rect: Rect, level: u8, mut f: F) {
        let lo = self.encode(rect.min(), level);
        let hi = self.encode(rect.max(), level);
        let (x0, y0) = deinterleave(lo.code);
        let (x1, y1) = deinterleave(hi.code);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                f(GeoCell {
                    code: interleave(ix, iy),
                    level,
                });
            }
        }
    }

    /// All cells at `level` intersecting `rect` (clipped to the world),
    /// in row-major (iy, ix) order.
    pub fn cells_covering(&self, rect: Rect, level: u8) -> Vec<GeoCell> {
        let mut out = Vec::new();
        self.for_each_cell_covering(rect, level, |c| out.push(c));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(Rect::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)).unwrap())
    }

    #[test]
    fn interleave_roundtrip() {
        for &(ix, iy) in &[(0u64, 0u64), (1, 0), (0, 1), (123, 456), (0x3fff_ffff, 7)] {
            assert_eq!(deinterleave(interleave(ix, iy)), (ix, iy));
        }
    }

    #[test]
    fn encode_is_contained_in_cell_rect() {
        let w = world();
        let p = Point::new(513.7, 100.2);
        for level in 1..=10 {
            let c = w.encode(p, level);
            assert!(w.cell_rect(c).contains(p));
        }
    }

    #[test]
    fn out_of_bounds_points_clamp_to_edge_cells() {
        let w = world();
        let c = w.encode(Point::new(-50.0, 2000.0), 4);
        let (ix, iy) = deinterleave(c.code);
        assert_eq!((ix, iy), (0, 15));
    }

    #[test]
    fn parent_is_prefix_truncation() {
        let w = world();
        let fine = w.encode(Point::new(700.0, 300.0), 8);
        let coarse = w.encode(Point::new(700.0, 300.0), 3);
        assert_eq!(fine.parent(3), coarse);
    }

    #[test]
    fn neighbors_are_adjacent_and_clipped() {
        let w = world();
        // Interior cell: all 8 neighbors.
        let c = w.encode(Point::new(512.0, 512.0), 4);
        assert_eq!(w.neighbors(c).len(), 8);
        // Corner cell: only 3.
        let corner = w.encode(Point::new(0.0, 0.0), 4);
        assert_eq!(w.neighbors(corner).len(), 3);
        let (cx, cy) = deinterleave(c.code);
        for n in w.neighbors(c) {
            let (nx, ny) = deinterleave(n.code);
            assert!(nx.abs_diff(cx) <= 1 && ny.abs_diff(cy) <= 1);
            assert_ne!((nx, ny), (cx, cy));
        }
    }

    #[test]
    fn covering_contains_the_cell_of_every_interior_point() {
        let w = world();
        let r = Rect::new(Point::new(100.0, 200.0), Point::new(300.0, 280.0)).unwrap();
        let cells = w.cells_covering(r, 5);
        for &p in &[
            Point::new(100.0, 200.0),
            Point::new(299.9, 279.9),
            Point::new(205.0, 240.0),
        ] {
            assert!(cells.contains(&w.encode(p, 5)));
        }
    }
}
