//! Shared AP-identifier interning.
//!
//! Both the middleware's columnar observation store and the global AP
//! map name APs by small dense `u32` ids. Before this module each kept
//! its own intern table, which meant the same AP key could map to
//! different ids on the two sides. The [`Interner`] here is the single
//! implementation; [`SharedInterner`] lets the store and the map hang
//! off *one* table so ids can never disagree.

use crowdwifi_geo::Point;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// First-come-first-serve string intern table handing out dense,
/// stable `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its stable id. Idempotent: the same
    /// name always yields the same id; new names get sequential ids.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Looks up `name` without interning it.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name behind `id`, if it was handed out by [`Interner::intern`].
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// An intern table shared between producers (e.g. the observation
/// store and the AP map), so both hand out identical ids for identical
/// keys.
pub type SharedInterner = Arc<Mutex<Interner>>;

/// A fresh shareable intern table.
pub fn shared_interner() -> SharedInterner {
    Arc::new(Mutex::new(Interner::new()))
}

/// The canonical grid-quantized AP key for a position: `ap(ix,iy)`
/// with `ix = floor(x / resolution)` (same for `iy`). This is the key
/// scheme `middleware::store` has always used at 10 m resolution; the
/// map founds new entries under the same keys so a shared [`Interner`]
/// yields matching ids.
///
/// # Panics
///
/// Panics if `resolution` is not a positive finite number.
pub fn grid_key(p: Point, resolution: f64) -> String {
    assert!(
        resolution > 0.0 && resolution.is_finite(),
        "grid resolution must be positive and finite"
    );
    let ix = (p.x / resolution).floor() as i64;
    let iy = (p.y / resolution).floor() as i64;
    format!("ap({ix},{iy})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_sequential() {
        let mut t = Interner::new();
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("b"), 1);
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.name(1), Some("b"));
        assert_eq!(t.get("b"), Some(1));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn grid_key_matches_store_scheme() {
        assert_eq!(grid_key(Point::new(75.0, 25.0), 10.0), "ap(7,2)");
        assert_eq!(grid_key(Point::new(-0.1, 0.0), 10.0), "ap(-1,0)");
    }

    #[test]
    fn shared_table_hands_out_one_id_per_key() {
        let shared = shared_interner();
        let a = shared.lock().unwrap().intern("ap(7,2)");
        let b = Arc::clone(&shared).lock().unwrap().intern("ap(7,2)");
        assert_eq!(a, b);
    }
}
