//! CRC-framed snapshots and compaction for the map.
//!
//! Same framed-CRC idiom as `middleware::durability`: every frame is
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`. Frame 0 is the
//! header (magic, config, intern table); every following frame is one
//! non-empty shard with its buckets in sorted-code order and entries in
//! stored order. Unlike the durability WAL, a snapshot is not a log —
//! a torn tail or a CRC mismatch is corruption and recovery fails
//! loudly instead of truncating.
//!
//! Snapshots are **byte-identical** under round-trip: serializing a
//! recovered map reproduces the input bytes exactly, which is what the
//! `snapshot → compact → recover` test pins down.

use crate::intern::shared_interner;
use crate::map::{EvictStats, GeoMap, MapAp, MapConfig};
use crate::{MapError, Result};
use crowdwifi_geo::{Point, Rect};
use std::sync::Arc;

/// Snapshot magic bytes.
const MAGIC: &[u8; 4] = b"GMAP";
/// Snapshot format version.
const VERSION: u32 = 1;

/// IEEE CRC32 lookup table (polynomial `0xEDB88320`), built at compile
/// time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC32 of `data` — the same checksum the durability layer
/// frames its WAL records with.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Appends one `[len][crc][payload]` frame.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Splits `bytes` into CRC-validated frame payloads.
///
/// # Errors
///
/// Returns [`MapError::Corrupt`] on a torn frame or checksum mismatch.
fn split_frames(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            return Err(MapError::Corrupt(format!("torn frame header at {at}")));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let start = at + 8;
        let end = start
            .checked_add(len)
            .ok_or_else(|| MapError::Corrupt(format!("frame length overflow at {at}")))?;
        if end > bytes.len() {
            return Err(MapError::Corrupt(format!("torn frame payload at {at}")));
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Err(MapError::Corrupt(format!("crc mismatch at {at}")));
        }
        frames.push(payload);
        at = end;
    }
    Ok(frames)
}

/// A little-endian reader over one frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| MapError::Corrupt(format!("short read at {}", self.at)))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

impl GeoMap {
    /// Serializes the map (config, intern table, every shard's current
    /// generation) into a framed snapshot. Deterministic: buckets are
    /// emitted in sorted-code order and entries in stored order, so
    /// equal maps produce equal bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let cfg = self.config();
        let mut out = Vec::new();

        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        push_f64(&mut header, cfg.world.min().x);
        push_f64(&mut header, cfg.world.min().y);
        push_f64(&mut header, cfg.world.max().x);
        push_f64(&mut header, cfg.world.max().y);
        header.push(cfg.shard_level);
        header.push(cfg.bucket_level);
        push_f64(&mut header, cfg.merge_radius);
        header.extend_from_slice(&cfg.ttl_micros.to_le_bytes());
        header.extend_from_slice(&cfg.transient_grace_micros.to_le_bytes());
        push_f64(&mut header, cfg.min_credit);
        push_f64(&mut header, cfg.key_resolution);
        {
            let interner = self.interner_handle();
            let interner = interner.lock().expect("interner poisoned");
            let names = interner.names();
            header.extend_from_slice(&(names.len() as u32).to_le_bytes());
            for name in names {
                header.extend_from_slice(&(name.len() as u32).to_le_bytes());
                header.extend_from_slice(name.as_bytes());
            }
        }
        push_frame(&mut out, &header);

        for (s, shard) in self.shards.iter().enumerate() {
            let generation = shard.current.read().expect("shard lock poisoned").clone();
            if generation.buckets.is_empty() {
                continue;
            }
            let mut codes: Vec<u64> = generation.buckets.keys().copied().collect();
            codes.sort_unstable();
            let mut frame = Vec::new();
            frame.extend_from_slice(&(s as u32).to_le_bytes());
            frame.extend_from_slice(&(codes.len() as u32).to_le_bytes());
            for code in codes {
                let bucket = &generation.buckets[&code];
                frame.extend_from_slice(&code.to_le_bytes());
                frame.extend_from_slice(&(bucket.len() as u32).to_le_bytes());
                for ap in bucket.iter() {
                    frame.extend_from_slice(&ap.id.to_le_bytes());
                    push_f64(&mut frame, ap.position.x);
                    push_f64(&mut frame, ap.position.y);
                    push_f64(&mut frame, ap.credit);
                    frame.extend_from_slice(&ap.first_seen_micros.to_le_bytes());
                    frame.extend_from_slice(&ap.last_seen_micros.to_le_bytes());
                }
            }
            push_frame(&mut out, &frame);
        }
        out
    }

    /// Rebuilds a map from snapshot bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Corrupt`] for torn frames, CRC mismatches,
    /// bad magic/version, or structurally impossible contents, and
    /// [`MapError::InvalidConfig`] if the embedded config fails
    /// validation.
    pub fn recover(bytes: &[u8]) -> Result<GeoMap> {
        let frames = split_frames(bytes)?;
        let Some((header, shard_frames)) = frames.split_first() else {
            return Err(MapError::Corrupt("empty snapshot".into()));
        };

        let mut r = Reader::new(header);
        if r.take(4)? != MAGIC {
            return Err(MapError::Corrupt("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(MapError::Corrupt(format!("unsupported version {version}")));
        }
        let min = Point::new(r.f64()?, r.f64()?);
        let max = Point::new(r.f64()?, r.f64()?);
        let world =
            Rect::new(min, max).map_err(|e| MapError::Corrupt(format!("bad world rect: {e}")))?;
        let cfg = MapConfig {
            world,
            shard_level: r.u8()?,
            bucket_level: r.u8()?,
            merge_radius: r.f64()?,
            ttl_micros: r.u64()?,
            transient_grace_micros: r.u64()?,
            min_credit: r.f64()?,
            key_resolution: r.f64()?,
        };
        let interner = shared_interner();
        {
            let mut table = interner.lock().expect("interner poisoned");
            let count = r.u32()?;
            for _ in 0..count {
                let len = r.u32()? as usize;
                let name = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| MapError::Corrupt("non-utf8 interned name".into()))?;
                table.intern(name);
            }
        }
        if !r.done() {
            return Err(MapError::Corrupt("trailing header bytes".into()));
        }

        let map = GeoMap::with_interner(cfg, interner)?;
        for frame in shard_frames {
            let mut r = Reader::new(frame);
            let s = r.u32()? as usize;
            if s >= map.shards.len() {
                return Err(MapError::Corrupt(format!("shard index {s} out of range")));
            }
            let bucket_count = r.u32()?;
            let shard = &map.shards[s];
            let mut generation =
                std::mem::take(&mut *shard.current.write().expect("shard lock poisoned"));
            let inner = Arc::get_mut(&mut generation).expect("fresh map generation is unshared");
            for _ in 0..bucket_count {
                let code = r.u64()?;
                if map.shard_of_code(code) != s {
                    return Err(MapError::Corrupt(format!(
                        "bucket {code:#x} does not belong to shard {s}"
                    )));
                }
                let n = r.u32()?;
                let mut bucket: Vec<MapAp> = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    bucket.push(MapAp {
                        id: r.u32()?,
                        position: Point::new(r.f64()?, r.f64()?),
                        credit: r.f64()?,
                        first_seen_micros: r.u64()?,
                        last_seen_micros: r.u64()?,
                    });
                }
                inner.aps += n as u64;
                if inner.buckets.insert(code, Arc::new(bucket)).is_some() {
                    return Err(MapError::Corrupt(format!("duplicate bucket {code:#x}")));
                }
            }
            if !r.done() {
                return Err(MapError::Corrupt("trailing shard bytes".into()));
            }
            *shard.current.write().expect("shard lock poisoned") = generation;
        }
        Ok(map)
    }

    /// Compaction: evicts at clock `now_micros`, then snapshots what
    /// remains. Returns the eviction counters and the snapshot bytes.
    pub fn compact_snapshot(&self, now_micros: u64) -> (EvictStats, Vec<u8>) {
        let stats = self.evict(now_micros);
        (stats, self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_core::ApEstimate;

    fn populated() -> GeoMap {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)).unwrap();
        let mut cfg = MapConfig::new(world);
        cfg.shard_level = 2;
        cfg.bucket_level = 5;
        cfg.ttl_micros = 1_000;
        cfg.transient_grace_micros = 100;
        let map = GeoMap::new(cfg).unwrap();
        let ests: Vec<ApEstimate> = (0..40)
            .map(|i| ApEstimate {
                position: Point::new(20.0 + 25.0 * f64::from(i), 13.0 * f64::from(i % 7)),
                credit: 2.0,
            })
            .collect();
        map.absorb_estimates(10, &ests);
        map.absorb_estimates(500, &ests[..20]);
        map
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_recover_roundtrip_is_byte_identical() {
        let map = populated();
        let bytes = map.snapshot();
        let recovered = GeoMap::recover(&bytes).unwrap();
        assert_eq!(recovered.len(), map.len());
        assert_eq!(recovered.snapshot(), bytes);
        // Queries over the recovered map agree with the original.
        let q0 = map.query_radius(Point::new(300.0, 40.0), 200.0);
        let q1 = recovered.query_radius(Point::new(300.0, 40.0), 200.0);
        assert_eq!(q0, q1);
    }

    #[test]
    fn compact_evicts_then_snapshots_consistently() {
        let map = populated();
        // At t=1400: entries last seen at 10 are past the 1000 µs TTL;
        // the 20 refreshed at 500 survive.
        let (stats, bytes) = map.compact_snapshot(1400);
        assert_eq!(stats.expired, 20);
        assert_eq!(stats.remaining, 20);
        let recovered = GeoMap::recover(&bytes).unwrap();
        assert_eq!(recovered.len(), 20);
        // The compacted snapshot equals a snapshot of the evicted map.
        assert_eq!(recovered.snapshot(), map.snapshot());
    }

    #[test]
    fn corruption_is_detected_not_truncated() {
        let map = populated();
        let mut bytes = map.snapshot();
        // Flip one payload byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(GeoMap::recover(&bytes), Err(MapError::Corrupt(_))));
        // Torn tail.
        let whole = map.snapshot();
        assert!(matches!(
            GeoMap::recover(&whole[..whole.len() - 3]),
            Err(MapError::Corrupt(_))
        ));
        // Bad magic.
        let mut bad = map.snapshot();
        bad[8] = b'X';
        assert!(matches!(GeoMap::recover(&bad), Err(MapError::Corrupt(_))));
    }

    #[test]
    fn empty_map_roundtrips() {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(64.0, 64.0)).unwrap();
        let map = GeoMap::new(MapConfig::new(world)).unwrap();
        let bytes = map.snapshot();
        let recovered = GeoMap::recover(&bytes).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(recovered.snapshot(), bytes);
    }
}
