//! "APs ahead on my trajectory": corridor queries over the map.
//!
//! A user vehicle hands the map its upcoming route polyline; the map
//! walks the geohash cells the corridor sweeps (prefix walk: the cell
//! set is computed first, then grouped by shard so each touched shard
//! is snapshotted exactly once) and filters the candidate entries by
//! exact distance to the polyline. This is the paper's offloading
//! use case (§6.3) and the feed for `handoff`'s BRR policy.

use crate::map::{canonical_order, GeoMap, MapAp};
use crowdwifi_geo::{Point, Rect};
use std::collections::{BTreeMap, BTreeSet};

/// Distance from `p` to the segment `a`–`b`.
pub(crate) fn dist_to_segment(p: Point, a: Point, b: Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    if len2 <= 0.0 {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0);
    p.distance(Point::new(a.x + t * dx, a.y + t * dy))
}

/// Distance from `p` to a polyline (minimum over its segments).
fn dist_to_path(p: Point, path: &[Point]) -> f64 {
    match path {
        [] => f64::INFINITY,
        [only] => p.distance(*only),
        _ => path
            .windows(2)
            .map(|w| dist_to_segment(p, w[0], w[1]))
            .fold(f64::INFINITY, f64::min),
    }
}

impl GeoMap {
    /// All entries within `half_width` meters of the route polyline
    /// `path` whose credit clears the spurious floor, deduplicated and
    /// in canonical order — the candidate list a vehicle's handoff
    /// policy consumes.
    ///
    /// The cell walk samples the polyline at half-bucket steps, unions
    /// the covering cells of each sample's corridor box, then probes
    /// each touched shard's current generation once.
    pub fn aps_ahead(&self, path: &[Point], half_width: f64) -> Vec<MapAp> {
        if path.is_empty() || !half_width.is_finite() || half_width < 0.0 {
            return Vec::new();
        }
        let cfg = self.config();
        let world = *self.world();
        let n = f64::from(1u32 << cfg.bucket_level.min(30));
        let step = (world.area().width() / n).min(world.area().height() / n) / 2.0;

        // 1. Prefix walk: collect the bucket cells the corridor sweeps.
        let mut cells: BTreeSet<u64> = BTreeSet::new();
        let mut cover = |p: Point| {
            let Ok(bbox) = Rect::new(
                Point::new(p.x - half_width, p.y - half_width),
                Point::new(p.x + half_width, p.y + half_width),
            ) else {
                return;
            };
            for cell in world.cells_covering(bbox, cfg.bucket_level) {
                cells.insert(cell.code);
            }
        };
        cover(path[0]);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let len = a.distance(b);
            if !len.is_finite() {
                continue;
            }
            let samples = (len / step).ceil().max(1.0) as usize;
            for i in 1..=samples {
                cover(a.lerp(b, i as f64 / samples as f64));
            }
        }

        // 2. Group by shard; snapshot each touched shard once.
        let mut by_shard: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for code in cells {
            by_shard
                .entry(self.shard_of_code(code))
                .or_default()
                .push(code);
        }
        let mut out: Vec<MapAp> = Vec::new();
        for (s, codes) in by_shard {
            let generation = self.shards[s]
                .current
                .read()
                .expect("shard lock poisoned")
                .clone();
            for code in codes {
                let Some(bucket) = generation.buckets.get(&code) else {
                    continue;
                };
                for ap in bucket.iter() {
                    if ap.credit > cfg.min_credit && dist_to_path(ap.position, path) <= half_width {
                        out.push(*ap);
                    }
                }
            }
        }

        // 3. Canonical order + dedup (an entry can only appear once per
        // generation, but migrations mean defensive dedup is cheap).
        out.sort_by(canonical_order);
        out.dedup_by(|a, b| {
            a.id == b.id
                && a.position.x.to_bits() == b.position.x.to_bits()
                && a.position.y.to_bits() == b.position.y.to_bits()
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use crowdwifi_core::ApEstimate;

    fn map() -> GeoMap {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)).unwrap();
        let mut cfg = MapConfig::new(world);
        cfg.shard_level = 2;
        cfg.bucket_level = 5; // 32 m buckets
        GeoMap::new(cfg).unwrap()
    }

    fn est(x: f64, y: f64, credit: f64) -> ApEstimate {
        ApEstimate {
            position: Point::new(x, y),
            credit,
        }
    }

    #[test]
    fn segment_distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert!((dist_to_segment(Point::new(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        assert!((dist_to_segment(Point::new(-4.0, 0.0), a, b) - 4.0).abs() < 1e-12);
        assert!((dist_to_segment(Point::new(13.0, 4.0), a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment falls back to point distance.
        assert!((dist_to_segment(Point::new(3.0, 4.0), a, a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn corridor_keeps_near_route_aps_and_drops_far_ones() {
        let m = map();
        m.absorb_estimates(
            1,
            &[
                est(100.0, 210.0, 2.0), // 10 m off the route: kept
                est(500.0, 190.0, 2.0), // 10 m off: kept
                est(300.0, 500.0, 9.0), // 300 m off: dropped
                est(700.0, 200.0, 0.5), // on route but below credit floor
            ],
        );
        let route = [Point::new(0.0, 200.0), Point::new(900.0, 200.0)];
        let ahead = m.aps_ahead(&route, 50.0);
        let xs: Vec<f64> = ahead.iter().map(|a| a.position.x).collect();
        assert_eq!(xs, vec![100.0, 500.0]);
    }

    #[test]
    fn corridor_follows_turns() {
        let m = map();
        m.absorb_estimates(1, &[est(400.0, 395.0, 2.0), est(20.0, 20.0, 2.0)]);
        // L-shaped route passing near (400, 395) at the corner.
        let route = [
            Point::new(400.0, 100.0),
            Point::new(400.0, 390.0),
            Point::new(800.0, 390.0),
        ];
        let ahead = m.aps_ahead(&route, 20.0);
        assert_eq!(ahead.len(), 1);
        assert_eq!(ahead[0].position.y, 395.0);
    }

    #[test]
    fn empty_path_or_bad_width_yields_nothing() {
        let m = map();
        m.absorb_estimates(1, &[est(100.0, 100.0, 2.0)]);
        assert!(m.aps_ahead(&[], 50.0).is_empty());
        assert!(m
            .aps_ahead(&[Point::new(100.0, 100.0)], f64::NAN)
            .is_empty());
        // Single-point path: a disc query.
        assert_eq!(m.aps_ahead(&[Point::new(110.0, 100.0)], 20.0).len(), 1);
    }
}
