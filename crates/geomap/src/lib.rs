//! Geo-sharded global AP map — the read-mostly production database the
//! CrowdWiFi pipeline feeds.
//!
//! Crowd vehicles continuously upload per-drive AP estimates; user
//! vehicles continuously ask "which APs are ahead on my trajectory?"
//! (the paper's offloading use case, §6.3). This crate is the piece in
//! between:
//!
//! * [`geohash`] — planar Morton/Z-order cell codes over a bounded
//!   world; prefix truncation routes cells to shards.
//! * [`map`] — the sharded store: credit-based consolidation on ingest
//!   (the §4.3.6 math), TTL + transient eviction, and a lock-light
//!   generation-published read path (readers never wait on ingest).
//! * [`corridor`] — trajectory-corridor queries over the map.
//! * [`snapshot`] — CRC-framed snapshots and compaction, in the same
//!   framing idiom as the middleware durability layer.
//! * [`intern`] — the AP-identifier intern table shared with
//!   `middleware::store`, so the two sides never disagree on ids.

#![deny(missing_docs)]

pub mod corridor;
pub mod geohash;
pub mod intern;
pub mod map;
pub mod snapshot;

pub use geohash::{GeoCell, World, MAX_LEVEL};
pub use intern::{grid_key, shared_interner, Interner, SharedInterner};
pub use map::{canonical_order, EvictStats, GeoMap, IngestStats, MapAp, MapConfig, MapStats};
pub use snapshot::crc32;

/// Errors produced by the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The configuration is degenerate (zero-extent world, bad level
    /// pair, non-finite radius, ...).
    InvalidConfig(String),
    /// Snapshot bytes are torn, checksum-broken, or structurally
    /// impossible.
    Corrupt(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::InvalidConfig(m) => write!(f, "invalid map config: {m}"),
            MapError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MapError>;
