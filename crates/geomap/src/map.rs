//! The geo-sharded global AP map.
//!
//! Entries live in geohash **buckets** (fine cells at
//! [`MapConfig::bucket_level`]); buckets are grouped into **shards** by
//! code-prefix truncation to [`MapConfig::shard_level`]. Each shard
//! publishes an immutable generation behind an `Arc`:
//!
//! * **readers** clone the shard's current `Arc` under a read lock held
//!   O(1) and probe the immutable generation — they never wait for an
//!   ingest batch, only for the pointer swap;
//! * **writers** serialize on a per-shard writer mutex, build the next
//!   generation off-lock (copy-on-write: the bucket table is cloned
//!   cheaply as `Arc` handles, only touched buckets are deep-cloned),
//!   then publish it with one pointer store.
//!
//! Ingest folds each estimate into the nearest existing entry within
//! the merge radius using the credit-weighted average of
//! `crowdwifi_core::consolidate` (§4.3.6); unmatched estimates open new
//! entries named by the shared [`grid_key`]
//! scheme. Time is an explicit microsecond clock supplied by the
//! caller, so TTL eviction is deterministic under a seeded clock.

use crate::geohash::{GeoCell, World, MAX_LEVEL};
use crate::intern::{grid_key, shared_interner, SharedInterner};
use crate::{MapError, Result};
use crowdwifi_core::ApEstimate;
use crowdwifi_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, RwLock};

/// One stored AP: identity, consolidated state, and freshness stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapAp {
    /// Interned id of the founding grid key (shared with the
    /// observation store's intern table when constructed with one).
    pub id: u32,
    /// Credit-weighted consolidated position.
    pub position: Point,
    /// Accumulated credit.
    pub credit: f64,
    /// Clock value when the entry was opened, microseconds.
    pub first_seen_micros: u64,
    /// Clock value of the latest contributing estimate, microseconds.
    pub last_seen_micros: u64,
}

/// Canonical total order on map entries: by position (x, then y), ties
/// broken by id. Query results sorted this way are reproducible across
/// shard layouts and ingest interleavings.
pub fn canonical_order(a: &MapAp, b: &MapAp) -> Ordering {
    a.position
        .x
        .total_cmp(&b.position.x)
        .then(a.position.y.total_cmp(&b.position.y))
        .then(a.id.cmp(&b.id))
}

/// Counters returned by one [`GeoMap::absorb_estimates`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Estimates folded into an existing entry.
    pub merged: u64,
    /// Estimates that opened a new entry.
    pub opened: u64,
    /// Estimates rejected (non-positive credit or non-finite position).
    pub rejected: u64,
}

/// Counters returned by one [`GeoMap::evict`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictStats {
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
    /// Entries dropped as transient (credit never rose above the
    /// spurious floor within the grace period).
    pub transient: u64,
    /// Entries remaining after the sweep.
    pub remaining: u64,
}

/// A point-in-time size report for the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Stored AP entries.
    pub aps: u64,
    /// Non-empty buckets.
    pub buckets: u64,
    /// Shard count (fixed at construction).
    pub shards: usize,
    /// Generations published so far (one per ingest/evict batch per
    /// shard).
    pub generation: u64,
}

/// Configuration of a [`GeoMap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapConfig {
    /// The bounded world all positions are clamped into.
    pub world: Rect,
    /// Geohash level of the shard prefix: `4^shard_level` shards.
    pub shard_level: u8,
    /// Geohash level of the buckets entries live in. Must be at least
    /// `shard_level`; a bucket's shard is its code truncated to
    /// `shard_level`.
    pub bucket_level: u8,
    /// Estimates within this distance of an existing entry merge into
    /// it (credit-weighted), mirroring `consolidate::Consolidator`.
    pub merge_radius: f64,
    /// Entries not refreshed for this long are evicted as stale.
    pub ttl_micros: u64,
    /// Entries whose credit is still at or below `min_credit` this long
    /// after opening are evicted as transient.
    pub transient_grace_micros: u64,
    /// The spurious-credit floor (paper default 1: a location seen only
    /// once is not a real AP). Queries also filter at this floor.
    pub min_credit: f64,
    /// Grid resolution of founding keys handed to the intern table
    /// (10 m matches `middleware::store`).
    pub key_resolution: f64,
}

impl MapConfig {
    /// Defaults over `world`: 64 shards, 256×256-slot buckets, 10 m
    /// merge radius, 24 h TTL, 1 h transient grace, credit floor 1.
    pub fn new(world: Rect) -> Self {
        MapConfig {
            world,
            shard_level: 3,
            bucket_level: 8,
            merge_radius: 10.0,
            ttl_micros: 86_400_000_000,
            transient_grace_micros: 3_600_000_000,
            min_credit: 1.0,
            key_resolution: 10.0,
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |m: String| Err(MapError::InvalidConfig(m));
        if self.world.width() <= 0.0 || self.world.height() <= 0.0 {
            return bad("world must have positive extent".into());
        }
        if self.bucket_level == 0 || self.bucket_level > MAX_LEVEL {
            return bad(format!("bucket_level must be in 1..={MAX_LEVEL}"));
        }
        if self.shard_level > self.bucket_level {
            return bad("shard_level must not exceed bucket_level".into());
        }
        if self.shard_level > 8 {
            return bad("shard_level above 8 (65536 shards) is unsupported".into());
        }
        if !(self.merge_radius >= 0.0 && self.merge_radius.is_finite()) {
            return bad("merge_radius must be non-negative and finite".into());
        }
        if !(self.key_resolution > 0.0 && self.key_resolution.is_finite()) {
            return bad("key_resolution must be positive and finite".into());
        }
        if !self.min_credit.is_finite() {
            return bad("min_credit must be finite".into());
        }
        Ok(())
    }
}

/// A bucket is the entry list of one fine geohash cell.
pub(crate) type Bucket = Vec<MapAp>;

/// Fast hasher for bucket codes: one splitmix64 round. Bucket codes
/// are already well-spread Morton codes; this just decorrelates the
/// low bits the table indexes by.
#[derive(Debug, Default, Clone)]
pub(crate) struct CellHasher(u64);

impl Hasher for CellHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z ^= z >> 29;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 32;
        self.0 = z;
    }
}

pub(crate) type BuildCellHasher = BuildHasherDefault<CellHasher>;

/// One immutable published generation of a shard.
#[derive(Debug, Default)]
pub(crate) struct ShardGen {
    /// Bucket table keyed by bucket-cell code. Values are `Arc` so a
    /// generation clone shares untouched buckets with its predecessor.
    pub(crate) buckets: HashMap<u64, Arc<Bucket>, BuildCellHasher>,
    /// Entry count across all buckets.
    pub(crate) aps: u64,
}

/// One shard: the published generation plus the writer serialization
/// lock. The `RwLock` only ever guards the `Arc` swap, never the build.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) current: RwLock<Arc<ShardGen>>,
    writer: Mutex<()>,
}

/// Work items an ingest batch routes to a shard: fresh estimates, or
/// entries migrating in because consolidation moved them across a
/// shard boundary. `hops` bounds re-routing so pathological border
/// dances terminate.
enum IngestItem {
    Est { pos: Point, credit: f64, hops: u8 },
    Mig { ap: MapAp, hops: u8 },
}

impl IngestItem {
    fn pos_credit(&self) -> (Point, f64) {
        match self {
            IngestItem::Est { pos, credit, .. } => (*pos, *credit),
            IngestItem::Mig { ap, .. } => (ap.position, ap.credit),
        }
    }

    fn hops(&self) -> u8 {
        match self {
            IngestItem::Est { hops, .. } | IngestItem::Mig { hops, .. } => *hops,
        }
    }

    fn rerouted(&self) -> Self {
        match self {
            IngestItem::Est { pos, credit, hops } => IngestItem::Est {
                pos: *pos,
                credit: *credit,
                hops: hops.saturating_add(1),
            },
            IngestItem::Mig { ap, hops } => IngestItem::Mig {
                ap: *ap,
                hops: hops.saturating_add(1),
            },
        }
    }
}

/// Redirect budget for border estimates chasing a nearer entry that
/// keeps landing in another shard.
const MAX_HOPS: u8 = 4;

/// Where the nearest merge candidate for an estimate lives.
enum Candidate {
    /// In the shard being written: `(bucket_code, index)`.
    Local(u64, usize),
    /// In another shard's published generation.
    Remote(usize),
}

/// The geo-sharded, generation-published global AP map. See the
/// [module docs](self) for the concurrency scheme.
#[derive(Debug)]
pub struct GeoMap {
    cfg: MapConfig,
    world: World,
    pub(crate) shards: Vec<Shard>,
    interner: SharedInterner,
    generation: AtomicU64,
}

impl GeoMap {
    /// Creates an empty map with its own intern table.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] for degenerate worlds, bad
    /// level pairs, or non-finite radii.
    pub fn new(cfg: MapConfig) -> Result<Self> {
        GeoMap::with_interner(cfg, shared_interner())
    }

    /// Creates an empty map that interns founding keys into `interner`
    /// — share the handle with an `ObsStore` so both sides agree on
    /// ids.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] as [`GeoMap::new`] does.
    pub fn with_interner(cfg: MapConfig, interner: SharedInterner) -> Result<Self> {
        cfg.validate()?;
        let shard_count = 1usize << (2 * cfg.shard_level);
        let shards = (0..shard_count)
            .map(|_| Shard {
                current: RwLock::new(Arc::new(ShardGen::default())),
                writer: Mutex::new(()),
            })
            .collect();
        Ok(GeoMap {
            world: World::new(cfg.world),
            cfg,
            shards,
            interner,
            generation: AtomicU64::new(0),
        })
    }

    /// The configuration the map was built with.
    pub fn config(&self) -> &MapConfig {
        &self.cfg
    }

    /// The geohash world positions are encoded against.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A handle to the intern table founding keys go through.
    pub fn interner_handle(&self) -> SharedInterner {
        Arc::clone(&self.interner)
    }

    /// The shard index of a bucket-cell code.
    #[inline]
    pub(crate) fn shard_of_code(&self, bucket_code: u64) -> usize {
        (bucket_code >> (2 * u64::from(self.cfg.bucket_level - self.cfg.shard_level))) as usize
    }

    /// The bucket cell of a position.
    #[inline]
    pub(crate) fn bucket_of(&self, p: Point) -> GeoCell {
        self.world.encode(p, self.cfg.bucket_level)
    }

    /// Total stored entries (sums the shard generations).
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.current.read().expect("shard lock poisoned").aps)
            .sum()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size statistics across all shards.
    pub fn stats(&self) -> MapStats {
        let mut aps = 0;
        let mut buckets = 0;
        for s in &self.shards {
            let g = s.current.read().expect("shard lock poisoned").clone();
            aps += g.aps;
            buckets += g.buckets.len() as u64;
        }
        MapStats {
            aps,
            buckets,
            shards: self.shards.len(),
            generation: self.generation.load(AtomicOrdering::Acquire),
        }
    }

    /// Folds one batch of drive estimates into the map at clock `now`
    /// (microseconds): each estimate merges credit-weighted into the
    /// nearest existing entry within the merge radius, or opens a new
    /// entry under its [`grid_key`]. Shards are updated in index order;
    /// each publishes exactly one new generation per batch that touches
    /// it.
    pub fn absorb_estimates(&self, now_micros: u64, estimates: &[ApEstimate]) -> IngestStats {
        let mut stats = IngestStats::default();
        let mut by_shard: Vec<Vec<IngestItem>> = Vec::new();
        by_shard.resize_with(self.shards.len(), Vec::new);
        for e in estimates {
            if e.credit <= 0.0 || !e.position.is_finite() {
                stats.rejected += 1;
                continue;
            }
            let shard = self.shard_of_code(self.bucket_of(e.position).code);
            by_shard[shard].push(IngestItem::Est {
                pos: e.position,
                credit: e.credit,
                hops: 0,
            });
        }
        // Border estimates whose nearest entry lives in another shard
        // are re-routed there; consolidation that moves a merged entry
        // across a border emits a migrant the same way. Re-routing is
        // hop-bounded and migrant merges strictly shrink the entry
        // count, so this drains.
        loop {
            let mut moved = false;
            let mut next: Vec<Vec<IngestItem>> = Vec::new();
            next.resize_with(self.shards.len(), Vec::new);
            for (s, group) in by_shard.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let (merged, opened, routed) = self.absorb_into_shard(s, now_micros, group);
                stats.merged += merged;
                stats.opened += opened;
                for (target, item) in routed {
                    moved = true;
                    next[target].push(item);
                }
            }
            if !moved {
                break;
            }
            by_shard = next;
        }
        stats
    }

    /// Applies one shard's work items and publishes the next
    /// generation. Returns `(merged, opened, rerouted_items)` where the
    /// rerouted items carry their target shard.
    fn absorb_into_shard(
        &self,
        s: usize,
        now: u64,
        items: &[IngestItem],
    ) -> (u64, u64, Vec<(usize, IngestItem)>) {
        let shard = &self.shards[s];
        let _writer = shard.writer.lock().expect("shard writer poisoned");
        let cur = shard.current.read().expect("shard lock poisoned").clone();
        let mut buckets = cur.buckets.clone();
        let mut aps = cur.aps;
        let mut merged_n = 0;
        let mut opened_n = 0;
        let mut routed: Vec<(usize, IngestItem)> = Vec::new();
        for item in items {
            let (pos, credit) = item.pos_credit();
            // Past the hop budget the candidate search stays local: a
            // border duplicate beats unbounded shard chasing.
            let remote_ok = item.hops() < MAX_HOPS;
            match self.nearest_candidate(&buckets, s, pos, remote_ok) {
                Some(Candidate::Remote(target)) => {
                    routed.push((target, item.rerouted()));
                }
                Some(Candidate::Local(code, i)) => {
                    let bucket = Arc::make_mut(buckets.get_mut(&code).expect("candidate bucket"));
                    let old = bucket[i];
                    let total = old.credit + credit;
                    let position = Point::new(
                        (old.position.x * old.credit + pos.x * credit) / total,
                        (old.position.y * old.credit + pos.y * credit) / total,
                    );
                    let updated = match item {
                        IngestItem::Est { .. } => MapAp {
                            id: old.id,
                            position,
                            credit: total,
                            first_seen_micros: old.first_seen_micros,
                            last_seen_micros: old.last_seen_micros.max(now),
                        },
                        IngestItem::Mig { ap, .. } => MapAp {
                            id: old.id,
                            position,
                            credit: total,
                            first_seen_micros: old.first_seen_micros.min(ap.first_seen_micros),
                            last_seen_micros: old.last_seen_micros.max(ap.last_seen_micros),
                        },
                    };
                    merged_n += 1;
                    let new_code = self.bucket_of(position).code;
                    if new_code == code {
                        bucket[i] = updated;
                    } else {
                        bucket.remove(i);
                        if bucket.is_empty() {
                            buckets.remove(&code);
                        }
                        if self.shard_of_code(new_code) == s {
                            Arc::make_mut(buckets.entry(new_code).or_default()).push(updated);
                        } else {
                            aps -= 1;
                            let target = self.shard_of_code(new_code);
                            routed.push((
                                target,
                                IngestItem::Mig {
                                    ap: updated,
                                    hops: 0,
                                },
                            ));
                        }
                    }
                }
                None => {
                    let code = self.bucket_of(pos).code;
                    let owner = self.shard_of_code(code);
                    if owner != s {
                        // A rerouted item whose candidate vanished: its
                        // home bucket belongs to another shard, so it
                        // must open (or merge) there, never here.
                        routed.push((owner, item.rerouted()));
                        continue;
                    }
                    let entry = match item {
                        IngestItem::Est { .. } => {
                            opened_n += 1;
                            let key = grid_key(pos, self.cfg.key_resolution);
                            let id = self
                                .interner
                                .lock()
                                .expect("interner poisoned")
                                .intern(&key);
                            MapAp {
                                id,
                                position: pos,
                                credit,
                                first_seen_micros: now,
                                last_seen_micros: now,
                            }
                        }
                        IngestItem::Mig { ap, .. } => *ap,
                    };
                    Arc::make_mut(buckets.entry(code).or_default()).push(entry);
                    aps += 1;
                }
            }
        }
        self.publish(shard, ShardGen { buckets, aps });
        (merged_n, opened_n, routed)
    }

    /// The nearest entry to `pos` within the merge radius across all
    /// candidate buckets. Local hits index the working table of shard
    /// `s`; hits in other shards' published generations (only possible
    /// for border positions, only searched when `remote_ok`) report the
    /// owning shard for re-routing.
    fn nearest_candidate(
        &self,
        buckets: &HashMap<u64, Arc<Bucket>, BuildCellHasher>,
        s: usize,
        pos: Point,
        remote_ok: bool,
    ) -> Option<Candidate> {
        let r = self.cfg.merge_radius;
        let bbox = Rect::new(
            Point::new(pos.x - r, pos.y - r),
            Point::new(pos.x + r, pos.y + r),
        )
        .expect("merge bbox is well-formed");
        let mut best: Option<(Candidate, f64)> = None;
        let mut remote: Option<(usize, Arc<ShardGen>)> = None;
        for cell in self.world.cells_covering(bbox, self.cfg.bucket_level) {
            let owner = self.shard_of_code(cell.code);
            if owner == s {
                let Some(bucket) = buckets.get(&cell.code) else {
                    continue;
                };
                for (i, ap) in bucket.iter().enumerate() {
                    let d = ap.position.distance(pos);
                    if d <= r && best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                        best = Some((Candidate::Local(cell.code, i), d));
                    }
                }
            } else {
                if !remote_ok {
                    continue;
                }
                let cached = matches!(&remote, Some((o, _)) if *o == owner);
                if !cached {
                    let g = self.shards[owner]
                        .current
                        .read()
                        .expect("shard lock poisoned")
                        .clone();
                    remote = Some((owner, g));
                }
                let (_, g) = remote.as_ref().expect("cached remote generation");
                let Some(bucket) = g.buckets.get(&cell.code) else {
                    continue;
                };
                for ap in bucket.iter() {
                    let d = ap.position.distance(pos);
                    if d <= r && best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                        best = Some((Candidate::Remote(owner), d));
                    }
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Drops stale entries (TTL lapsed since `last_seen`) and transient
    /// entries (credit still at or below the floor once the grace
    /// period after `first_seen` lapsed). Deterministic: a pure
    /// function of the stored entries and `now_micros`.
    pub fn evict(&self, now_micros: u64) -> EvictStats {
        let mut stats = EvictStats::default();
        for shard in &self.shards {
            let _writer = shard.writer.lock().expect("shard writer poisoned");
            let cur = shard.current.read().expect("shard lock poisoned").clone();
            let mut buckets: HashMap<u64, Arc<Bucket>, BuildCellHasher> =
                HashMap::with_capacity_and_hasher(cur.buckets.len(), BuildCellHasher::default());
            let mut aps = 0u64;
            for (&code, bucket) in &cur.buckets {
                let mut kept = Vec::with_capacity(bucket.len());
                for ap in bucket.iter() {
                    if now_micros.saturating_sub(ap.last_seen_micros) > self.cfg.ttl_micros {
                        stats.expired += 1;
                    } else if ap.credit <= self.cfg.min_credit
                        && now_micros.saturating_sub(ap.first_seen_micros)
                            > self.cfg.transient_grace_micros
                    {
                        stats.transient += 1;
                    } else {
                        kept.push(*ap);
                    }
                }
                if !kept.is_empty() {
                    aps += kept.len() as u64;
                    buckets.insert(code, Arc::new(kept));
                }
            }
            stats.remaining += aps;
            self.publish(shard, ShardGen { buckets, aps });
        }
        stats
    }

    /// Swaps in the next generation of `shard`. The write lock guards
    /// only this pointer store.
    fn publish(&self, shard: &Shard, next: ShardGen) {
        *shard.current.write().expect("shard lock poisoned") = Arc::new(next);
        self.generation.fetch_add(1, AtomicOrdering::Release);
    }

    /// Calls `f` for every stored entry within `radius` of `center`.
    /// Lock-light: per shard touched, one read-lock acquisition to
    /// clone the current generation `Arc`; all probing runs on the
    /// immutable snapshot. No credit filtering — callers see transients
    /// too.
    pub fn for_each_near<F: FnMut(&MapAp)>(&self, center: Point, radius: f64, mut f: F) {
        if radius.is_nan() || radius < 0.0 || !center.is_finite() {
            return;
        }
        let Ok(bbox) = Rect::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        ) else {
            return;
        };
        // Squared-distance compare: one multiply instead of a sqrt per
        // scanned entry — the scan is the lookup hot loop.
        let r2 = radius * radius;
        let mut cached: Option<(usize, Arc<ShardGen>)> = None;
        self.world
            .for_each_cell_covering(bbox, self.cfg.bucket_level, |cell| {
                let s = self.shard_of_code(cell.code);
                let hit = matches!(&cached, Some((cs, _)) if *cs == s);
                if !hit {
                    let g = self.shards[s]
                        .current
                        .read()
                        .expect("shard lock poisoned")
                        .clone();
                    cached = Some((s, g));
                }
                let (_, g) = cached.as_ref().expect("cached generation");
                let Some(bucket) = g.buckets.get(&cell.code) else {
                    return;
                };
                for ap in bucket.iter() {
                    let dx = ap.position.x - center.x;
                    let dy = ap.position.y - center.y;
                    if dx * dx + dy * dy <= r2 {
                        f(ap);
                    }
                }
            });
    }

    /// Number of stored entries within `radius` of `center` — the
    /// allocation-free lookup the `ap_map` bench drives.
    pub fn count_near(&self, center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_near(center, radius, |_| n += 1);
        n
    }

    /// All entries within `radius` of `center` whose credit clears the
    /// spurious floor, in canonical order.
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<MapAp> {
        let mut out = Vec::new();
        self.for_each_near(center, radius, |ap| {
            if ap.credit > self.cfg.min_credit {
                out.push(*ap);
            }
        });
        out.sort_by(canonical_order);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MapConfig {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)).unwrap();
        let mut cfg = MapConfig::new(world);
        cfg.shard_level = 1;
        cfg.bucket_level = 4; // 64 m buckets
        cfg
    }

    fn est(x: f64, y: f64, credit: f64) -> ApEstimate {
        ApEstimate {
            position: Point::new(x, y),
            credit,
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let world = Rect::new(Point::new(0.0, 0.0), Point::new(0.0, 4.0)).unwrap();
        assert!(GeoMap::new(MapConfig::new(world)).is_err());
        let mut cfg = small_cfg();
        cfg.shard_level = 9;
        assert!(GeoMap::new(cfg).is_err());
        cfg = small_cfg();
        cfg.shard_level = 5;
        cfg.bucket_level = 4;
        assert!(GeoMap::new(cfg).is_err());
        cfg = small_cfg();
        cfg.merge_radius = f64::NAN;
        assert!(GeoMap::new(cfg).is_err());
    }

    #[test]
    fn ingest_merges_and_opens_like_the_consolidator() {
        let map = GeoMap::new(small_cfg()).unwrap();
        let s = map.absorb_estimates(1, &[est(100.0, 100.0, 1.0), est(500.0, 500.0, 1.0)]);
        assert_eq!((s.merged, s.opened), (0, 2));
        // Third vote at (106, 100): merged position x = (2·100 + 106)/3 = 102.
        map.absorb_estimates(2, &[est(100.0, 100.0, 1.0)]);
        let s = map.absorb_estimates(3, &[est(106.0, 100.0, 1.0)]);
        assert_eq!((s.merged, s.opened), (1, 0));
        assert_eq!(map.len(), 2);
        let hits = map.query_radius(Point::new(100.0, 100.0), 20.0);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].position.x - 102.0).abs() < 1e-12);
        assert_eq!(hits[0].credit, 3.0);
        assert_eq!(hits[0].last_seen_micros, 3);
        assert_eq!(hits[0].first_seen_micros, 1);
    }

    #[test]
    fn ingest_rejects_garbage() {
        let map = GeoMap::new(small_cfg()).unwrap();
        let s = map.absorb_estimates(1, &[est(f64::NAN, 0.0, 1.0), est(1.0, 1.0, 0.0)]);
        assert_eq!(s.rejected, 2);
        assert!(map.is_empty());
    }

    #[test]
    fn merging_across_bucket_and_shard_borders_keeps_one_entry() {
        let mut cfg = small_cfg();
        cfg.merge_radius = 10.0;
        let map = GeoMap::new(cfg).unwrap();
        // 512 is both a bucket and a shard border (shard_level 1 splits
        // the 1024 m world at 512 m). Two votes straddling it must
        // consolidate into one entry even though they start in
        // different shards.
        map.absorb_estimates(1, &[est(508.0, 100.0, 1.0)]);
        let s = map.absorb_estimates(2, &[est(515.0, 100.0, 1.0)]);
        assert_eq!((s.merged, s.opened), (1, 0));
        assert_eq!(map.len(), 1);
        let hits = map.query_radius(Point::new(512.0, 100.0), 20.0);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].position.x - 511.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_drops_stale_and_transient_entries() {
        let mut cfg = small_cfg();
        cfg.ttl_micros = 100;
        cfg.transient_grace_micros = 10;
        cfg.min_credit = 1.0;
        let map = GeoMap::new(cfg).unwrap();
        // Refreshed entry with real credit: survives.
        map.absorb_estimates(0, &[est(100.0, 100.0, 2.0)]);
        map.absorb_estimates(90, &[est(100.0, 100.0, 2.0)]);
        // Single-credit entry: transient once the grace lapses.
        map.absorb_estimates(50, &[est(300.0, 300.0, 1.0)]);
        // Stale entry: last seen at 0, TTL 100.
        map.absorb_estimates(0, &[est(700.0, 700.0, 5.0)]);
        let s = map.evict(120);
        assert_eq!(
            s,
            EvictStats {
                expired: 1,
                transient: 1,
                remaining: 1
            }
        );
        assert_eq!(map.len(), 1);
        // Sweeping again at the same clock is a no-op.
        let s2 = map.evict(120);
        assert_eq!(
            s2,
            EvictStats {
                expired: 0,
                transient: 0,
                remaining: 1
            }
        );
    }

    #[test]
    fn queries_filter_the_credit_floor_but_count_near_does_not() {
        let map = GeoMap::new(small_cfg()).unwrap();
        map.absorb_estimates(1, &[est(100.0, 100.0, 1.0)]); // at the floor
        map.absorb_estimates(1, &[est(120.0, 100.0, 3.0)]);
        assert_eq!(map.count_near(Point::new(110.0, 100.0), 50.0), 2);
        let q = map.query_radius(Point::new(110.0, 100.0), 50.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].credit, 3.0);
    }

    #[test]
    fn query_results_come_back_in_canonical_order() {
        let map = GeoMap::new(small_cfg()).unwrap();
        map.absorb_estimates(
            1,
            &[
                est(300.0, 100.0, 2.0),
                est(100.0, 300.0, 2.0),
                est(100.0, 100.0, 2.0),
            ],
        );
        let q = map.query_radius(Point::new(200.0, 200.0), 500.0);
        let pos: Vec<(f64, f64)> = q.iter().map(|a| (a.position.x, a.position.y)).collect();
        assert_eq!(pos, vec![(100.0, 100.0), (100.0, 300.0), (300.0, 100.0)]);
    }

    #[test]
    fn generations_advance_on_publish() {
        let map = GeoMap::new(small_cfg()).unwrap();
        let g0 = map.stats().generation;
        map.absorb_estimates(1, &[est(100.0, 100.0, 2.0)]);
        assert!(map.stats().generation > g0);
    }
}
