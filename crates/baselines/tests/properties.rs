//! Property-based tests for the baseline localizers.

use crowdwifi_baselines::lgmm::Lgmm;
use crowdwifi_baselines::mds::MdsLocalizer;
use crowdwifi_baselines::skyhook::Skyhook;
use crowdwifi_baselines::ApLocalizer;
use crowdwifi_channel::{ApId, PathLossModel, RssReading};
use crowdwifi_geo::{Point, Rect};
use proptest::prelude::*;

/// Tagged readings along a staggered drive past up to 3 APs.
fn drive(ap_xs: &[f64], n: usize) -> Vec<RssReading> {
    let model = PathLossModel::uci_campus();
    let aps: Vec<(ApId, Point)> = ap_xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (ApId(i as u32), Point::new(x, 30.0)))
        .collect();
    (0..n)
        .map(|i| {
            let p = Point::new(4.0 * i as f64, if (i / 4) % 2 == 0 { 0.0 } else { 10.0 });
            let (id, ap) = aps
                .iter()
                .min_by(|a, b| p.distance(a.1).partial_cmp(&p.distance(b.1)).unwrap())
                .unwrap();
            RssReading::with_source(p, model.mean_rss(p.distance(*ap)), i as f64, *id)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skyhook_estimates_lie_inside_the_scan_hull(
        ap1 in 20.0..120.0f64,
        gap in 60.0..120.0f64,
        n in 20usize..60,
    ) {
        let readings = drive(&[ap1, ap1 + gap], n);
        let est = Skyhook::default().localize(&readings);
        let scan_bbox = Rect::bounding(
            &readings.iter().map(|r| r.position).collect::<Vec<_>>()
        ).unwrap().expanded(1e-9);
        for p in &est.positions {
            // A weighted centroid of scan positions can never leave
            // their convex hull, let alone the bounding box.
            prop_assert!(scan_bbox.contains(*p), "{p} outside scans");
        }
        // Count equals the number of heard BSSIDs.
        prop_assert!(est.count() <= 2);
    }

    #[test]
    fn mds_outputs_are_finite_and_counted_by_bssid(
        ap1 in 20.0..100.0f64,
        gap in 60.0..120.0f64,
        n in 20usize..50,
    ) {
        let readings = drive(&[ap1, ap1 + gap], n);
        let est = MdsLocalizer::new(PathLossModel::uci_campus(), 8).localize(&readings);
        prop_assert!(est.positions.iter().all(|p| p.is_finite()));
        prop_assert!(est.count() <= 2);
    }

    #[test]
    fn lgmm_count_is_bounded_by_max_k(
        ap1 in 20.0..100.0f64,
        n in 16usize..40,
        max_k in 1usize..4,
    ) {
        let readings = drive(&[ap1], n);
        let est = Lgmm::new(PathLossModel::uci_campus(), 10.0, 100.0, max_k)
            .localize(&readings);
        prop_assert!(est.count() >= 1);
        prop_assert!(est.count() <= max_k);
        prop_assert!(est.positions.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn all_baselines_tolerate_tiny_inputs(n in 0usize..3) {
        let readings = drive(&[50.0], n);
        for localizer in [
            &Skyhook::default() as &dyn ApLocalizer,
            &MdsLocalizer::new(PathLossModel::uci_campus(), 3),
            &Lgmm::new(PathLossModel::uci_campus(), 10.0, 100.0, 3),
        ] {
            let est = localizer.localize(&readings);
            prop_assert!(est.positions.iter().all(|p| p.is_finite()),
                "{} produced non-finite output", localizer.name());
        }
    }
}
