//! Place-Lab-style war-driving fingerprint localizer ("Skyhook").
//!
//! Per the paper, Skyhook's production algorithm is proprietary but
//! similar to Place Lab (Cheng et al., MobiSys'05): every heard BSSID is
//! positioned at the weighted centroid of the scan positions that heard
//! it, weighting stronger scans higher after rank-sorting. Accuracy is
//! limited by how asymmetrically the drive sampled the AP's coverage —
//! exactly the tens-of-meters errors §6 reports for it.

use crate::{group_by_source, ApLocalizer, LocalizationEstimate};
use crowdwifi_channel::RssReading;
use crowdwifi_geo::point::weighted_centroid;
use crowdwifi_geo::Point;

/// The fingerprint localizer.
#[derive(Debug, Clone)]
pub struct Skyhook {
    /// Use only the strongest `top_n` scans per AP (Place Lab's ranking
    /// step); `usize::MAX` uses all scans.
    top_n: usize,
    /// RSS-to-weight exponent: weight = (rss − floor)^exponent.
    exponent: f64,
    /// Detection floor (weight origin) in dBm.
    floor_dbm: f64,
}

impl Default for Skyhook {
    fn default() -> Self {
        Skyhook {
            top_n: 20,
            exponent: 2.0,
            floor_dbm: -95.0,
        }
    }
}

impl Skyhook {
    /// Creates a localizer with the default Place-Lab-like parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-AP strongest-scan cutoff.
    pub fn with_top_n(mut self, top_n: usize) -> Self {
        self.top_n = top_n.max(1);
        self
    }

    /// Sets the RSS weighting exponent.
    ///
    /// # Panics
    ///
    /// Panics if non-finite or negative.
    pub fn with_exponent(mut self, exponent: f64) -> Self {
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be non-negative"
        );
        self.exponent = exponent;
        self
    }

    fn locate_one(&self, readings: &[RssReading]) -> Option<Point> {
        // Rank by RSS, strongest first.
        let mut sorted: Vec<&RssReading> = readings.iter().collect();
        sorted.sort_by(|a, b| {
            b.rss_dbm
                .partial_cmp(&a.rss_dbm)
                .expect("finite RSS values")
        });
        sorted.truncate(self.top_n);
        let points: Vec<Point> = sorted.iter().map(|r| r.position).collect();
        let weights: Vec<f64> = sorted
            .iter()
            .map(|r| (r.rss_dbm - self.floor_dbm).max(0.0).powf(self.exponent))
            .collect();
        weighted_centroid(&points, &weights)
    }
}

impl ApLocalizer for Skyhook {
    fn localize(&self, readings: &[RssReading]) -> LocalizationEstimate {
        let positions = group_by_source(readings)
            .values()
            .filter_map(|group| self.locate_one(group))
            .collect();
        LocalizationEstimate { positions }
    }

    fn name(&self) -> &'static str {
        "skyhook"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_channel::{ApId, PathLossModel};

    /// Readings along a two-sided drive past an AP.
    fn drive(ap: Point, id: ApId, xs: &[f64], y: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        xs.iter()
            .enumerate()
            .map(|(i, &x)| {
                let p = Point::new(x, y);
                RssReading::with_source(p, model.mean_rss(p.distance(ap)), i as f64, id)
            })
            .collect()
    }

    #[test]
    fn centroid_lands_near_strongest_scans() {
        let ap = Point::new(50.0, 10.0);
        let xs: Vec<f64> = (0..21).map(|i| 5.0 * i as f64).collect();
        let readings = drive(ap, ApId(0), &xs, 0.0);
        let est = Skyhook::default().localize(&readings);
        assert_eq!(est.count(), 1);
        // Fingerprinting cannot leave the scan line: y stays 0, but x
        // should be near the AP's x.
        assert!((est.positions[0].x - 50.0).abs() < 10.0);
        assert_eq!(est.positions[0].y, 0.0);
    }

    #[test]
    fn counts_only_heard_bssids() {
        let mut readings = drive(Point::new(20.0, 5.0), ApId(0), &[0.0, 10.0, 20.0], 0.0);
        readings.extend(drive(
            Point::new(80.0, 5.0),
            ApId(3),
            &[70.0, 80.0, 90.0],
            0.0,
        ));
        let est = Skyhook::default().localize(&readings);
        assert_eq!(est.count(), 2);
    }

    #[test]
    fn empty_and_untagged_inputs() {
        assert_eq!(Skyhook::default().localize(&[]).count(), 0);
        let untagged = [RssReading::new(Point::new(0.0, 0.0), -60.0, 0.0)];
        assert_eq!(Skyhook::default().localize(&untagged).count(), 0);
    }

    #[test]
    fn top_n_limits_the_fingerprint() {
        let ap = Point::new(0.0, 5.0);
        // Many far scans plus a few near ones: with top_n = 2 only the
        // near scans matter.
        let xs: Vec<f64> = (-10..=10).map(|i| 10.0 * i as f64).collect();
        let readings = drive(ap, ApId(0), &xs, 0.0);
        let tight = Skyhook::default().with_top_n(2).localize(&readings);
        assert!(tight.positions[0].x.abs() < 11.0);
    }
}
