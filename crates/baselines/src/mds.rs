//! Multidimensional-scaling radio-scan localizer ("MDS", ref. \[9\]).
//!
//! Koo & Cha embed WiFi APs with classical MDS from radio-scan
//! dissimilarities. Our implementation builds the joint configuration of
//! scan anchors (positions known from GPS) and heard APs:
//!
//! 1. anchor–anchor distances are Euclidean (known),
//! 2. AP–anchor distances come from inverting the path-loss model on the
//!    strongest scans,
//! 3. AP–AP distances are completed through the best common anchor
//!    (`min_a d(AP, a) + d(AP', a)`),
//! 4. classical MDS (double-centered Gram matrix, top-2 eigenpairs)
//!    embeds everything in the plane,
//! 5. an orthogonal Procrustes alignment of the embedded anchors onto
//!    their true positions maps the AP embedding into world coordinates.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::{group_by_source, ApLocalizer, LocalizationEstimate};
use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_geo::Point;
use crowdwifi_linalg::{Matrix, Svd, SymmetricEigen};

/// The classical-MDS localizer.
#[derive(Debug, Clone)]
pub struct MdsLocalizer {
    pathloss: PathLossModel,
    /// Number of scan anchors subsampled from the drive.
    anchors: usize,
    /// Strongest scans per (AP, anchor) used for ranging.
    top_scans: usize,
}

impl MdsLocalizer {
    /// Creates an MDS localizer on the given channel model.
    ///
    /// # Panics
    ///
    /// Panics if `anchors < 3` (the Procrustes alignment needs a
    /// non-degenerate anchor set).
    pub fn new(pathloss: PathLossModel, anchors: usize) -> Self {
        assert!(anchors >= 3, "need at least 3 anchors");
        MdsLocalizer {
            pathloss,
            anchors,
            top_scans: 3,
        }
    }

    fn pick_anchors(&self, readings: &[RssReading]) -> Vec<Point> {
        // Evenly spaced along the drive.
        let n = readings.len();
        let count = self.anchors.min(n);
        (0..count)
            .map(|i| readings[i * n / count].position)
            .collect()
    }
}

impl ApLocalizer for MdsLocalizer {
    fn localize(&self, readings: &[RssReading]) -> LocalizationEstimate {
        let groups = group_by_source(readings);
        if groups.is_empty() || readings.len() < 3 {
            return LocalizationEstimate { positions: vec![] };
        }
        let anchors = self.pick_anchors(readings);
        let a = anchors.len();
        let k = groups.len();
        let n = a + k;

        // AP–anchor ranges: for each AP, each anchor takes the mean
        // inverted range of the `top_scans` scans nearest that anchor.
        let mut ap_anchor = vec![vec![f64::NAN; a]; k];
        for (gi, group) in groups.values().enumerate() {
            for (ai, anchor) in anchors.iter().enumerate() {
                let mut scans: Vec<&RssReading> = group.iter().collect();
                scans.sort_by(|p, q| {
                    p.position
                        .distance(*anchor)
                        .partial_cmp(&q.position.distance(*anchor))
                        .expect("finite distances")
                });
                scans.truncate(self.top_scans);
                if scans.is_empty() {
                    continue;
                }
                // Range estimate anchored at the scan positions: the
                // inverted path-loss range plus the scan→anchor offset
                // bounds the AP–anchor distance.
                let est = scans
                    .iter()
                    .map(|s| {
                        self.pathloss.distance_for_rss(s.rss_dbm) + s.position.distance(*anchor)
                    })
                    .sum::<f64>()
                    / scans.len() as f64;
                ap_anchor[gi][ai] = est;
            }
        }

        // Full dissimilarity matrix.
        let mut d = Matrix::zeros(n, n);
        for i in 0..a {
            for j in 0..a {
                d.set(i, j, anchors[i].distance(anchors[j]));
            }
        }
        for gi in 0..k {
            for ai in 0..a {
                let v = ap_anchor[gi][ai];
                let v = if v.is_nan() { 1e4 } else { v };
                d.set(a + gi, ai, v);
                d.set(ai, a + gi, v);
            }
        }
        for gi in 0..k {
            for gj in 0..k {
                if gi == gj {
                    continue;
                }
                // Complete through the best common anchor.
                let mut best = f64::INFINITY;
                for ai in 0..a {
                    let (x, y) = (ap_anchor[gi][ai], ap_anchor[gj][ai]);
                    if !x.is_nan() && !y.is_nan() {
                        best = best.min(x + y);
                    }
                }
                if !best.is_finite() {
                    best = 1e4;
                }
                d.set(a + gi, a + gj, best);
            }
        }

        // Classical MDS: B = −½ J D² J, top-2 eigenpairs.
        let d2 = Matrix::from_fn(n, n, |i, j| d.get(i, j) * d.get(i, j));
        let row_means: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| d2.get(i, j)).sum::<f64>() / n as f64)
            .collect();
        let grand = row_means.iter().sum::<f64>() / n as f64;
        let b = Matrix::from_fn(n, n, |i, j| {
            -0.5 * (d2.get(i, j) - row_means[i] - row_means[j] + grand)
        });
        let Ok(eig) = SymmetricEigen::new(&b) else {
            return LocalizationEstimate { positions: vec![] };
        };
        let coords: Vec<Point> = (0..n)
            .map(|i| {
                let e1 = eig.eigenvalues()[0].max(0.0).sqrt();
                let e2 = if n > 1 {
                    eig.eigenvalues()[1].max(0.0).sqrt()
                } else {
                    0.0
                };
                Point::new(
                    eig.eigenvectors().get(i, 0) * e1,
                    if n > 1 {
                        eig.eigenvectors().get(i, 1) * e2
                    } else {
                        0.0
                    },
                )
            })
            .collect();

        // Procrustes: align embedded anchors to true anchor positions
        // (rotation/reflection + translation, no scaling).
        let embedded_anchors = &coords[..a];
        let (rot, t_embedded, t_true) = procrustes(embedded_anchors, &anchors);
        let positions = coords[a..]
            .iter()
            .map(|p| {
                let centered = [p.x - t_embedded.x, p.y - t_embedded.y];
                Point::new(
                    rot[0][0] * centered[0] + rot[0][1] * centered[1] + t_true.x,
                    rot[1][0] * centered[0] + rot[1][1] * centered[1] + t_true.y,
                )
            })
            .collect();
        LocalizationEstimate { positions }
    }

    fn name(&self) -> &'static str {
        "mds"
    }
}

/// Orthogonal Procrustes: returns `(R, x̄, ȳ)` such that
/// `(x − x̄)·Rᵀ + ȳ ≈ y` in the least-squares sense.
fn procrustes(xs: &[Point], ys: &[Point]) -> ([[f64; 2]; 2], Point, Point) {
    let n = xs.len().max(1) as f64;
    let mx = Point::new(
        xs.iter().map(|p| p.x).sum::<f64>() / n,
        xs.iter().map(|p| p.y).sum::<f64>() / n,
    );
    let my = Point::new(
        ys.iter().map(|p| p.x).sum::<f64>() / n,
        ys.iter().map(|p| p.y).sum::<f64>() / n,
    );
    // Cross-covariance H = Σ (x − mx)(y − my)ᵀ.
    let mut h = Matrix::zeros(2, 2);
    for (x, y) in xs.iter().zip(ys) {
        let cx = [x.x - mx.x, x.y - mx.y];
        let cy = [y.x - my.x, y.y - my.y];
        for r in 0..2 {
            for c in 0..2 {
                h.set(r, c, h.get(r, c) + cx[r] * cy[c]);
            }
        }
    }
    let rot = match Svd::new(&h) {
        Ok(svd) => {
            // R = V Uᵀ maps x-frame into y-frame.
            let r = svd.v().matmul(&svd.u().transpose());
            [[r.get(0, 0), r.get(0, 1)], [r.get(1, 0), r.get(1, 1)]]
        }
        Err(_) => [[1.0, 0.0], [0.0, 1.0]],
    };
    // Note: applying as y ≈ R (x − mx) + my with R = V Uᵀ transposed
    // appropriately; our caller multiplies rot · centered.
    (rot, mx, my)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_channel::ApId;

    fn localizer() -> MdsLocalizer {
        MdsLocalizer::new(PathLossModel::uci_campus(), 10)
    }

    /// Tagged, fading-free readings from the nearest AP along a
    /// staggered drive.
    fn drive(aps: &[(ApId, Point)], n: usize, spacing: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        (0..n)
            .map(|i| {
                let p = Point::new(
                    spacing * i as f64,
                    if (i / 3) % 2 == 0 { 0.0 } else { 12.0 },
                );
                let (id, ap) = aps
                    .iter()
                    .min_by(|a, b| p.distance(a.1).partial_cmp(&p.distance(b.1)).unwrap())
                    .unwrap();
                RssReading::with_source(p, model.mean_rss(p.distance(*ap)), i as f64, *id)
            })
            .collect()
    }

    #[test]
    fn procrustes_identity_when_aligned() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let (r, mx, my) = procrustes(&pts, &pts);
        assert!((r[0][0] - 1.0).abs() < 1e-9);
        assert!((r[1][1] - 1.0).abs() < 1e-9);
        assert!(mx.distance(my) < 1e-9);
    }

    #[test]
    fn counts_heard_bssids() {
        let aps = [
            (ApId(0), Point::new(30.0, 25.0)),
            (ApId(1), Point::new(150.0, 25.0)),
        ];
        let readings = drive(&aps, 30, 6.0);
        let est = localizer().localize(&readings);
        assert_eq!(est.count(), 2);
    }

    #[test]
    fn positions_are_roughly_in_the_right_region() {
        let aps = [
            (ApId(0), Point::new(30.0, 25.0)),
            (ApId(1), Point::new(170.0, 25.0)),
        ];
        let readings = drive(&aps, 40, 5.0);
        let est = localizer().localize(&readings);
        // MDS errors are large (that is the paper's point) but the two
        // APs must land on their own halves of the drive.
        let mut xs: Vec<f64> = est.positions.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] < 100.0, "left AP at x = {}", xs[0]);
        assert!(xs[1] > 100.0, "right AP at x = {}", xs[1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(localizer().localize(&[]).count(), 0);
        let one = [RssReading::with_source(
            Point::new(0.0, 0.0),
            -60.0,
            0.0,
            ApId(0),
        )];
        assert_eq!(localizer().localize(&one).count(), 0);
    }
}
