//! Baseline AP counting/localization algorithms compared in §6.1.
//!
//! The paper benchmarks CrowdWiFi against three prior approaches:
//!
//! * [`lgmm`] — the grid-based Gaussian-mixture / EM localizer of
//!   Zhang et al. (ref. \[20\], "LGMM"),
//! * [`mds`] — the multidimensional-scaling radio-scan localizer of
//!   Koo & Cha (ref. \[9\], "MDS"),
//! * [`skyhook`] — a Place-Lab-style war-driving fingerprint localizer
//!   (refs. \[4, 15\]; Skyhook's production algorithm is proprietary but,
//!   as the paper notes, "similar to Place Lab").
//!
//! Unlike CrowdWiFi's blind formulation, the MDS and Skyhook baselines
//! realistically consume the BSSID tags on readings (real scanners see
//! them); they still undercount APs whose beacons were never received.
//!
//! All baselines implement [`ApLocalizer`].

#![deny(missing_docs)]

pub mod lgmm;
pub mod mds;
pub mod skyhook;

use crowdwifi_channel::RssReading;
use crowdwifi_geo::Point;

/// A baseline's joint count-and-position estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationEstimate {
    /// Estimated AP positions; the estimated count is `positions.len()`.
    pub positions: Vec<Point>,
}

impl LocalizationEstimate {
    /// The estimated AP count.
    pub fn count(&self) -> usize {
        self.positions.len()
    }
}

/// A drive-by AP counting/localization algorithm.
pub trait ApLocalizer {
    /// Estimates the number and positions of roadside APs from a set of
    /// drive-by readings. An empty reading set yields an empty estimate.
    fn localize(&self, readings: &[RssReading]) -> LocalizationEstimate;

    /// Short name for benches and tables.
    fn name(&self) -> &'static str;
}

/// Groups readings by their source BSSID; readings without a source tag
/// are dropped (the ID-using baselines cannot attribute them).
pub(crate) fn group_by_source(
    readings: &[RssReading],
) -> std::collections::BTreeMap<crowdwifi_channel::ApId, Vec<RssReading>> {
    let mut map: std::collections::BTreeMap<_, Vec<RssReading>> = std::collections::BTreeMap::new();
    for r in readings {
        if let Some(id) = r.source {
            map.entry(id).or_default().push(*r);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_channel::ApId;

    #[test]
    fn grouping_drops_untagged_readings() {
        let readings = [
            RssReading::with_source(Point::new(0.0, 0.0), -60.0, 0.0, ApId(1)),
            RssReading::new(Point::new(1.0, 0.0), -61.0, 1.0),
            RssReading::with_source(Point::new(2.0, 0.0), -62.0, 2.0, ApId(1)),
            RssReading::with_source(Point::new(3.0, 0.0), -63.0, 3.0, ApId(2)),
        ];
        let groups = group_by_source(&readings);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&ApId(1)].len(), 2);
        assert_eq!(groups[&ApId(2)].len(), 1);
    }

    #[test]
    fn estimate_count_is_position_count() {
        let e = LocalizationEstimate {
            positions: vec![Point::new(0.0, 0.0); 3],
        };
        assert_eq!(e.count(), 3);
    }
}
